//! The bootstrap-port server: Fig 5's interaction, one reader per
//! connection plus a small shared worker pool for dispatch.
//!
//! *"The bootstrap port in each address space serves as means to initiate a
//! communication channel. When a client connects to the bootstrap port (1),
//! a new `ObjectCommunicator` is wrapped around the resulting connection.
//! ... The `ObjectCommunicator` reads in an incoming request (2) and
//! encapsulates it in a `Call` object. The `Call` header contains the
//! stringified object reference, whose type information and object
//! identifier permit the selection of the appropriate `Skeleton`."*
//!
//! With request-id correlation on the wire, one connection can carry many
//! interleaved requests: the per-connection reader thread only deframes and
//! routes. Two-way requests are dispatched on a shared worker pool and
//! their replies written back (in completion order — the client
//! demultiplexes by id), so one slow servant cannot head-of-line-block the
//! connection. `oneway` requests are dispatched inline on the reader,
//! preserving the oneway-then-call ordering a single client observes.
//!
//! Every stage applies the ORB's `ServerPolicy`: connections beyond
//! `max_connections` are refused at `accept`, requests beyond the global or
//! per-connection in-flight caps (or beyond the worker pool's overflow
//! budget, or arriving during a drain) are shed with a `Busy` reply before
//! any servant runs, and everything the server reads is deframed and
//! decoded under the policy's `DecodeLimits`. The built-in `_health`
//! object (well-known id `0`) reports the resulting counters.
//!
//! ## Two I/O engines, one routing path
//!
//! The server runs its sockets on one of two engines, selected by
//! [`TransportMode`](crate::TransportMode) (`HEIDL_TRANSPORT` or
//! `OrbBuilder::transport_mode`):
//!
//! * **threaded** (the historical engine): a blocking accept loop plus one
//!   `heidl-conn` reader thread per connection;
//! * **reactor**: a single `heidl-reactor-{port}` epoll readiness loop
//!   owns the listener and every connection — accepted sockets become
//!   per-connection state machines ([`ConnSource`]/[`ConnWriter`]) that
//!   deframe with `MSG_DONTWAIT` reads and continue partial reply writes
//!   when `EPOLLOUT` says the peer caught up, so ten thousand idle
//!   connections cost zero threads instead of ten thousand.
//!
//! Both engines deframe into the same [`route_frame`] routing path and
//! dispatch on the same worker pool, so policy enforcement and wire
//! behavior are byte-identical; only the thread economics differ.

use crate::call::{
    extract_call_context, extract_invocation_token, peek_reply_id, peek_route, IncomingCall,
    ReplyBuilder, ReplyStatus,
};
use crate::communicator::{write_framed, ObjectCommunicator};
use crate::error::{RmiError, RmiResult};
use crate::metrics::{Counter, Metrics};
use crate::objref::Endpoint;
use crate::orb::Orb;
use crate::policy::{ServerHealth, ServerPolicy};
use crate::reactor::{
    self, Action, ReactorHandle, Source, EPOLLERR, EPOLLHUP, EPOLLIN, EPOLLOUT, EPOLLRDHUP,
};
use crate::replay::{ReplayCache, ReplayDecision};
use crate::skeleton::{DispatchOutcome, Skeleton};
use crate::stream::{
    StreamServant, StreamWindow, TokenBucket, STREAM_ACK_OBJECT_ID, STREAM_EXPIRED_REPO_ID,
};
use crate::trace::{self, TraceLevel};
use crate::transport::{TcpTransport, Transport, RECV_CHUNK};
use heidl_wire::{pool, FrameBuf, PooledBuf, MAX_FRAME_HEADER};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::io::IoSlice;
use std::net::{IpAddr, Ipv4Addr, Ipv6Addr, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Weak};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Resident dispatch threads per server; requests beyond this run on
/// transient overflow threads (bounded by the policy) so a dispatch that
/// itself blocks (e.g. on a nested remote call) can never starve the pool.
const WORKER_THREADS: usize = 4;

/// Well-known object id of the built-in `_health` object every server
/// serves. Exported ids start at 1, so 0 can never collide.
pub const HEALTH_OBJECT_ID: u64 = 0;

/// Repository id of the built-in `_health` object.
pub const HEALTH_TYPE_ID: &str = "IDL:heidl/Health:1.0";

/// Well-known object id of the built-in `_metrics` object every server
/// serves. Exported ids start at 1 and increment, so `u64::MAX` can never
/// collide with an application export.
pub const METRICS_OBJECT_ID: u64 = u64::MAX;

/// Repository id of the built-in `_metrics` object.
pub const METRICS_TYPE_ID: &str = "IDL:heidl/Metrics:1.0";

/// Counters and policy shared by the accept loop, every connection
/// reader, every dispatch, and the drain path.
pub(crate) struct ServerShared {
    policy: ServerPolicy,
    /// Set once a drain begins: new requests are shed, accepts refused.
    draining: AtomicBool,
    /// Requests currently admitted (dispatching or queued to workers).
    in_flight: AtomicUsize,
    /// Connections currently open.
    connections: AtomicUsize,
    /// Requests shed with `Busy` (or silently, for oneways) since start.
    shed_requests: AtomicU64,
    /// Connections refused at accept time since start.
    shed_connections: AtomicU64,
    /// Live connections' write halves, for force-close at drain timeout
    /// and the reactor's idle/stall sweep.
    conns: Mutex<HashMap<u64, Weak<dyn ReplySink>>>,
    next_conn_id: AtomicU64,
    /// The owning ORB's metrics registry: the shed counters below are
    /// mirrored into it exactly once per event (see [`Self::shed_request`]).
    metrics: Arc<Metrics>,
    /// Exactly-once dedup table + reply cache: a retried invocation token
    /// is answered from here instead of re-executing the servant.
    replay: ReplayCache,
    /// Live per-stream credit windows, keyed by `(conn id, request id)`
    /// (request ids are only unique per client): the reader thread's
    /// inline ack handling grants credit into them.
    streams: Mutex<HashMap<(u64, u64), Arc<StreamWindow>>>,
    /// Pacing bucket shared by every stream on this server — the policy's
    /// `stream_rate_bytes_per_sec` bounds *aggregate* emission.
    stream_bucket: Option<TokenBucket>,
    /// Global outstanding-reply-bytes budget across every connection
    /// writer (see [`ReplyBudget`]).
    reply_budget: Arc<ReplyBudget>,
}

impl ServerShared {
    fn new(policy: ServerPolicy, metrics: Arc<Metrics>) -> ServerShared {
        let replay = ReplayCache::new(policy.reply_cache_ttl, policy.reply_cache_max_bytes);
        let stream_bucket = policy.stream_rate_bytes_per_sec.map(TokenBucket::new);
        let reply_budget = Arc::new(ReplyBudget::new(policy.max_reply_queue_bytes_global));
        ServerShared {
            policy,
            draining: AtomicBool::new(false),
            in_flight: AtomicUsize::new(0),
            connections: AtomicUsize::new(0),
            shed_requests: AtomicU64::new(0),
            shed_connections: AtomicU64::new(0),
            conns: Mutex::new(HashMap::new()),
            next_conn_id: AtomicU64::new(1),
            metrics,
            replay,
            streams: Mutex::new(HashMap::new()),
            stream_bucket,
            reply_budget,
        }
    }

    /// Admission control for one request. On success the returned guard
    /// holds both the global and the per-connection in-flight slot until
    /// the dispatch (and its reply write) completes; on refusal the error
    /// names the cap so the `Busy` reply is diagnosable over telnet.
    fn try_admit(self: &Arc<Self>, per_conn: &Arc<AtomicUsize>) -> Result<InFlightGuard, String> {
        if self.draining.load(Ordering::SeqCst) {
            return Err("draining for shutdown".to_owned());
        }
        // The global reply-queue byte budget: per-connection queue caps do
        // not stop *many* slow readers from collectively growing RSS, so
        // once the sum of queued reply bytes crosses the policy line, new
        // work is shed until writers drain. (The threaded engine's
        // blocking writes never queue, so its accounting stays at zero.)
        if self.reply_budget.exhausted() {
            return Err(format!(
                "global reply-queue byte budget ({}) reached",
                self.policy.max_reply_queue_bytes_global
            ));
        }
        if per_conn.fetch_add(1, Ordering::SeqCst) >= self.policy.max_in_flight_per_connection {
            per_conn.fetch_sub(1, Ordering::SeqCst);
            return Err(format!(
                "per-connection in-flight cap ({}) reached",
                self.policy.max_in_flight_per_connection
            ));
        }
        if self.in_flight.fetch_add(1, Ordering::SeqCst) >= self.policy.max_in_flight {
            self.in_flight.fetch_sub(1, Ordering::SeqCst);
            per_conn.fetch_sub(1, Ordering::SeqCst);
            return Err(format!("in-flight cap ({}) reached", self.policy.max_in_flight));
        }
        Ok(InFlightGuard { shared: Arc::clone(self), per_conn: Arc::clone(per_conn) })
    }

    /// Counts one request shed. The `_health` counter and the metrics
    /// counter are bumped together here — the *only* shed-request site —
    /// so `_health.report` and `_metrics.snapshot` always agree.
    fn shed_request(&self) {
        self.shed_requests.fetch_add(1, Ordering::SeqCst);
        self.metrics.inc(Counter::ShedRequests);
    }

    /// Counts one connection refused at accept time; same single-site
    /// dual-count contract as [`Self::shed_request`].
    fn shed_connection(&self) {
        self.shed_connections.fetch_add(1, Ordering::SeqCst);
        self.metrics.inc(Counter::ShedConnections);
    }

    /// Registers a live stream's credit window so inbound acks can find it.
    fn register_stream(&self, conn_id: u64, request_id: u64, window: Arc<StreamWindow>) {
        self.streams.lock().insert((conn_id, request_id), window);
    }

    /// Removes a finished stream's window; late acks then fall on the floor.
    fn unregister_stream(&self, conn_id: u64, request_id: u64) {
        self.streams.lock().remove(&(conn_id, request_id));
    }

    /// Grants ack'd credit into a live stream's window (no-op for
    /// unknown/finished streams — late acks are as harmless as late
    /// replies).
    fn grant_stream(&self, conn_id: u64, request_id: u64, bytes: u64) {
        if let Some(window) = self.streams.lock().get(&(conn_id, request_id)) {
            window.grant(bytes);
        }
    }

    /// Closes (and drops) every stream window belonging to a dead
    /// connection, so its pump threads stop waiting for acks that can
    /// never arrive.
    fn close_conn_streams(&self, conn_id: u64) {
        self.streams.lock().retain(|(owner, _), window| {
            if *owner == conn_id {
                window.close();
                false
            } else {
                true
            }
        });
    }

    pub(crate) fn snapshot(&self) -> ServerHealth {
        ServerHealth {
            accepting: !self.draining.load(Ordering::SeqCst),
            in_flight: self.in_flight.load(Ordering::SeqCst) as u64,
            connections: self.connections.load(Ordering::SeqCst) as u64,
            shed_requests: self.shed_requests.load(Ordering::SeqCst),
            shed_connections: self.shed_connections.load(Ordering::SeqCst),
        }
    }
}

/// Releases a request's global and per-connection in-flight slots. Owned
/// by the dispatch job, so the slots stay held until the reply is written.
struct InFlightGuard {
    shared: Arc<ServerShared>,
    per_conn: Arc<AtomicUsize>,
}

impl Drop for InFlightGuard {
    fn drop(&mut self) {
        self.shared.in_flight.fetch_sub(1, Ordering::SeqCst);
        self.per_conn.fetch_sub(1, Ordering::SeqCst);
    }
}

/// Releases a connection's slot in the accept-time connection count.
struct ConnGuard {
    shared: Arc<ServerShared>,
}

impl Drop for ConnGuard {
    fn drop(&mut self) {
        self.shared.connections.fetch_sub(1, Ordering::SeqCst);
    }
}

/// Server-wide accounting of reply bytes accepted but not yet written to
/// any socket. Each [`ConnWriter`] settles its queue's byte count here
/// after every mutation, and [`ServerShared::try_admit`] sheds new work
/// with `Busy` while the total exceeds the policy budget — the backstop
/// the per-connection caps cannot provide when *many* connections are
/// slow at once.
struct ReplyBudget {
    queued: AtomicUsize,
    max: usize,
}

impl ReplyBudget {
    fn new(max: usize) -> ReplyBudget {
        ReplyBudget { queued: AtomicUsize::new(0), max: max.max(1) }
    }

    fn exhausted(&self) -> bool {
        self.queued.load(Ordering::SeqCst) >= self.max
    }

    /// Moves this writer's accounted share from `before` to `after` bytes.
    fn adjust(&self, before: usize, after: usize) {
        if after > before {
            self.queued.fetch_add(after - before, Ordering::SeqCst);
        } else if before > after {
            self.queued.fetch_sub(before - after, Ordering::SeqCst);
        }
    }
}

/// A running bootstrap-port server.
pub(crate) struct ServerHandle {
    endpoint: Endpoint,
    local: SocketAddr,
    engine: Engine,
    shared: Arc<ServerShared>,
}

/// Which I/O engine is serving the sockets (see the module docs).
enum Engine {
    Threaded {
        running: Arc<AtomicBool>,
        acceptor: Option<JoinHandle<()>>,
    },
    Reactor {
        reactor: ReactorHandle,
        accept_token: u64,
        /// Set by [`AcceptSource`]'s drop, so stopping can wait until the
        /// listener is actually closed (threaded `stop` joins the accept
        /// thread; this is the readiness-loop equivalent).
        accept_closed: Arc<AtomicBool>,
    },
}

impl ServerHandle {
    /// Binds `addr` and starts serving under the ORB's `ServerPolicy`, on
    /// the engine its `TransportMode` selects. The reactor engine requires
    /// raw socket fds, so a `HEIDL_FAULT_PLAN` run (every accepted
    /// transport wrapped in a fd-less fault injector) falls back to the
    /// threaded engine.
    pub(crate) fn start(addr: &str, orb: Orb) -> RmiResult<ServerHandle> {
        if orb.transport_mode().reactor_enabled() && crate::fault::FaultPlan::from_env().is_none() {
            ServerHandle::start_reactor(addr, orb)
        } else {
            ServerHandle::start_threaded(addr, orb)
        }
    }

    /// The historical engine: a blocking accept loop plus one reader
    /// thread per accepted connection.
    fn start_threaded(addr: &str, orb: Orb) -> RmiResult<ServerHandle> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let endpoint = Endpoint::new(orb.protocol().name(), local.ip().to_string(), local.port());
        let running = Arc::new(AtomicBool::new(true));
        let flag = Arc::clone(&running);
        let policy = orb.server_policy().clone();
        let workers = Arc::new(WorkerPool::new(WORKER_THREADS, policy.max_overflow_threads));
        let shared = Arc::new(ServerShared::new(policy, Arc::clone(orb.metrics())));
        let loop_shared = Arc::clone(&shared);
        let acceptor = std::thread::Builder::new()
            .name(format!("heidl-accept-{}", local.port()))
            .spawn(move || accept_loop(listener, orb, flag, workers, loop_shared))
            .map_err(RmiError::Io)?;
        Ok(ServerHandle {
            endpoint,
            local,
            engine: Engine::Threaded { running, acceptor: Some(acceptor) },
            shared,
        })
    }

    /// The readiness-loop engine: one epoll thread owns the listener and
    /// every connection; dispatch still runs on the shared worker pool.
    fn start_reactor(addr: &str, orb: Orb) -> RmiResult<ServerHandle> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local = listener.local_addr()?;
        let endpoint = Endpoint::new(orb.protocol().name(), local.ip().to_string(), local.port());
        let policy = orb.server_policy().clone();
        let workers = Arc::new(WorkerPool::new(WORKER_THREADS, policy.max_overflow_threads));
        let shared = Arc::new(ServerShared::new(policy, Arc::clone(orb.metrics())));
        let handle =
            reactor::spawn(&format!("heidl-reactor-{}", local.port())).map_err(RmiError::Io)?;
        let accept_closed = Arc::new(AtomicBool::new(false));
        let accept_token = handle.alloc_id();
        handle.register(
            accept_token,
            EPOLLIN,
            Box::new(AcceptSource {
                listener,
                orb,
                workers,
                shared: Arc::clone(&shared),
                closed: Arc::clone(&accept_closed),
            }),
        );
        // The socket timeouts the threaded engine sets are meaningless for
        // MSG_DONTWAIT I/O, so a sweep timer polices them instead: idle
        // peers (read_idle_timeout) and peers too slow to take their
        // replies (write_timeout) get force-closed, which surfaces as an
        // EOF event on their source.
        let idle = shared.policy.read_idle_timeout;
        let stall = shared.policy.write_timeout;
        if idle.is_some() || stall.is_some() {
            let tightest = [idle, stall].into_iter().flatten().min().unwrap_or_default();
            let period =
                (tightest / 4).clamp(Duration::from_millis(10), Duration::from_millis(1000));
            let sweep_shared = Arc::clone(&shared);
            handle.add_timer(
                handle.alloc_id(),
                period,
                Box::new(move |_| {
                    let sinks: Vec<_> = sweep_shared.conns.lock().values().cloned().collect();
                    for weak in sinks {
                        if let Some(sink) = weak.upgrade() {
                            if sink.stalled(idle, stall) {
                                sink.force_close();
                            }
                        }
                    }
                }),
            );
        }
        Ok(ServerHandle {
            endpoint,
            local,
            engine: Engine::Reactor { reactor: handle, accept_token, accept_closed },
            shared,
        })
    }

    pub(crate) fn endpoint(&self) -> &Endpoint {
        &self.endpoint
    }

    pub(crate) fn health(&self) -> ServerHealth {
        self.shared.snapshot()
    }

    /// Stops the accept loop immediately; in-flight dispatches race the
    /// process teardown (the historical `shutdown()` semantics).
    /// Established connections keep being served on both engines until
    /// their peers disconnect.
    pub(crate) fn stop(mut self) {
        self.halt_accepting();
        if let Engine::Reactor { reactor, .. } = &self.engine {
            // Exit once the last connection's source is gone — the
            // reactor-thread analogue of `heidl-conn` threads outliving
            // the acceptor.
            reactor.retire();
        }
    }

    /// Graceful drain: stop accepting, shed new requests with `Busy`,
    /// wait up to the policy's `drain_timeout` for in-flight dispatches,
    /// then force-close every remaining connection. Returns `true` when
    /// everything in flight completed within the budget.
    pub(crate) fn stop_and_drain(mut self) -> bool {
        self.shared.draining.store(true, Ordering::SeqCst);
        self.halt_accepting();
        let deadline = Instant::now() + self.shared.policy.drain_timeout;
        let drained = loop {
            if self.shared.in_flight.load(Ordering::SeqCst) == 0 {
                break true;
            }
            if Instant::now() >= deadline {
                break false;
            }
            std::thread::sleep(Duration::from_millis(2));
        };
        // Force-close whatever is left (all connections when drained — the
        // readers are idle-blocked — plus any overrunning dispatch's):
        // shutting the socket down gives each reader EOF, so every reader
        // (thread or reactor source) exits promptly.
        let writers: Vec<_> = self.shared.conns.lock().drain().collect();
        for (conn_id, weak) in writers {
            if let Some(writer) = weak.upgrade() {
                if !drained {
                    trace::emit_with(TraceLevel::Warn, "server", || {
                        format!("drain timeout: force-closing connection {conn_id}")
                    });
                }
                writer.force_close();
            }
        }
        if let Engine::Reactor { reactor, .. } = &self.engine {
            reactor.retire();
        }
        drained
    }

    fn halt_accepting(&mut self) {
        match &mut self.engine {
            Engine::Threaded { running, acceptor } => {
                running.store(false, Ordering::SeqCst);
                // Nudge the blocking accept() so it observes the flag.
                // Connect via loopback: the bind address may be unroutable
                // as a *destination* (`0.0.0.0` / `::`), but the listener
                // is always reachable on the loopback of its own address
                // family.
                let addr = nudge_addr(self.local);
                let _ = TcpStream::connect_timeout(&addr, Duration::from_millis(250));
                if let Some(h) = acceptor.take() {
                    let _ = h.join();
                }
            }
            Engine::Reactor { reactor, accept_token, accept_closed } => {
                reactor.close(*accept_token);
                // Wait (bounded) until the listener has actually dropped,
                // so the port is free when we return — same guarantee the
                // threaded engine gets from joining its accept thread.
                let deadline = Instant::now() + Duration::from_secs(1);
                while !accept_closed.load(Ordering::SeqCst) && Instant::now() < deadline {
                    if !reactor.is_live() {
                        break;
                    }
                    std::thread::sleep(Duration::from_millis(1));
                }
            }
        }
    }
}

fn nudge_addr(local: SocketAddr) -> SocketAddr {
    let mut addr = local;
    if addr.ip().is_unspecified() {
        addr.set_ip(match local {
            SocketAddr::V4(_) => IpAddr::V4(Ipv4Addr::LOCALHOST),
            SocketAddr::V6(_) => IpAddr::V6(Ipv6Addr::LOCALHOST),
        });
    }
    addr
}

type Job = Box<dyn FnOnce() + Send>;

/// A small fixed pool of dispatch threads with *bounded* overflow: when
/// every resident worker is occupied, the job runs on a transient thread
/// instead of queueing behind a potentially blocked dispatch — but only
/// up to the policy's overflow budget. Past that, `submit` refuses and
/// the caller sheds the request with `Busy` instead of letting a slow
/// servant grow one thread per queued request without bound.
struct WorkerPool {
    tx: crossbeam::channel::Sender<Job>,
    busy: Arc<AtomicUsize>,
    workers: usize,
    overflow: Arc<AtomicUsize>,
    max_overflow: usize,
}

impl WorkerPool {
    fn new(workers: usize, max_overflow: usize) -> WorkerPool {
        let (tx, rx) = crossbeam::channel::unbounded::<Job>();
        let busy = Arc::new(AtomicUsize::new(0));
        for i in 0..workers {
            let rx = rx.clone();
            let busy = Arc::clone(&busy);
            let _ =
                std::thread::Builder::new().name(format!("heidl-worker-{i}")).spawn(move || {
                    while let Ok(job) = rx.recv() {
                        job();
                        busy.fetch_sub(1, Ordering::SeqCst);
                    }
                });
        }
        WorkerPool { tx, busy, workers, overflow: Arc::new(AtomicUsize::new(0)), max_overflow }
    }

    /// Runs `job` on a resident worker or a transient overflow thread.
    /// Returns `false` (dropping the job unrun) when every resident
    /// worker is busy and the overflow budget is exhausted.
    fn submit(&self, job: Job) -> bool {
        // `busy` counts submitted-but-unfinished pool jobs; the check is a
        // heuristic (races only cost an occasional extra thread), but it
        // guarantees a job is never queued behind `workers` blocked ones.
        if self.busy.load(Ordering::SeqCst) < self.workers {
            self.busy.fetch_add(1, Ordering::SeqCst);
            if self.tx.send(job).is_ok() {
                return true;
            }
            self.busy.fetch_sub(1, Ordering::SeqCst);
            return false;
        }
        if self.overflow.fetch_add(1, Ordering::SeqCst) >= self.max_overflow {
            self.overflow.fetch_sub(1, Ordering::SeqCst);
            return false;
        }
        let overflow = Arc::clone(&self.overflow);
        let spawned =
            std::thread::Builder::new().name("heidl-overflow".to_owned()).spawn(move || {
                job();
                overflow.fetch_sub(1, Ordering::SeqCst);
            });
        if spawned.is_err() {
            self.overflow.fetch_sub(1, Ordering::SeqCst);
            return false;
        }
        true
    }
}

/// First back-off after a failed `accept()`; doubles per consecutive
/// failure up to [`ACCEPT_BACKOFF_MAX`], resetting on any success.
const ACCEPT_BACKOFF_BASE: std::time::Duration = std::time::Duration::from_millis(5);
/// Cap on the accept-failure back-off.
const ACCEPT_BACKOFF_MAX: std::time::Duration = std::time::Duration::from_millis(500);

fn accept_loop(
    listener: TcpListener,
    orb: Orb,
    running: Arc<AtomicBool>,
    workers: Arc<WorkerPool>,
    shared: Arc<ServerShared>,
) {
    // When HEIDL_FAULT_PLAN is set (demo servers, chaos runs), every
    // accepted transport is wrapped in a fault injector driven by it.
    let fault_plan = crate::fault::FaultPlan::from_env();
    let mut backoff = ACCEPT_BACKOFF_BASE;
    loop {
        let stream = listener.accept();
        if !running.load(Ordering::SeqCst) {
            break;
        }
        let stream = match stream {
            Ok((stream, _)) => {
                backoff = ACCEPT_BACKOFF_BASE;
                stream
            }
            // Transient accept failures (EMFILE, ECONNABORTED, ...) must
            // not kill the server: back off so a persistent condition does
            // not spin the CPU, then keep serving.
            Err(e) => {
                trace::emit_with(TraceLevel::Warn, "server", || {
                    format!("accept failed (backing off {backoff:?}): {e}")
                });
                std::thread::sleep(backoff);
                backoff = (backoff * 2).min(ACCEPT_BACKOFF_MAX);
                continue;
            }
        };
        // Connection admission: over the cap (or draining), close
        // immediately — cheaper than a reader thread per rejected peer.
        if shared.connections.load(Ordering::SeqCst) >= shared.policy.max_connections
            || shared.draining.load(Ordering::SeqCst)
        {
            shared.shed_connection();
            drop(stream);
            continue;
        }
        shared.connections.fetch_add(1, Ordering::SeqCst);
        let conn_guard = ConnGuard { shared: Arc::clone(&shared) };
        let Ok(transport) = TcpTransport::from_stream(stream) else { continue };
        // Slow-client protection: an idle reader or a blocked reply write
        // times out at the socket, tearing the connection down.
        let _ =
            transport.set_timeouts(shared.policy.read_idle_timeout, shared.policy.write_timeout);
        let mut transport: Box<dyn Transport> = Box::new(transport);
        if let Some(plan) = &fault_plan {
            let label = transport.peer();
            transport =
                Box::new(crate::fault::FaultInjector::wrap(transport, Arc::clone(plan), label));
        }
        let conn_orb = orb.clone();
        let conn_workers = Arc::clone(&workers);
        let conn_shared = Arc::clone(&shared);
        let _ = std::thread::Builder::new().name("heidl-conn".to_owned()).spawn(move || {
            let _conn_guard = conn_guard;
            connection_loop(transport, conn_orb, conn_workers, conn_shared);
        });
    }
}

/// A connection's write half, as every dispatch job (and the drain and
/// sweep paths) sees it: the threaded engine's blocking [`ReplyWriter`]
/// and the reactor's queueing non-blocking [`ConnWriter`] both implement
/// it, so [`route_frame`] and the worker pool are engine-agnostic.
pub(crate) trait ReplySink: Send + Sync {
    /// Writes one framed reply, recycling the (pooled) body storage once
    /// the bytes are on the wire (or queued for it).
    fn send(&self, body: Vec<u8>) -> RmiResult<()>;

    /// As [`Self::send`] but without touching the byte counters: replies
    /// to the built-in `_health`/`_metrics` objects — including heartbeat
    /// pings — are runtime chatter, not application traffic, and must not
    /// skew `_metrics` byte totals.
    fn send_unmetered(&self, body: Vec<u8>) -> RmiResult<()>;

    /// Tears the connection down: shuts the socket down so the read side
    /// (blocked thread or reactor source) observes EOF and cleans up.
    fn force_close(&self);

    /// Whether the connection has gone idle past `idle_after` or has had
    /// reply bytes queued without progress past `write_stall`. Only the
    /// reactor writer reports either — the threaded engine's socket
    /// timeouts already police both.
    fn stalled(&self, idle_after: Option<Duration>, write_stall: Option<Duration>) -> bool {
        let _ = (idle_after, write_stall);
        false
    }
}

/// The write half of a connection, shared by every dispatch that answers
/// on it. Frames under a brief lock so interleaved replies stay whole.
struct ReplyWriter {
    transport: Mutex<Box<dyn Transport>>,
    protocol: Arc<dyn heidl_wire::Protocol>,
    metrics: Arc<Metrics>,
}

impl ReplyWriter {
    /// Takes the body by value so its (pooled) storage can be recycled
    /// once the bytes are on the wire. A write failure is traced here —
    /// the one choke point every reply passes through — so a connection
    /// torn down mid-reply never vanishes silently.
    fn send_with_accounting(&self, body: Vec<u8>, metered: bool) -> RmiResult<()> {
        let len = body.len();
        let result = {
            let mut transport = self.transport.lock();
            write_framed(transport.as_mut(), self.protocol.as_ref(), &body)
        };
        heidl_wire::pool::recycle(body);
        match &result {
            Ok(()) if metered => self.metrics.add(Counter::BytesOut, len as u64),
            Ok(()) => {}
            Err(e) => trace::emit_with(TraceLevel::Warn, "server", || {
                format!("reply write failed; dropping connection: {e}")
            }),
        }
        result
    }
}

impl ReplySink for ReplyWriter {
    fn send(&self, body: Vec<u8>) -> RmiResult<()> {
        self.send_with_accounting(body, true)
    }

    fn send_unmetered(&self, body: Vec<u8>) -> RmiResult<()> {
        self.send_with_accounting(body, false)
    }

    fn force_close(&self) {
        self.transport.lock().shutdown();
    }
}

/// Routes one deframed request — the single path both engines feed. The
/// read side (a `heidl-conn` thread or a reactor [`ConnSource`]) calls
/// this once per frame; returns `false` when the reply sink failed and
/// the connection should be torn down.
fn route_frame(
    body: PooledBuf,
    orb: &Orb,
    workers: &WorkerPool,
    shared: &Arc<ServerShared>,
    per_conn: &Arc<AtomicUsize>,
    sink: &Arc<dyn ReplySink>,
    conn_id: u64,
) -> bool {
    let protocol = orb.protocol();
    let limits = &shared.policy.decode_limits;
    let body_len = body.len() as u64;
    // One borrowed decode pass yields everything routing needs: the
    // id, the reply-expected flag, and the target object id.
    match peek_route(&body, protocol.as_ref(), limits) {
        // `_health` probes and `_metrics` reads bypass admission
        // control and dispatch inline on the reader (they are cheap
        // and run no servant code): overload or drain must never
        // blind observability. They also stay out of the byte
        // counters — a client heartbeating through a quiet period
        // must not read back as application traffic.
        Ok((_, _, Some(HEALTH_OBJECT_ID | METRICS_OBJECT_ID))) => {
            if let Some(reply) = handle_request(body.into(), orb, shared) {
                if sink.send_unmetered(reply).is_err() {
                    return false;
                }
            }
        }
        // Stream-credit acks target the reserved ack object and are
        // handled inline on the reader, unmetered and never queued
        // behind servant work — a credit grant stuck in the worker
        // queue would starve the very stream it is meant to unblock.
        Ok((_, _, Some(STREAM_ACK_OBJECT_ID))) => {
            handle_stream_ack(body.into(), orb, shared, conn_id);
        }
        // oneway: dispatch inline so a client's oneway-then-call
        // sequence executes in order; there is no reply to write, so
        // an overload shed is silent (but counted).
        Ok((_, false, _)) => {
            shared.metrics.add(Counter::BytesIn, body_len);
            match shared.try_admit(per_conn) {
                Ok(guard) => {
                    let _ = handle_request(body.into(), orb, shared);
                    drop(guard);
                }
                Err(_) => shared.shed_request(),
            }
        }
        Ok((request_id, true, object_id)) => {
            shared.metrics.add(Counter::BytesIn, body_len);
            match shared.try_admit(per_conn) {
                Ok(guard) => {
                    let job_orb = orb.clone();
                    let job_sink = Arc::clone(sink);
                    let job_shared = Arc::clone(shared);
                    let job_body: Vec<u8> = body.into();
                    // A target registered as a stream servant dispatches on
                    // the pump path: same worker pool, same in-flight
                    // guard, but the reply goes out as chunked frames.
                    let streamer = object_id.and_then(|id| orb.stream_servant(id));
                    let job: Job = match streamer {
                        Some(servant) => Box::new(move || {
                            // The guard lives until the final chunk is on
                            // the wire — drains wait for whole streams.
                            let _guard = guard;
                            pump_stream(
                                job_body,
                                servant,
                                &job_orb,
                                &job_shared,
                                &job_sink,
                                conn_id,
                            );
                        }),
                        None => Box::new(move || {
                            // The guard lives until the reply is on the wire.
                            let _guard = guard;
                            if let Some(reply) = handle_request(job_body, &job_orb, &job_shared) {
                                let _ = job_sink.send(reply);
                            }
                        }),
                    };
                    let accepted = workers.submit(job);
                    if !accepted {
                        // The dropped job released its guard; tell the
                        // client to back off.
                        shared.shed_request();
                        let busy = ReplyBuilder::busy(
                            protocol.as_ref(),
                            request_id,
                            "worker pool overflow cap reached",
                        );
                        if sink.send(busy).is_err() {
                            return false;
                        }
                    }
                }
                Err(reason) => {
                    shared.shed_request();
                    let busy = ReplyBuilder::busy(protocol.as_ref(), request_id, &reason);
                    if sink.send(busy).is_err() {
                        return false;
                    }
                }
            }
        }
        // Unparsable header — diagnose inline (a telnet user who
        // mistyped wants the error back immediately).
        Err(_) => {
            shared.metrics.add(Counter::BytesIn, body_len);
            if let Some(reply) = handle_request(body.into(), orb, shared) {
                if sink.send(reply).is_err() {
                    return false;
                }
            }
        }
    }
    true
}

/// Serves one connection until the peer closes it: the reader thread
/// deframes and routes (shedding what admission control refuses),
/// workers dispatch and reply.
fn connection_loop(
    transport: Box<dyn Transport>,
    orb: Orb,
    workers: Arc<WorkerPool>,
    shared: Arc<ServerShared>,
) {
    let protocol = Arc::clone(orb.protocol());
    let limits = shared.policy.decode_limits;
    // Fig 5 (1): wrap the read half in a new ObjectCommunicator.
    let Ok((write_half, read_half)) = transport.split() else { return };
    let writer = Arc::new(ReplyWriter {
        transport: Mutex::new(write_half),
        protocol: Arc::clone(&protocol),
        metrics: Arc::clone(&shared.metrics),
    });
    let sink: Arc<dyn ReplySink> = Arc::clone(&writer) as Arc<dyn ReplySink>;
    // Register for force-close at drain timeout; deregister on exit.
    let conn_id = shared.next_conn_id.fetch_add(1, Ordering::SeqCst);
    shared.conns.lock().insert(conn_id, Arc::downgrade(&sink));
    // This connection's share of the in-flight budget.
    let per_conn = Arc::new(AtomicUsize::new(0));
    let mut comm = ObjectCommunicator::with_limits(read_half, Arc::clone(&protocol), limits);
    while let Ok(Some(body)) = comm.recv() {
        if !route_frame(body, &orb, &workers, &shared, &per_conn, &sink, conn_id) {
            break;
        }
    }
    shared.conns.lock().remove(&conn_id);
    // Streams pumping toward this connection can never be acked again;
    // fail them fast instead of letting each wait out the credit timeout.
    shared.close_conn_streams(conn_id);
}

/// Fig 5 (2)-(4): decode the request, select the skeleton by object id,
/// dispatch (recursively up the inheritance chain), and build the reply.
/// Returns `None` for `oneway` requests, which must not be answered.
pub(crate) fn handle_request(body: Vec<u8>, orb: &Orb, shared: &ServerShared) -> Option<Vec<u8>> {
    let protocol = Arc::clone(orb.protocol());
    // Call tracing: when the client stamped the request with a trailing
    // wire context, make it current for the whole dispatch — server-side
    // trace events and any *nested* outbound calls this dispatch makes
    // then carry the caller's id as their parent. Skipped entirely (one
    // relaxed load) when tracing is off.
    let _ctx_guard = if trace::enabled(TraceLevel::Debug) {
        extract_call_context(&body, protocol.as_ref()).map(|ctx| ctx.enter())
    } else {
        None
    };
    // Best-effort id for diagnostics on unparsable requests: both message
    // kinds lead with the id, so the reply-peek works on requests too.
    let fallback_id = peek_reply_id(&body, protocol.as_ref()).unwrap_or(0);
    // Exactly-once: the invocation token rides the body's tail, so it must
    // be read before parsing consumes the bytes.
    let token = extract_invocation_token(&body, protocol.as_ref());
    let mut incoming =
        match IncomingCall::parse_limited(body, protocol.as_ref(), &shared.policy.decode_limits) {
            Ok(c) => c,
            Err(e) => {
                // The header did not parse, so we cannot know whether a reply
                // is expected; send the diagnostic (a telnet user wants it).
                return Some(ReplyBuilder::exception(
                    protocol.as_ref(),
                    fallback_id,
                    ReplyStatus::SystemException,
                    "IDL:heidl/BadRequest:1.0",
                    &e.to_string(),
                ));
            }
        };
    if let (Some(token), true) = (token, incoming.response_expected) {
        let key = (token.session, token.seq);
        let (decision, purged) = shared.replay.begin(key);
        if purged > 0 {
            shared.metrics.add(Counter::ReplyCacheEvictions, purged);
        }
        return Some(match decision {
            ReplayDecision::Execute => {
                let reply_body = dispatch_request(&mut incoming, orb, shared, &protocol);
                let evicted = shared.replay.complete(key, &reply_body);
                if evicted > 0 {
                    shared.metrics.add(Counter::ReplyCacheEvictions, evicted);
                }
                reply_body
            }
            // A duplicate of a completed invocation: replay the reply
            // byte-for-byte (a retry reuses its request id, so the
            // embedded id already matches) — the servant never re-runs.
            ReplayDecision::Replay(reply_body) => {
                shared.metrics.inc(Counter::DedupReplays);
                reply_body
            }
            // A duplicate racing the first execution: Busy is Safe to
            // retry, so the client backs off and replays once complete.
            ReplayDecision::InFlight => ReplyBuilder::busy(
                protocol.as_ref(),
                incoming.request_id,
                "retry of an in-flight invocation",
            ),
        });
    }
    let reply_body = dispatch_request(&mut incoming, orb, shared, &protocol);
    incoming.response_expected.then_some(reply_body)
}

/// Handles one inbound flow-control ack (a oneway to the reserved
/// [`STREAM_ACK_OBJECT_ID`]): `ulonglong stream-request-id · ulonglong
/// consumed-bytes` grant straight into the stream's credit window.
/// Malformed acks are dropped silently — they are runtime chatter, and a
/// hostile one can at worst refill a window the policy already capped.
fn handle_stream_ack(body: Vec<u8>, orb: &Orb, shared: &ServerShared, conn_id: u64) {
    let protocol = orb.protocol();
    let Ok(mut incoming) =
        IncomingCall::parse_limited(body, protocol.as_ref(), &shared.policy.decode_limits)
    else {
        return;
    };
    let (Ok(stream_id), Ok(bytes)) = (incoming.args.get_ulonglong(), incoming.args.get_ulonglong())
    else {
        return;
    };
    shared.grant_stream(conn_id, stream_id, bytes);
}

/// Fallback credit-wait budget when the policy sets no `write_timeout`: a
/// stream whose client stops acking for this long is aborted rather than
/// parked forever on a worker thread.
const STREAM_CREDIT_TIMEOUT: Duration = Duration::from_secs(30);

/// Dispatches one streamed invocation end to end on a worker thread:
/// opens the servant's [`StreamBody`](crate::stream::StreamBody), then
/// pumps fragments as chunk-tailed OK replies through the connection's
/// sink — spending window credit per fragment, pacing through the shared
/// bucket — until the body is exhausted or the stream aborts.
///
/// A request *without* the chunk tail (a plain caller) gets the whole
/// payload accumulated into one ordinary reply instead: streaming is a
/// client opt-in, not a wire break.
fn pump_stream(
    body: Vec<u8>,
    servant: Arc<dyn StreamServant>,
    orb: &Orb,
    shared: &Arc<ServerShared>,
    sink: &Arc<dyn ReplySink>,
    conn_id: u64,
) {
    let protocol = Arc::clone(orb.protocol());
    let _ctx_guard = if trace::enabled(TraceLevel::Debug) {
        extract_call_context(&body, protocol.as_ref()).map(|ctx| ctx.enter())
    } else {
        None
    };
    let fallback_id = peek_reply_id(&body, protocol.as_ref()).unwrap_or(0);
    // The client's opt-in rides the request's chunk tail; its index field
    // carries the requested credit window in bytes.
    let requested = protocol.extract_chunk(&body).map(|(window, _)| window);
    let token = extract_invocation_token(&body, protocol.as_ref());
    let mut incoming =
        match IncomingCall::parse_limited(body, protocol.as_ref(), &shared.policy.decode_limits) {
            Ok(c) => c,
            Err(e) => {
                let _ = sink.send(ReplyBuilder::exception(
                    protocol.as_ref(),
                    fallback_id,
                    ReplyStatus::SystemException,
                    "IDL:heidl/BadRequest:1.0",
                    &e.to_string(),
                ));
                return;
            }
        };
    let request_id = incoming.request_id;
    // Exactly-once bookkeeping brackets the stream, but the reply cache
    // never holds the chunks themselves (see the completion below).
    let replay_key = token.map(|t| (t.session, t.seq));
    if let Some(key) = replay_key {
        let (decision, purged) = shared.replay.begin(key);
        if purged > 0 {
            shared.metrics.add(Counter::ReplyCacheEvictions, purged);
        }
        match decision {
            ReplayDecision::Execute => {}
            ReplayDecision::Replay(reply_body) => {
                shared.metrics.inc(Counter::DedupReplays);
                let _ = sink.send(reply_body);
                return;
            }
            ReplayDecision::InFlight => {
                let _ = sink.send(ReplyBuilder::busy(
                    protocol.as_ref(),
                    request_id,
                    "retry of an in-flight invocation",
                ));
                return;
            }
        }
    }
    orb.inner.interceptors.fire(
        crate::interceptor::CallPhase::ServerDispatch,
        &incoming.target,
        &incoming.method,
        true,
    );
    let started = Instant::now();
    let opened = servant.open(&incoming.method, incoming.args.as_mut());
    shared.metrics.record_server_dispatch(
        &incoming.method,
        started.elapsed().as_nanos() as u64,
        opened.is_ok(),
    );
    orb.inner.interceptors.fire(
        crate::interceptor::CallPhase::ServerReply,
        &incoming.target,
        &incoming.method,
        opened.is_ok(),
    );
    let mut stream_body = match opened {
        Ok(b) => b,
        Err(e) => {
            // An `open` failure is an ordinary (bounded) exception reply;
            // unlike chunks it is perfectly cacheable, so exactly-once
            // retries replay it like any other dispatch failure.
            let reply = match e {
                RmiError::Remote { repo_id, detail } => ReplyBuilder::exception(
                    protocol.as_ref(),
                    request_id,
                    ReplyStatus::UserException,
                    &repo_id,
                    &detail,
                ),
                other => ReplyBuilder::exception(
                    protocol.as_ref(),
                    request_id,
                    ReplyStatus::SystemException,
                    "IDL:heidl/DispatchFailed:1.0",
                    &other.to_string(),
                ),
            };
            complete_replay(shared, replay_key, &reply);
            let _ = sink.send(reply);
            return;
        }
    };
    let Some(requested) = requested else {
        // Compatibility path: no opt-in tail, so materialize the whole
        // payload into one ordinary reply (bounded buffering is the
        // opting client's reward, not a wire-level requirement).
        let mut all = String::new();
        while let Some(fragment) = stream_body.next_fragment(shared.policy.stream_chunk_bytes) {
            all.push_str(&fragment);
        }
        let mut reply = ReplyBuilder::ok(protocol.as_ref(), request_id);
        reply.results().put_string(&all);
        let reply = reply.into_body();
        complete_replay(shared, replay_key, &reply);
        let _ = sink.send(reply);
        return;
    };
    // The client asks, the policy caps: the effective window is the
    // smaller of the two, and the client learns it implicitly by acking
    // whatever arrives (its reader force-flushes pending acks before
    // blocking, so a clamped window cannot deadlock).
    let window_bytes = requested.clamp(1, shared.policy.stream_window_bytes as u64);
    let chunk_max = shared.policy.stream_chunk_bytes.min(window_bytes as usize).max(1);
    let window = Arc::new(StreamWindow::new(window_bytes));
    shared.register_stream(conn_id, request_id, Arc::clone(&window));
    let credit_timeout = shared.policy.write_timeout.unwrap_or(STREAM_CREDIT_TIMEOUT);
    let mut index: u64 = 0;
    let mut next = stream_body.next_fragment(chunk_max);
    let aborted = loop {
        // Look one fragment ahead so the final frame can say `last` —
        // an empty body still sends one empty terminal chunk.
        let mid_stream = next.is_some();
        let fragment = next.unwrap_or_default();
        let upcoming = if mid_stream { stream_body.next_fragment(chunk_max) } else { None };
        let last = upcoming.is_none();
        if !fragment.is_empty() && !window.consume(fragment.len() as u64, credit_timeout) {
            break true;
        }
        if let Some(bucket) = &shared.stream_bucket {
            bucket.pace(fragment.len() as u64);
        }
        let mut reply = ReplyBuilder::ok(protocol.as_ref(), request_id);
        reply.results().put_string(&fragment);
        let _ = protocol.encode_chunk(reply.results(), index, last);
        if sink.send(reply.into_body()).is_err() {
            break true;
        }
        if last {
            break false;
        }
        index += 1;
        next = upcoming;
    };
    shared.unregister_stream(conn_id, request_id);
    if let Some(key) = replay_key {
        // A streamed reply never enters the reply cache whole — one 64 MiB
        // stream would evict everything else. A retry that lands after the
        // stream went out replays this always-safe-to-retry marker instead
        // and the caller re-invokes.
        let marker = ReplyBuilder::exception(
            protocol.as_ref(),
            request_id,
            ReplyStatus::Busy,
            STREAM_EXPIRED_REPO_ID,
            "streamed reply is not replayable; re-invoke",
        );
        let evicted = shared.replay.complete(key, &marker);
        if evicted > 0 {
            shared.metrics.add(Counter::ReplyCacheEvictions, evicted);
        }
    }
    if aborted {
        trace::emit_with(TraceLevel::Warn, "server", || {
            format!("stream {request_id} aborted: credit window stalled or connection lost")
        });
        // Best-effort: a live-but-stalled client gets a terminal
        // (unchunked) exception frame instead of hanging to its timeout.
        let _ = sink.send(ReplyBuilder::exception(
            protocol.as_ref(),
            request_id,
            ReplyStatus::SystemException,
            "IDL:heidl/StreamAborted:1.0",
            "stream aborted: credit window stalled",
        ));
    }
}

/// Completes an exactly-once invocation with `reply` when a token was
/// attached, mirroring the eviction accounting on the skeleton path.
fn complete_replay(shared: &ServerShared, key: Option<(u64, u64)>, reply: &[u8]) {
    if let Some(key) = key {
        let evicted = shared.replay.complete(key, reply);
        if evicted > 0 {
            shared.metrics.add(Counter::ReplyCacheEvictions, evicted);
        }
    }
}

/// Serves the built-in `_health` object: `ping` echoes liveness, `report`
/// marshals the [`ServerHealth`] snapshot as `bool accepting · ulonglong
/// in-flight · ulonglong connections · ulonglong shed-requests ·
/// ulonglong shed-connections`. Readable over telnet like any servant.
fn dispatch_health(
    incoming: &IncomingCall,
    shared: &ServerShared,
    protocol: &Arc<dyn heidl_wire::Protocol>,
) -> Vec<u8> {
    let mut reply = ReplyBuilder::ok(protocol.as_ref(), incoming.request_id);
    match incoming.method.as_str() {
        "ping" => reply.results().put_string("pong"),
        "report" => {
            let h = shared.snapshot();
            let enc = reply.results();
            enc.put_bool(h.accepting);
            enc.put_ulonglong(h.in_flight);
            enc.put_ulonglong(h.connections);
            enc.put_ulonglong(h.shed_requests);
            enc.put_ulonglong(h.shed_connections);
        }
        other => {
            return ReplyBuilder::exception(
                protocol.as_ref(),
                incoming.request_id,
                ReplyStatus::SystemException,
                "IDL:heidl/UnknownMethod:1.0",
                &RmiError::UnknownMethod {
                    type_id: HEALTH_TYPE_ID.to_owned(),
                    method: other.to_owned(),
                }
                .to_string(),
            );
        }
    }
    reply.into_body()
}

/// Serves the built-in `_metrics` object (`IDL:heidl/Metrics:1.0`):
///
/// * `snapshot` — machine-readable: every counter in [`Counter::ALL`]
///   order (`ulonglong` each; the order is append-only so old clients
///   keep decoding), then `ulong` server-op count followed per op by
///   `string name · ulonglong calls · failures · p50_ns · p99_ns`;
/// * `reset` — zeroes the registry, returns `bool` true;
/// * `dump` — human-readable: `ulong` row count then one `string` per
///   row of [`Metrics::dump_rows`]' table (counters, live gauges,
///   per-op latency buckets), designed to be read over a raw telnet
///   session on the text protocol.
fn dispatch_metrics(
    incoming: &IncomingCall,
    orb: &Orb,
    shared: &ServerShared,
    protocol: &Arc<dyn heidl_wire::Protocol>,
) -> Vec<u8> {
    let metrics = &shared.metrics;
    let mut reply = ReplyBuilder::ok(protocol.as_ref(), incoming.request_id);
    match incoming.method.as_str() {
        "snapshot" => {
            let snap = metrics.snapshot();
            let enc = reply.results();
            for c in Counter::ALL {
                enc.put_ulonglong(snap.counter(c));
            }
            enc.put_ulong(snap.server_ops.len() as u32);
            for (name, op) in &snap.server_ops {
                enc.put_string(name);
                enc.put_ulonglong(op.calls);
                enc.put_ulonglong(op.failures);
                enc.put_ulonglong(op.p50_ns);
                enc.put_ulonglong(op.p99_ns);
            }
        }
        "reset" => {
            metrics.reset();
            reply.results().put_bool(true);
        }
        "dump" => {
            // Gauges are sampled here, not stored in the registry: they
            // are live occupancy values, meaningless as counters.
            let health = shared.snapshot();
            let pool = orb.connections();
            let gauges = [
                ("in_flight", health.in_flight),
                ("connections", health.connections),
                ("pool_opened", pool.opened_count()),
                ("pool_pooled", pool.pooled_count() as u64),
                ("pool_pending", pool.pending_total() as u64),
                ("reply_cache_entries", shared.replay.len() as u64),
                ("reply_cache_bytes", shared.replay.bytes() as u64),
            ];
            let rows = metrics.dump_rows(&gauges);
            let enc = reply.results();
            enc.put_ulong(rows.len() as u32);
            for row in &rows {
                enc.put_string(row);
            }
        }
        other => {
            return ReplyBuilder::exception(
                protocol.as_ref(),
                incoming.request_id,
                ReplyStatus::SystemException,
                "IDL:heidl/UnknownMethod:1.0",
                &RmiError::UnknownMethod {
                    type_id: METRICS_TYPE_ID.to_owned(),
                    method: other.to_owned(),
                }
                .to_string(),
            );
        }
    }
    reply.into_body()
}

fn dispatch_request(
    incoming: &mut IncomingCall,
    orb: &Orb,
    shared: &ServerShared,
    protocol: &Arc<dyn heidl_wire::Protocol>,
) -> Vec<u8> {
    let request_id = incoming.request_id;
    // The well-known health and metrics objects are served by the runtime
    // itself, not the skeleton registry (so `skeleton_count()` stays the
    // number of application exports).
    if incoming.target.object_id == HEALTH_OBJECT_ID {
        return dispatch_health(incoming, shared, protocol);
    }
    if incoming.target.object_id == METRICS_OBJECT_ID {
        return dispatch_metrics(incoming, orb, shared, protocol);
    }
    let skeleton = {
        let objects = orb.inner.objects.read();
        objects.get(&incoming.target.object_id).cloned()
    };
    let Some(skeleton) = skeleton else {
        return ReplyBuilder::exception(
            protocol.as_ref(),
            request_id,
            ReplyStatus::SystemException,
            "IDL:heidl/UnknownObject:1.0",
            &RmiError::UnknownObject { reference: incoming.target.to_string() }.to_string(),
        );
    };

    orb.inner.interceptors.fire(
        crate::interceptor::CallPhase::ServerDispatch,
        &incoming.target,
        &incoming.method,
        true,
    );
    let mut reply = ReplyBuilder::ok(protocol.as_ref(), request_id);
    let started = Instant::now();
    let outcome = skeleton.dispatch(&incoming.method, incoming.args.as_mut(), reply.results());
    shared.metrics.record_server_dispatch(
        &incoming.method,
        started.elapsed().as_nanos() as u64,
        matches!(outcome, Ok(DispatchOutcome::Handled)),
    );
    orb.inner.interceptors.fire(
        crate::interceptor::CallPhase::ServerReply,
        &incoming.target,
        &incoming.method,
        matches!(outcome, Ok(DispatchOutcome::Handled)),
    );
    match outcome {
        Ok(DispatchOutcome::Handled) => reply.into_body(),
        Ok(DispatchOutcome::NotFound) => ReplyBuilder::exception(
            protocol.as_ref(),
            request_id,
            ReplyStatus::SystemException,
            "IDL:heidl/UnknownMethod:1.0",
            &RmiError::UnknownMethod {
                type_id: Skeleton::type_id(skeleton.as_ref()).to_owned(),
                method: incoming.method.clone(),
            }
            .to_string(),
        ),
        // A servant-raised exception carries its own repository id.
        Err(RmiError::Remote { repo_id, detail }) => ReplyBuilder::exception(
            protocol.as_ref(),
            request_id,
            ReplyStatus::UserException,
            &repo_id,
            &detail,
        ),
        Err(other) => ReplyBuilder::exception(
            protocol.as_ref(),
            request_id,
            ReplyStatus::SystemException,
            "IDL:heidl/DispatchFailed:1.0",
            &other.to_string(),
        ),
    }
}

// ---- reactor engine -----------------------------------------------------

/// The listener as a reactor source: each readiness event drains the
/// accept queue (nonblocking listener) and registers every admitted
/// connection as a [`ConnSource`]/[`ConnWriter`] pair on the same loop.
struct AcceptSource {
    listener: TcpListener,
    orb: Orb,
    workers: Arc<WorkerPool>,
    shared: Arc<ServerShared>,
    closed: Arc<AtomicBool>,
}

impl Drop for AcceptSource {
    fn drop(&mut self) {
        self.closed.store(true, Ordering::SeqCst);
    }
}

impl Source for AcceptSource {
    fn fd(&self) -> i32 {
        use std::os::fd::AsRawFd;
        self.listener.as_raw_fd()
    }

    fn on_ready(&mut self, _events: u32, reactor: &ReactorHandle) -> Action {
        loop {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    register_reactor_conn(stream, &self.orb, &self.workers, &self.shared, reactor);
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                // The aborted connection is gone; the next queue entry
                // may be fine.
                Err(e) if e.kind() == std::io::ErrorKind::ConnectionAborted => continue,
                // Resource exhaustion (EMFILE/ENFILE/ENOMEM) and other
                // persistent failures must not kill the server — but
                // under level-triggered epoll the listener stays readable
                // while the queue entry we cannot accept is pending, so
                // breaking bare would spin the loop hot. A short sleep
                // bounds that: degraded, not burning a core.
                Err(e) => {
                    trace::emit_with(TraceLevel::Warn, "server", || format!("accept failed: {e}"));
                    std::thread::sleep(Duration::from_millis(10));
                    break;
                }
            }
        }
        Action::Keep
    }
}

/// Admission + registration for one reactor-accepted connection: the
/// readiness-loop counterpart of the tail of [`accept_loop`].
fn register_reactor_conn(
    stream: TcpStream,
    orb: &Orb,
    workers: &Arc<WorkerPool>,
    shared: &Arc<ServerShared>,
    reactor: &ReactorHandle,
) {
    // Connection admission: over the cap (or draining), close
    // immediately — cheaper than a registered source per rejected peer.
    if shared.connections.load(Ordering::SeqCst) >= shared.policy.max_connections
        || shared.draining.load(Ordering::SeqCst)
    {
        shared.shed_connection();
        drop(stream);
        return;
    }
    shared.connections.fetch_add(1, Ordering::SeqCst);
    let conn_guard = ConnGuard { shared: Arc::clone(shared) };
    let Ok(transport) = TcpTransport::from_stream(stream) else { return };
    // No socket timeouts here: MSG_DONTWAIT I/O never blocks on them, and
    // the sweep timer polices idle/stalled peers instead.
    let transport: Box<dyn Transport> = Box::new(transport);
    let Ok((write_half, read_half)) = transport.split() else { return };
    let token = reactor.alloc_id();
    let writer = Arc::new(ConnWriter {
        inner: Mutex::new(WriterInner {
            transport: write_half,
            queue: Vec::new(),
            pos: 0,
            queued_since: None,
            dead: false,
            accounted: 0,
        }),
        reactor: reactor.clone(),
        token,
        protocol: Arc::clone(orb.protocol()),
        metrics: Arc::clone(&shared.metrics),
        last_activity: Mutex::new(Instant::now()),
        budget: Arc::clone(&shared.reply_budget),
    });
    let sink: Arc<dyn ReplySink> = Arc::clone(&writer) as Arc<dyn ReplySink>;
    let conn_id = shared.next_conn_id.fetch_add(1, Ordering::SeqCst);
    shared.conns.lock().insert(conn_id, Arc::downgrade(&sink));
    let source = ConnSource {
        transport: read_half,
        buf: FrameBuf::new(),
        writer,
        sink,
        orb: orb.clone(),
        workers: Arc::clone(workers),
        shared: Arc::clone(shared),
        per_conn: Arc::new(AtomicUsize::new(0)),
        conn_id,
        _conn: conn_guard,
    };
    reactor.register(token, EPOLLIN | EPOLLRDHUP, Box::new(source));
}

/// What [`ConnWriter::flush`] left behind.
enum FlushState {
    /// Queue fully drained; `EPOLLOUT` can be disarmed.
    Idle,
    /// Kernel buffer filled again mid-queue; keep `EPOLLOUT` armed.
    Pending,
    /// The socket failed; tear the connection down.
    Dead,
}

/// State behind the [`ConnWriter`] lock: the write-half transport plus
/// the pending-bytes queue a partial write leaves behind.
struct WriterInner {
    transport: Box<dyn Transport>,
    /// Reply bytes accepted but not yet written (`pos..` is pending);
    /// non-empty exactly while `EPOLLOUT` is armed for this connection.
    queue: Vec<u8>,
    pos: usize,
    /// When the oldest still-queued byte last made progress — the input
    /// to the sweep timer's `write_timeout` stall check.
    queued_since: Option<Instant>,
    dead: bool,
    /// This writer's share currently counted in the global [`ReplyBudget`];
    /// [`WriterInner::settle`] reconciles it after every queue mutation.
    accounted: usize,
}

/// The reactor engine's reply writer: framing and accounting match
/// [`ReplyWriter`] byte-for-byte, but writes are `MSG_DONTWAIT` — when
/// the kernel buffer fills, the remainder queues here and the connection
/// arms `EPOLLOUT`; the loop continues the write when the peer catches
/// up, so a slow reader stalls *its own* replies, never a worker thread.
struct ConnWriter {
    inner: Mutex<WriterInner>,
    reactor: ReactorHandle,
    /// The connection's source token — `EPOLLOUT` (re)arms target it.
    token: u64,
    protocol: Arc<dyn heidl_wire::Protocol>,
    metrics: Arc<Metrics>,
    /// Last inbound activity, touched by the read source; the sweep
    /// timer's `read_idle_timeout` check reads it.
    last_activity: Mutex<Instant>,
    /// The server-wide reply-byte budget this writer settles its queue
    /// occupancy into.
    budget: Arc<ReplyBudget>,
}

impl ConnWriter {
    fn send_with_accounting(&self, body: Vec<u8>, metered: bool) -> RmiResult<()> {
        let len = body.len();
        let result = self.write_frame(&body);
        pool::recycle(body);
        match &result {
            Ok(()) if metered => self.metrics.add(Counter::BytesOut, len as u64),
            Ok(()) => {}
            Err(e) => trace::emit_with(TraceLevel::Warn, "server", || {
                format!("reply write failed; dropping connection: {e}")
            }),
        }
        result
    }

    /// Frames and writes one reply body. Runs on a worker thread: the
    /// frame goes straight to the socket when nothing is queued (the hot
    /// path touches the reactor not at all); otherwise — or when the
    /// kernel buffer fills mid-write — the remainder is queued and
    /// `EPOLLOUT` armed for continuation.
    fn write_frame(&self, body: &[u8]) -> RmiResult<()> {
        let mut header = [0u8; MAX_FRAME_HEADER];
        let arm = {
            let mut inner = self.inner.lock();
            let result = if let Some((header_len, trailer)) =
                self.protocol.frame_parts(body.len(), &mut header)
            {
                inner.write_parts(&[&header[..header_len], body, trailer])
            } else {
                let mut framed = pool::global().get();
                framed.reserve(body.len() + MAX_FRAME_HEADER);
                self.protocol.frame(body, &mut framed);
                inner.write_parts(&[&framed])
            };
            inner.settle(&self.budget);
            result?
        };
        if arm {
            // Queue transitioned (or stayed) non-empty: make sure the loop
            // watches for writability. Redundant re-arms are harmless —
            // the source itself disarms once the queue drains.
            self.reactor.rearm(self.token, EPOLLIN | EPOLLOUT | EPOLLRDHUP);
        }
        Ok(())
    }

    /// Continues the queued write (reactor thread, `EPOLLOUT`).
    fn flush(&self) -> FlushState {
        let mut inner = self.inner.lock();
        let state = inner.continue_write();
        inner.settle(&self.budget);
        state
    }

    /// Whether reply bytes are still queued (drives `EPOLLOUT` interest).
    fn has_backlog(&self) -> bool {
        let inner = self.inner.lock();
        inner.pos < inner.queue.len()
    }

    fn touch(&self) {
        *self.last_activity.lock() = Instant::now();
    }

    /// Marks the writer unusable and drops queued bytes: called when the
    /// read source goes away (peer EOF or reactor teardown) — nothing
    /// will ever flush the queue again, so later sends fail fast.
    fn mark_dead(&self) {
        let mut inner = self.inner.lock();
        inner.dead = true;
        inner.queue.clear();
        inner.pos = 0;
        inner.queued_since = None;
        inner.settle(&self.budget);
    }
}

impl WriterInner {
    /// Continues the pending write until drained, blocked, or dead — the
    /// body of [`ConnWriter::flush`], split out so the caller can settle
    /// the budget after it under the same lock hold.
    fn continue_write(&mut self) -> FlushState {
        if self.dead {
            return FlushState::Dead;
        }
        while self.pos < self.queue.len() {
            match self.transport.try_send(&self.queue[self.pos..]) {
                Ok(Some(n)) if n > 0 => {
                    self.pos += n;
                    self.queued_since = Some(Instant::now());
                }
                Ok(None) => return FlushState::Pending,
                Ok(Some(_)) | Err(_) => {
                    self.dead = true;
                    return FlushState::Dead;
                }
            }
        }
        self.queue.clear();
        self.pos = 0;
        self.queued_since = None;
        FlushState::Idle
    }

    /// Reconciles this writer's queued-byte count into the global budget.
    /// Called after every queue mutation, still under the writer lock.
    fn settle(&mut self, budget: &ReplyBudget) {
        let queued = self.queue.len() - self.pos;
        budget.adjust(self.accounted, queued);
        self.accounted = queued;
    }

    /// Writes `parts` in order: appended to the queue when one exists
    /// (strict FIFO — replies must hit the wire in acceptance order),
    /// otherwise written directly until done or `EWOULDBLOCK` stashes the
    /// remainder. Returns whether `EPOLLOUT` should be armed.
    fn write_parts(&mut self, parts: &[&[u8]]) -> RmiResult<bool> {
        if self.dead {
            return Err(RmiError::Disconnected);
        }
        if self.pos < self.queue.len() {
            for part in parts {
                self.queue.extend_from_slice(part);
            }
            return Ok(true);
        }
        self.queue.clear();
        self.pos = 0;
        // One gathered `sendmsg` per attempt: the framed reply reaches the
        // wire whole, so the client's readiness loop wakes once per reply
        // instead of once per part (header, body, ...).
        debug_assert!(parts.len() <= 3, "frame has at most header, body, trailer");
        let mut storage = [IoSlice::new(&[]); 3];
        for (slot, part) in storage.iter_mut().zip(parts) {
            *slot = IoSlice::new(part);
        }
        let mut bufs = &mut storage[..parts.len()];
        while bufs.iter().any(|b| !b.is_empty()) {
            match self.transport.try_send_vectored(bufs) {
                Ok(Some(n)) if n > 0 => IoSlice::advance_slices(&mut bufs, n),
                Ok(None) => {
                    // Kernel buffer full: stash everything unwritten.
                    for part in bufs.iter() {
                        self.queue.extend_from_slice(part);
                    }
                    self.queued_since = Some(Instant::now());
                    return Ok(true);
                }
                Ok(Some(_)) => {
                    self.dead = true;
                    return Err(RmiError::Disconnected);
                }
                Err(e) => {
                    self.dead = true;
                    return Err(RmiError::Io(e));
                }
            }
        }
        Ok(false)
    }
}

impl ReplySink for ConnWriter {
    fn send(&self, body: Vec<u8>) -> RmiResult<()> {
        self.send_with_accounting(body, true)
    }

    fn send_unmetered(&self, body: Vec<u8>) -> RmiResult<()> {
        self.send_with_accounting(body, false)
    }

    fn force_close(&self) {
        // SHUT_RDWR on the write half reaches the shared file
        // description, so the read half reports EOF to the loop and the
        // source drops naturally — no token bookkeeping here.
        let mut inner = self.inner.lock();
        inner.dead = true;
        inner.transport.shutdown();
    }

    fn stalled(&self, idle_after: Option<Duration>, write_stall: Option<Duration>) -> bool {
        if let (Some(stall), Some(since)) = (write_stall, self.inner.lock().queued_since) {
            if since.elapsed() >= stall {
                return true;
            }
        }
        match idle_after {
            Some(idle) => self.last_activity.lock().elapsed() >= idle,
            None => false,
        }
    }
}

/// One connection's read-side state machine on the reactor: deframes
/// everything a readiness event made available and feeds each frame to
/// [`route_frame`] — exactly what a `heidl-conn` thread does, minus the
/// thread.
struct ConnSource {
    transport: Box<dyn Transport>,
    buf: FrameBuf,
    writer: Arc<ConnWriter>,
    /// `writer`, pre-coerced once so routing does not re-coerce per frame.
    sink: Arc<dyn ReplySink>,
    orb: Orb,
    workers: Arc<WorkerPool>,
    shared: Arc<ServerShared>,
    per_conn: Arc<AtomicUsize>,
    conn_id: u64,
    _conn: ConnGuard,
}

impl Drop for ConnSource {
    fn drop(&mut self) {
        self.shared.conns.lock().remove(&self.conn_id);
        self.shared.close_conn_streams(self.conn_id);
        self.writer.mark_dead();
    }
}

impl Source for ConnSource {
    fn fd(&self) -> i32 {
        self.transport.raw_fd().unwrap_or(-1)
    }

    fn on_ready(&mut self, events: u32, _reactor: &ReactorHandle) -> Action {
        if events & EPOLLERR != 0 {
            return Action::Drop;
        }
        let mut out_pending = false;
        if events & EPOLLOUT != 0 {
            match self.writer.flush() {
                FlushState::Dead => return Action::Drop,
                FlushState::Pending => out_pending = true,
                FlushState::Idle => {}
            }
        }
        if events & (EPOLLIN | EPOLLRDHUP | EPOLLHUP) != 0 {
            self.writer.touch();
            let mut drained = false;
            loop {
                // Drain every complete frame already buffered...
                loop {
                    match self
                        .orb
                        .protocol()
                        .deframe_pooled(&mut self.buf, &self.shared.policy.decode_limits)
                    {
                        Ok(Some(body)) => {
                            self.buf.maybe_shrink();
                            if !route_frame(
                                body,
                                &self.orb,
                                &self.workers,
                                &self.shared,
                                &self.per_conn,
                                &self.sink,
                                self.conn_id,
                            ) {
                                return Action::Drop;
                            }
                        }
                        Ok(None) => break,
                        Err(_) => return Action::Drop,
                    }
                }
                if drained {
                    break;
                }
                // ...then pull more until the socket runs dry. A read
                // shorter than `RECV_CHUNK` emptied the kernel buffer:
                // deframe what it returned, then stop without paying the
                // `EWOULDBLOCK` confirmation syscall (level-triggered
                // epoll re-reports the fd if more bytes race in).
                match self.transport.try_recv_into(self.buf.input()) {
                    Ok(Some(0)) => return Action::Drop,
                    Ok(Some(n)) => drained = n < RECV_CHUNK,
                    Ok(None) => break,
                    Err(_) => return Action::Drop,
                }
            }
        }
        // Interest management: `EPOLLOUT` stays armed only while replies
        // are queued. The hot path (readable-only event, no backlog)
        // keeps the registration untouched — zero `epoll_ctl` per
        // request. Any event involving `EPOLLOUT` re-MODs explicitly:
        // worker-side arms race this decision, and an explicit MOD can
        // never leave a drained connection busy-looping on writability.
        let want_out = out_pending || self.writer.has_backlog();
        if events & EPOLLOUT != 0 || want_out {
            let interest =
                if want_out { EPOLLIN | EPOLLOUT | EPOLLRDHUP } else { EPOLLIN | EPOLLRDHUP };
            Action::Rearm(interest)
        } else {
            Action::Keep
        }
    }
}
