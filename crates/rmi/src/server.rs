//! The bootstrap-port server: Fig 5's interaction, one reader per
//! connection plus a small shared worker pool for dispatch.
//!
//! *"The bootstrap port in each address space serves as means to initiate a
//! communication channel. When a client connects to the bootstrap port (1),
//! a new `ObjectCommunicator` is wrapped around the resulting connection.
//! ... The `ObjectCommunicator` reads in an incoming request (2) and
//! encapsulates it in a `Call` object. The `Call` header contains the
//! stringified object reference, whose type information and object
//! identifier permit the selection of the appropriate `Skeleton`."*
//!
//! With request-id correlation on the wire, one connection can carry many
//! interleaved requests: the per-connection reader thread only deframes and
//! routes. Two-way requests are dispatched on a shared worker pool and
//! their replies written back (in completion order — the client
//! demultiplexes by id), so one slow servant cannot head-of-line-block the
//! connection. `oneway` requests are dispatched inline on the reader,
//! preserving the oneway-then-call ordering a single client observes.

use crate::call::{peek_reply_id, peek_request_header, IncomingCall, ReplyBuilder, ReplyStatus};
use crate::communicator::ObjectCommunicator;
use crate::error::{RmiError, RmiResult};
use crate::objref::Endpoint;
use crate::orb::Orb;
use crate::skeleton::{DispatchOutcome, Skeleton};
use crate::transport::{TcpTransport, Transport};
use parking_lot::Mutex;
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// Resident dispatch threads per server; requests beyond this run on
/// transient overflow threads so a dispatch that itself blocks (e.g. on a
/// nested remote call) can never starve the pool.
const WORKER_THREADS: usize = 4;

/// A running bootstrap-port server.
pub(crate) struct ServerHandle {
    endpoint: Endpoint,
    running: Arc<AtomicBool>,
    acceptor: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// Binds `addr` and starts the accept loop.
    pub(crate) fn start(addr: &str, orb: Orb) -> RmiResult<ServerHandle> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let endpoint = Endpoint::new(orb.protocol().name(), local.ip().to_string(), local.port());
        let running = Arc::new(AtomicBool::new(true));
        let flag = Arc::clone(&running);
        let workers = Arc::new(WorkerPool::new(WORKER_THREADS));
        let acceptor = std::thread::Builder::new()
            .name(format!("heidl-accept-{}", local.port()))
            .spawn(move || accept_loop(listener, orb, flag, workers))
            .map_err(RmiError::Io)?;
        Ok(ServerHandle { endpoint, running, acceptor: Some(acceptor) })
    }

    pub(crate) fn endpoint(&self) -> &Endpoint {
        &self.endpoint
    }

    /// Stops the accept loop (a self-connection unblocks `accept`).
    pub(crate) fn stop(mut self) {
        self.running.store(false, Ordering::SeqCst);
        // Nudge the blocking accept() so it observes the flag.
        let _ = TcpStream::connect((self.endpoint.host.as_str(), self.endpoint.port));
        if let Some(h) = self.acceptor.take() {
            let _ = h.join();
        }
    }
}

type Job = Box<dyn FnOnce() + Send>;

/// A small fixed pool of dispatch threads with overflow: when every
/// resident worker is occupied, the job runs on a transient thread
/// instead of queueing behind a potentially blocked dispatch.
struct WorkerPool {
    tx: crossbeam::channel::Sender<Job>,
    busy: Arc<AtomicUsize>,
    workers: usize,
}

impl WorkerPool {
    fn new(workers: usize) -> WorkerPool {
        let (tx, rx) = crossbeam::channel::unbounded::<Job>();
        let busy = Arc::new(AtomicUsize::new(0));
        for i in 0..workers {
            let rx = rx.clone();
            let busy = Arc::clone(&busy);
            let _ =
                std::thread::Builder::new().name(format!("heidl-worker-{i}")).spawn(move || {
                    while let Ok(job) = rx.recv() {
                        job();
                        busy.fetch_sub(1, Ordering::SeqCst);
                    }
                });
        }
        WorkerPool { tx, busy, workers }
    }

    fn submit(&self, job: Job) {
        // `busy` counts submitted-but-unfinished pool jobs; the check is a
        // heuristic (races only cost an occasional extra thread), but it
        // guarantees a job is never queued behind `workers` blocked ones.
        if self.busy.load(Ordering::SeqCst) < self.workers {
            self.busy.fetch_add(1, Ordering::SeqCst);
            if self.tx.send(job).is_ok() {
                return;
            }
            self.busy.fetch_sub(1, Ordering::SeqCst);
            return;
        }
        let _ = std::thread::Builder::new().name("heidl-overflow".to_owned()).spawn(job);
    }
}

/// First back-off after a failed `accept()`; doubles per consecutive
/// failure up to [`ACCEPT_BACKOFF_MAX`], resetting on any success.
const ACCEPT_BACKOFF_BASE: std::time::Duration = std::time::Duration::from_millis(5);
/// Cap on the accept-failure back-off.
const ACCEPT_BACKOFF_MAX: std::time::Duration = std::time::Duration::from_millis(500);

fn accept_loop(
    listener: TcpListener,
    orb: Orb,
    running: Arc<AtomicBool>,
    workers: Arc<WorkerPool>,
) {
    // When HEIDL_FAULT_PLAN is set (demo servers, chaos runs), every
    // accepted transport is wrapped in a fault injector driven by it.
    let fault_plan = crate::fault::FaultPlan::from_env();
    let mut backoff = ACCEPT_BACKOFF_BASE;
    loop {
        let stream = listener.accept();
        if !running.load(Ordering::SeqCst) {
            break;
        }
        let stream = match stream {
            Ok((stream, _)) => {
                backoff = ACCEPT_BACKOFF_BASE;
                stream
            }
            // Transient accept failures (EMFILE, ECONNABORTED, ...) must
            // not kill the server: back off so a persistent condition does
            // not spin the CPU, then keep serving.
            Err(_) => {
                std::thread::sleep(backoff);
                backoff = (backoff * 2).min(ACCEPT_BACKOFF_MAX);
                continue;
            }
        };
        let Ok(transport) = TcpTransport::from_stream(stream) else { continue };
        let mut transport: Box<dyn Transport> = Box::new(transport);
        if let Some(plan) = &fault_plan {
            let label = transport.peer();
            transport =
                Box::new(crate::fault::FaultInjector::wrap(transport, Arc::clone(plan), label));
        }
        let conn_orb = orb.clone();
        let conn_workers = Arc::clone(&workers);
        let _ = std::thread::Builder::new()
            .name("heidl-conn".to_owned())
            .spawn(move || connection_loop(transport, conn_orb, conn_workers));
    }
}

/// The write half of a connection, shared by every dispatch that answers
/// on it. Frames under a brief lock so interleaved replies stay whole.
struct ReplyWriter {
    transport: Mutex<Box<dyn Transport>>,
    protocol: Arc<dyn heidl_wire::Protocol>,
}

impl ReplyWriter {
    fn send(&self, body: &[u8]) -> RmiResult<()> {
        let mut framed = Vec::with_capacity(body.len() + 16);
        self.protocol.frame(body, &mut framed);
        self.transport.lock().send(&framed)?;
        Ok(())
    }
}

/// Serves one connection until the peer closes it: the reader thread
/// deframes and routes, workers dispatch and reply.
fn connection_loop(transport: Box<dyn Transport>, orb: Orb, workers: Arc<WorkerPool>) {
    let protocol = Arc::clone(orb.protocol());
    // Fig 5 (1): wrap the read half in a new ObjectCommunicator.
    let Ok((write_half, read_half)) = transport.split() else { return };
    let writer = Arc::new(ReplyWriter {
        transport: Mutex::new(write_half),
        protocol: Arc::clone(&protocol),
    });
    let mut comm = ObjectCommunicator::new(read_half, Arc::clone(&protocol));
    while let Ok(Some(body)) = comm.recv() {
        match peek_request_header(&body, protocol.as_ref()) {
            // oneway: dispatch inline so a client's oneway-then-call
            // sequence executes in order; there is no reply to write.
            Ok((_, false)) => {
                let _ = handle_request(body, &orb);
            }
            Ok((_, true)) => {
                let job_orb = orb.clone();
                let job_writer = Arc::clone(&writer);
                workers.submit(Box::new(move || {
                    if let Some(reply) = handle_request(body, &job_orb) {
                        let _ = job_writer.send(&reply);
                    }
                }));
            }
            // Unparsable header — diagnose inline (a telnet user who
            // mistyped wants the error back immediately).
            Err(_) => {
                if let Some(reply) = handle_request(body, &orb) {
                    if writer.send(&reply).is_err() {
                        break;
                    }
                }
            }
        }
    }
}

/// Fig 5 (2)-(4): decode the request, select the skeleton by object id,
/// dispatch (recursively up the inheritance chain), and build the reply.
/// Returns `None` for `oneway` requests, which must not be answered.
pub(crate) fn handle_request(body: Vec<u8>, orb: &Orb) -> Option<Vec<u8>> {
    let protocol = Arc::clone(orb.protocol());
    // Best-effort id for diagnostics on unparsable requests: both message
    // kinds lead with the id, so the reply-peek works on requests too.
    let fallback_id = peek_reply_id(&body, protocol.as_ref()).unwrap_or(0);
    let mut incoming = match IncomingCall::parse(body, protocol.as_ref()) {
        Ok(c) => c,
        Err(e) => {
            // The header did not parse, so we cannot know whether a reply
            // is expected; send the diagnostic (a telnet user wants it).
            return Some(ReplyBuilder::exception(
                protocol.as_ref(),
                fallback_id,
                ReplyStatus::SystemException,
                "IDL:heidl/BadRequest:1.0",
                &e.to_string(),
            ));
        }
    };
    let reply_body = dispatch_request(&mut incoming, orb, &protocol);
    incoming.response_expected.then_some(reply_body)
}

fn dispatch_request(
    incoming: &mut IncomingCall,
    orb: &Orb,
    protocol: &Arc<dyn heidl_wire::Protocol>,
) -> Vec<u8> {
    let request_id = incoming.request_id;
    let skeleton = {
        let objects = orb.inner.objects.read();
        objects.get(&incoming.target.object_id).cloned()
    };
    let Some(skeleton) = skeleton else {
        return ReplyBuilder::exception(
            protocol.as_ref(),
            request_id,
            ReplyStatus::SystemException,
            "IDL:heidl/UnknownObject:1.0",
            &RmiError::UnknownObject { reference: incoming.target.to_string() }.to_string(),
        );
    };

    orb.inner.interceptors.fire(
        crate::interceptor::CallPhase::ServerDispatch,
        &incoming.target,
        &incoming.method,
        true,
    );
    let mut reply = ReplyBuilder::ok(protocol.as_ref(), request_id);
    let outcome = skeleton.dispatch(&incoming.method, incoming.args.as_mut(), reply.results());
    orb.inner.interceptors.fire(
        crate::interceptor::CallPhase::ServerReply,
        &incoming.target,
        &incoming.method,
        matches!(outcome, Ok(DispatchOutcome::Handled)),
    );
    match outcome {
        Ok(DispatchOutcome::Handled) => reply.into_body(),
        Ok(DispatchOutcome::NotFound) => ReplyBuilder::exception(
            protocol.as_ref(),
            request_id,
            ReplyStatus::SystemException,
            "IDL:heidl/UnknownMethod:1.0",
            &RmiError::UnknownMethod {
                type_id: Skeleton::type_id(skeleton.as_ref()).to_owned(),
                method: incoming.method.clone(),
            }
            .to_string(),
        ),
        // A servant-raised exception carries its own repository id.
        Err(RmiError::Remote { repo_id, detail }) => ReplyBuilder::exception(
            protocol.as_ref(),
            request_id,
            ReplyStatus::UserException,
            &repo_id,
            &detail,
        ),
        Err(other) => ReplyBuilder::exception(
            protocol.as_ref(),
            request_id,
            ReplyStatus::SystemException,
            "IDL:heidl/DispatchFailed:1.0",
            &other.to_string(),
        ),
    }
}
