//! The ORB: object registry, client invocation path, caches.
//!
//! This is HeidiRMI's runtime nucleus. It owns:
//!
//! * the **object registry** (object id → skeleton) consulted by the
//!   server-side dispatcher (Fig 5);
//! * the **connection cache** used by the client-side invocation path
//!   (Fig 4);
//! * the **stub cache** and **lazy skeleton creation** — "the skeleton for
//!   a particular object is only created when a reference to it is being
//!   passed ... Both stubs and skeletons are cached in each address-space"
//!   (§3.1);
//! * the **value registry** for `incopy` pass-by-value.
//!
//! The wire protocol is pluggable per ORB instance — constructing with
//! `heidl_wire::CdrProtocol` instead of `heidl_wire::TextProtocol` swaps
//! every connection to the binary protocol without touching generated
//! code.

use crate::breaker::{BreakerConfig, CircuitBreaker, ProbeToken};
use crate::call::{peek_reply_status, Call, InvocationToken, Reply, ReplyStatus};
use crate::communicator::{ConnectionPool, MuxConnection};
use crate::error::{RmiError, RmiResult};
use crate::interceptor::{CallPhase, Interceptor, InterceptorChain};
use crate::metrics::{Counter, Metrics};
use crate::objref::{Endpoint, ObjectRef};
use crate::policy::{ServerHealth, ServerPolicy};
use crate::reactor::{self, ReactorHandle};
use crate::result_cache::{CacheKey, ResultCache};
use crate::retry::{may_retry, Backoff, RetryClass, RetryPolicy};
use crate::serialize::{self, RemoteObject, ValueRegistry};
use crate::server::{
    ServerHandle, HEALTH_OBJECT_ID, HEALTH_TYPE_ID, METRICS_OBJECT_ID, METRICS_TYPE_ID,
};
use crate::skeleton::Skeleton;
use crate::stream::{ReplyStream, StreamServant, STREAM_ACK_OBJECT_ID, STREAM_ACK_TYPE_ID};
use crate::trace::{self, CallContext, TraceLevel};
use crate::transport::{Connector, TransportMode};
use heidl_wire::{pool, Encoder, PooledBuf, Protocol, TextProtocol};
use parking_lot::{Condvar, Mutex, RwLock};
use std::any::Any;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Weak};
use std::time::{Duration, Instant};

/// Per-invocation knobs for [`Orb::invoke_with`].
///
/// Construct via [`CallOptions::builder`] (or [`CallOptions::default`] for
/// the defaults). The struct is `#[non_exhaustive]`: new QoS knobs can be
/// added without breaking callers, which is exactly what the IDL
/// annotation pipeline relies on — generated stubs translate
/// `@idempotent` / `@deadline(ms)` / `@cached(ttl_ms)` into a builder
/// chain, so hand-written call sites never need to spell out QoS again.
///
/// ```
/// use heidl_rmi::{CallOptions, RetryClass};
/// use std::time::Duration;
///
/// let options = CallOptions::builder()
///     .deadline(Duration::from_millis(50))
///     .retry_class(RetryClass::Safe)
///     .build();
/// assert!(options.idempotent);
/// ```
#[non_exhaustive]
#[derive(Debug, Clone, Copy)]
pub struct CallOptions {
    /// How long to wait for the reply before giving up with
    /// [`RmiError::DeadlineExceeded`]. `None` falls back to the ORB's
    /// default deadline (set via [`OrbBuilder::default_deadline`]), which
    /// itself defaults to waiting forever.
    pub deadline: Option<Duration>,
    /// Whether a mid-call failure on a *cached* connection may be retried
    /// once on a fresh connection (the stale-connection heuristic). On by
    /// default — but the retry additionally requires the failure's
    /// retry-safety class to allow it (see
    /// [`CallOptionsBuilder::retry_class`]),
    /// so it never re-executes non-idempotent work.
    pub retry: bool,
    /// Per-call override of the ORB's [`RetryPolicy`]
    /// (set via [`OrbBuilder::retry_policy`]). `None` uses the ORB's.
    pub retry_policy: Option<RetryPolicy>,
    /// Declares the call safe to re-execute even after request bytes may
    /// have reached the server. Off by default: a non-idempotent call is
    /// never retried once bytes were written (only connect-level failures,
    /// which provably wrote nothing, stay retryable). See
    /// [`RetryClass`](crate::retry::RetryClass).
    pub idempotent: bool,
    /// Serve this call from the ORB's client-side result cache when a
    /// fresh entry exists, and remember a successful reply for this long.
    /// `None` (the default) bypasses the cache entirely. Set by stubs
    /// generated from `@cached(ttl_ms)` operations.
    pub cached_ttl: Option<Duration>,
    /// Stamp the call with a per-ORB invocation token (`"~tok"` wire
    /// suffix) and retry mid-call transport failures under the server's
    /// exactly-once guarantee: a retried token is never re-executed — the
    /// server replays the cached reply. Off by default; set by
    /// [`RetryClass::ExactlyOnce`] / the `@exactly_once` IDL annotation.
    pub exactly_once: bool,
}

impl Default for CallOptions {
    fn default() -> Self {
        CallOptions {
            deadline: None,
            retry: true,
            retry_policy: None,
            idempotent: false,
            cached_ttl: None,
            exactly_once: false,
        }
    }
}

impl CallOptions {
    /// Starts building call options:
    /// `CallOptions::builder().deadline(...).retry_class(...).build()`.
    pub fn builder() -> CallOptionsBuilder {
        CallOptionsBuilder { options: CallOptions::default() }
    }

    /// Options with a per-call deadline.
    #[deprecated(note = "use `CallOptions::builder().deadline(..).build()`")]
    pub fn with_deadline(deadline: Duration) -> CallOptions {
        CallOptions::builder().deadline(deadline).build()
    }

    /// Options declaring the call idempotent (safe to retry even after
    /// request bytes were written).
    #[deprecated(note = "use `CallOptions::builder().retry_class(RetryClass::Safe).build()`")]
    pub fn idempotent() -> CallOptions {
        CallOptions::builder().retry_class(RetryClass::Safe).build()
    }

    /// Options with a per-call retry policy override.
    #[deprecated(note = "use `CallOptions::builder().retry_policy(..).build()`")]
    pub fn with_retry_policy(policy: RetryPolicy) -> CallOptions {
        CallOptions::builder().retry_policy(policy).build()
    }

    /// Adds a deadline to these options.
    #[deprecated(note = "use `CallOptions::builder().deadline(..).build()`")]
    pub fn and_deadline(mut self, deadline: Duration) -> CallOptions {
        self.deadline = Some(deadline);
        self
    }

    /// Marks these options idempotent.
    #[deprecated(note = "use `CallOptions::builder().retry_class(RetryClass::Safe).build()`")]
    pub fn and_idempotent(mut self) -> CallOptions {
        self.idempotent = true;
        self
    }

    /// Adds a retry-policy override to these options.
    #[deprecated(note = "use `CallOptions::builder().retry_policy(..).build()`")]
    pub fn and_retry_policy(mut self, policy: RetryPolicy) -> CallOptions {
        self.retry_policy = Some(policy);
        self
    }
}

/// Builder for [`CallOptions`] — the single public way to construct
/// non-default per-call QoS. Every knob maps one-to-one onto an IDL
/// annotation, so generated stubs and hand-written call sites read the
/// same way.
#[derive(Debug, Clone)]
pub struct CallOptionsBuilder {
    options: CallOptions,
}

impl CallOptionsBuilder {
    /// Per-call deadline (`@deadline(ms)`): the call fails with
    /// [`RmiError::DeadlineExceeded`] once it outlives this budget.
    pub fn deadline(mut self, deadline: Duration) -> CallOptionsBuilder {
        self.options.deadline = Some(deadline);
        self
    }

    /// Retry-safety class of the call:
    ///
    /// * [`RetryClass::Safe`] (`@idempotent`) — may re-send even after
    ///   request bytes reached a server;
    /// * [`RetryClass::IfIdempotent`] — the default: only provably-unsent
    ///   failures (connect refused, circuit open, shed with `Busy`) retry;
    /// * [`RetryClass::Never`] — disables even those;
    /// * [`RetryClass::ExactlyOnce`] (`@exactly_once`) — may re-send like
    ///   `Safe`, but the safety comes from the invocation token and the
    ///   server's reply cache, not from the operation being idempotent.
    pub fn retry_class(mut self, class: RetryClass) -> CallOptionsBuilder {
        match class {
            RetryClass::Safe => {
                self.options.idempotent = true;
                self.options.retry = true;
                self.options.exactly_once = false;
            }
            RetryClass::IfIdempotent => {
                self.options.idempotent = false;
                self.options.retry = true;
                self.options.exactly_once = false;
            }
            RetryClass::Never => {
                self.options.idempotent = false;
                self.options.retry = false;
                self.options.exactly_once = false;
            }
            RetryClass::ExactlyOnce => {
                self.options.idempotent = false;
                self.options.retry = true;
                self.options.exactly_once = true;
            }
        }
        self
    }

    /// Per-call override of the ORB's [`RetryPolicy`].
    pub fn retry_policy(mut self, policy: RetryPolicy) -> CallOptionsBuilder {
        self.options.retry_policy = Some(policy);
        self
    }

    /// Serve from (and fill) the client-side result cache with this TTL
    /// (`@cached(ttl_ms)`). Only successful replies are cached; the key is
    /// target + method + marshaled argument bytes.
    pub fn cached(mut self, ttl: Duration) -> CallOptionsBuilder {
        self.options.cached_ttl = Some(ttl);
        self
    }

    /// Finishes the chain.
    pub fn build(self) -> CallOptions {
        self.options
    }
}

/// Step-by-step construction of an [`Orb`]; start with [`Orb::builder`].
#[derive(Debug)]
pub struct OrbBuilder {
    protocol: Arc<dyn Protocol>,
    max_connections_per_endpoint: usize,
    default_deadline: Option<Duration>,
    retry_policy: RetryPolicy,
    breaker_config: BreakerConfig,
    connector: Option<Arc<dyn Connector>>,
    server_policy: ServerPolicy,
    heartbeat_interval: Option<Duration>,
    transport_mode: TransportMode,
    pipelining: bool,
}

impl Default for OrbBuilder {
    fn default() -> Self {
        OrbBuilder {
            protocol: Arc::new(TextProtocol),
            max_connections_per_endpoint: 1,
            default_deadline: None,
            retry_policy: RetryPolicy::default(),
            breaker_config: BreakerConfig::disabled(),
            connector: None,
            server_policy: ServerPolicy::default(),
            heartbeat_interval: None,
            transport_mode: TransportMode::from_env(),
            pipelining: false,
        }
    }
}

impl OrbBuilder {
    /// The wire protocol every connection will speak (default: text).
    pub fn protocol(mut self, protocol: Arc<dyn Protocol>) -> OrbBuilder {
        self.protocol = protocol;
        self
    }

    /// Cap on pooled sockets per endpoint (default 1: every call to an
    /// endpoint multiplexes over one shared connection). Clamped to ≥ 1.
    pub fn max_connections_per_endpoint(mut self, max: usize) -> OrbBuilder {
        self.max_connections_per_endpoint = max.max(1);
        self
    }

    /// Deadline applied to every invocation that does not set its own via
    /// [`CallOptions`] (default: none — wait forever).
    pub fn default_deadline(mut self, deadline: Duration) -> OrbBuilder {
        self.default_deadline = Some(deadline);
        self
    }

    /// The retry policy applied to every invocation that does not carry a
    /// [`CallOptions::retry_policy`] override. Defaults to
    /// [`RetryPolicy::default`] (3 attempts, 10 ms base backoff) —
    /// retry-safety classes still gate which errors may actually retry.
    pub fn retry_policy(mut self, policy: RetryPolicy) -> OrbBuilder {
        self.retry_policy = policy;
        self
    }

    /// Enables per-endpoint circuit breakers with this tuning. Disabled by
    /// default ([`BreakerConfig::disabled`]).
    pub fn circuit_breaker(mut self, config: BreakerConfig) -> OrbBuilder {
        self.breaker_config = config;
        self
    }

    /// Replaces how outbound connections are dialed (default: plain TCP).
    /// Chaos tests plug a `FaultyConnector` in here.
    pub fn connector(mut self, connector: Arc<dyn Connector>) -> OrbBuilder {
        self.connector = Some(connector);
        self
    }

    /// Overload-protection policy for this ORB's server side: connection
    /// and in-flight caps, worker-overflow budget, socket timeouts, wire
    /// decode limits, and the graceful-drain budget. Defaults preserve the
    /// historical unbounded behavior ([`ServerPolicy::default`]).
    pub fn server_policy(mut self, policy: ServerPolicy) -> OrbBuilder {
        self.server_policy = policy;
        self
    }

    /// Enables client-side liveness heartbeats: a background thread pings
    /// (`_health.ping`) every pooled connection that has been idle longer
    /// than `interval`, evicting dead peers from the pool and recording a
    /// breaker failure — so the *next* call dials fresh (or fails fast)
    /// instead of inheriting a half-dead socket. Connections with borrows
    /// or in-flight calls are never pinged. Off by default; clamped to
    /// ≥ 1 ms. The thread exits when the ORB is dropped.
    pub fn heartbeat(mut self, interval: Duration) -> OrbBuilder {
        self.heartbeat_interval = Some(interval.max(Duration::from_millis(1)));
        self
    }

    /// Selects the I/O engine for this ORB's sockets (default: the
    /// `HEIDL_TRANSPORT` environment variable, i.e.
    /// [`TransportMode::from_env`]). [`TransportMode::Reactor`] runs the
    /// server's accept/read/write paths and the client's reply
    /// demultiplexers on one epoll readiness loop per server (plus one
    /// shared client loop) instead of a thread per connection; on targets
    /// without epoll it silently falls back to the threaded engine. Wire
    /// behavior is byte-identical between the two.
    pub fn transport_mode(mut self, mode: TransportMode) -> OrbBuilder {
        self.transport_mode = mode;
        self
    }

    /// Opts outgoing connections into pipelined small-call coalescing:
    /// concurrent frames up to 4 KiB batch into single transport writes
    /// instead of serializing on the writer lock one syscall each. Every
    /// call keeps its blocking semantics — the win is throughput under
    /// concurrency (many client threads sharing a pooled connection), not
    /// latency of a lone caller. Off by default.
    pub fn pipelining(mut self, on: bool) -> OrbBuilder {
        self.pipelining = on;
        self
    }

    /// Builds the ORB.
    pub fn build(self) -> Orb {
        let pool = ConnectionPool::new();
        pool.set_max_connections_per_endpoint(self.max_connections_per_endpoint);
        pool.set_breaker_config(self.breaker_config);
        if let Some(connector) = self.connector {
            pool.set_connector(connector);
        }
        // One registry per ORB: both the client invocation path and the
        // server dispatch path of this address space record into it, and
        // breaker state transitions are observed as counter bumps.
        let metrics = Arc::new(Metrics::new());
        pool.set_breaker_observer(Arc::clone(&metrics) as _);
        pool.set_transport_mode(self.transport_mode);
        pool.set_pipelining(self.pipelining);
        let orb = Orb {
            inner: Arc::new(OrbInner {
                protocol: self.protocol,
                metrics,
                objects: RwLock::new(HashMap::new()),
                streams: RwLock::new(HashMap::new()),
                next_id: AtomicU64::new(1),
                pool,
                default_deadline: self.default_deadline,
                values: ValueRegistry::new(),
                stubs: RwLock::new(HashMap::new()),
                exported: RwLock::new(HashMap::new()),
                server: Mutex::new(None),
                interceptors: InterceptorChain::default(),
                retries: AtomicU64::new(0),
                retry_policy: self.retry_policy,
                server_policy: self.server_policy,
                result_cache: ResultCache::default(),
                session_id: fresh_session_id(),
                token_seq: AtomicU64::new(1),
                heartbeat: Mutex::new(None),
                transport_mode: self.transport_mode,
            }),
        };
        if let Some(interval) = self.heartbeat_interval {
            // The prober holds only a `Weak`: dropping the last ORB handle
            // lets it notice and stop itself. Under the reactor engine the
            // prober is a timer on the shared client reactor (no dedicated
            // thread, fire-and-forget pings settled one tick later);
            // otherwise it is the classic blocking-ping thread, whose join
            // handle lives in `OrbInner` so shutdown can wait for it.
            let weak = Arc::downgrade(&orb.inner);
            let client_reactor = if self.transport_mode.reactor_enabled() {
                reactor::client_reactor()
            } else {
                None
            };
            let handle = match client_reactor {
                Some(reactor) => {
                    let timer_id = reactor.alloc_id();
                    let tick =
                        (interval / 2).clamp(Duration::from_millis(5), Duration::from_millis(500));
                    reactor.add_timer(timer_id, tick, heartbeat_tick(weak, interval, timer_id));
                    // The liveness token is owned by the *handle*, not the
                    // callback: stopping must decrement synchronously even
                    // though the cancel itself is only a queued command
                    // (the last ORB handle can die on the reactor thread,
                    // where waiting for the loop would deadlock).
                    HeartbeatHandle::Timer {
                        reactor,
                        timer_id,
                        alive: Some(HeartbeatAlive::enter()),
                    }
                }
                None => {
                    let stop = Arc::new(StopSignal::default());
                    let thread_stop = Arc::clone(&stop);
                    let thread = std::thread::Builder::new()
                        .name("heidl-heartbeat".to_owned())
                        .spawn(move || heartbeat_loop(weak, interval, thread_stop))
                        .expect("spawn heartbeat thread");
                    HeartbeatHandle::Thread { stop, thread: Some(thread) }
                }
            };
            *orb.inner.heartbeat.lock() = Some(handle);
        }
        orb
    }
}

/// A settable flag threads can wait on with a timeout: the heartbeat
/// prober parks here between ticks, so a shutdown wakes it immediately
/// instead of waiting out the tick.
#[derive(Default)]
struct StopSignal {
    stopped: Mutex<bool>,
    cv: Condvar,
}

impl StopSignal {
    /// Requests a stop and wakes every waiter.
    fn request(&self) {
        *self.stopped.lock() = true;
        self.cv.notify_all();
    }

    /// Waits up to `timeout` for a stop request. Returns `true` when the
    /// stop was requested (spurious wakeups re-check the flag).
    fn wait(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        let mut stopped = self.stopped.lock();
        while !*stopped {
            let Some(remaining) =
                deadline.checked_duration_since(Instant::now()).filter(|r| !r.is_zero())
            else {
                return *stopped;
            };
            self.cv.wait_for(&mut stopped, remaining);
        }
        true
    }
}

/// Handle to the heartbeat prober, in whichever shape it runs.
enum HeartbeatHandle {
    /// Dedicated `heidl-heartbeat` thread (threaded engine, or reactor
    /// unavailable): stop signal plus join handle.
    Thread { stop: Arc<StopSignal>, thread: Option<std::thread::JoinHandle<()>> },
    /// Periodic timer on the shared client reactor (reactor engine). The
    /// [`HeartbeatAlive`] token lives *here* rather than in the timer
    /// callback so stopping decrements the live count synchronously.
    Timer { reactor: ReactorHandle, timer_id: u64, alive: Option<HeartbeatAlive> },
}

impl HeartbeatHandle {
    /// Stops the prober. Idempotent. The thread variant joins; the timer
    /// variant only *queues* the cancel — it must never wait for the
    /// reactor loop, because the last ORB handle (and hence this call)
    /// can drop on the reactor thread itself, inside the very callback a
    /// wait would be waiting on.
    fn stop_and_join(&mut self) {
        match self {
            HeartbeatHandle::Thread { stop, thread } => {
                stop.request();
                if let Some(thread) = thread.take() {
                    let _ = thread.join();
                }
            }
            HeartbeatHandle::Timer { reactor, timer_id, alive } => {
                reactor.cancel_timer(*timer_id);
                drop(alive.take());
            }
        }
    }
}

/// Number of heartbeat prober threads currently running in this process.
///
/// Diagnostics for shutdown correctness: after `Orb::shutdown` (or drop
/// of the last handle) of every heartbeating ORB, this returns to zero —
/// the regression test for "no detached threads outlive the ORB" asserts
/// exactly that.
pub fn live_heartbeat_threads() -> usize {
    LIVE_HEARTBEATS.load(Ordering::SeqCst) as usize
}

static LIVE_HEARTBEATS: AtomicU64 = AtomicU64::new(0);

/// RAII increment of [`LIVE_HEARTBEATS`] for the prober's whole lifetime,
/// so a panicking scan still decrements on unwind.
struct HeartbeatAlive;

impl HeartbeatAlive {
    fn enter() -> HeartbeatAlive {
        LIVE_HEARTBEATS.fetch_add(1, Ordering::SeqCst);
        HeartbeatAlive
    }
}

impl Drop for HeartbeatAlive {
    fn drop(&mut self) {
        LIVE_HEARTBEATS.fetch_sub(1, Ordering::SeqCst);
    }
}

/// A session id that is unique per built ORB and very unlikely to collide
/// across processes: wall-clock nanos mixed with a process-local counter
/// via a Weyl-style odd multiplier. Invocation tokens `(session, seq)`
/// key the server's replay cache, so colliding sessions could alias
/// unrelated invocations — nanosecond skew makes that vanishingly rare.
fn fresh_session_id() -> u64 {
    static COUNTER: AtomicU64 = AtomicU64::new(1);
    let nanos = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map_or(0, |d| d.as_nanos() as u64);
    nanos ^ COUNTER.fetch_add(1, Ordering::Relaxed).wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

/// The heartbeat prober (see [`OrbBuilder::heartbeat`]). Ticks at half
/// the interval so a connection is probed within ~1.5 intervals of going
/// idle; each tick scans a pool snapshot and pings only connections that
/// are alive, unborrowed, quiescent, and idle past the interval.
fn heartbeat_loop(orb: Weak<OrbInner>, interval: Duration, stop: Arc<StopSignal>) {
    let _alive = HeartbeatAlive::enter();
    let tick = (interval / 2).clamp(Duration::from_millis(5), Duration::from_millis(500));
    loop {
        if stop.wait(tick) {
            return;
        }
        let Some(inner) = orb.upgrade() else { return };
        for (endpoint, conns) in inner.pool.scan() {
            for conn in conns {
                if !conn.is_alive() {
                    // The demux thread already saw the peer die (EOF/RST);
                    // evict the corpse now instead of leaving it for the
                    // next checkout to trip over.
                    inner.pool.discard(&endpoint, &conn);
                    continue;
                }
                if conn.borrow_count() > 0 || conn.in_flight() > 0 || conn.idle_for() < interval {
                    continue;
                }
                let health = ObjectRef::new(endpoint.clone(), HEALTH_OBJECT_ID, HEALTH_TYPE_ID);
                let call = Call::request(&health, "ping", inner.protocol.as_ref());
                let request_id = call.request_id();
                let body = call.into_body();
                inner.metrics.inc(Counter::HeartbeatsSent);
                let outcome = conn.call(request_id, &body, Some(interval.min(PING_TIMEOUT)));
                pool::recycle(body);
                if outcome.is_err() {
                    // Dead peer: evict the socket so the next call dials
                    // fresh, and count a breaker failure so a flapping
                    // endpoint trips to fail-fast without burning a call.
                    inner.pool.discard(&endpoint, &conn);
                    inner.pool.breaker(&endpoint).record_failure();
                }
            }
        }
    }
}

/// Upper bound on how long a heartbeat ping waits for its pong.
const PING_TIMEOUT: Duration = Duration::from_secs(1);

/// Builds the reactor-timer variant of the prober (see
/// [`OrbBuilder::heartbeat`]). Same pool scan and skip conditions as
/// [`heartbeat_loop`], but nothing blocks the shared client reactor:
/// pings are fire-and-forget ([`MuxConnection::send_ping`]) and each tick
/// begins by settling the previous round — a ping still unanswered after
/// a whole tick means the peer is gone, so the connection is evicted and
/// its breaker charged, exactly like a timed-out blocking ping.
fn heartbeat_tick(
    orb: Weak<OrbInner>,
    interval: Duration,
    timer_id: u64,
) -> Box<dyn FnMut(&ReactorHandle) + Send> {
    let mut outstanding: Vec<(Endpoint, Arc<MuxConnection>, u64)> = Vec::new();
    Box::new(move |handle| {
        let Some(inner) = orb.upgrade() else {
            // Last ORB handle is gone. `stop_and_join` already queued a
            // cancel; self-cancel too in case the inner died without it
            // (the handle was `mem::forget`-ed, say) — double cancel is a
            // no-op.
            outstanding.clear();
            handle.cancel_timer(timer_id);
            return;
        };
        // Settle first so `in_flight` is accurate for this tick's scan: a
        // pong (or a demux-side death) removed the pending entry, so a
        // still-pending ping is a silent peer.
        for (endpoint, conn, request_id) in outstanding.drain(..) {
            if conn.ping_unanswered(request_id) {
                inner.pool.discard(&endpoint, &conn);
                inner.pool.breaker(&endpoint).record_failure();
            }
        }
        for (endpoint, conns) in inner.pool.scan() {
            for conn in conns {
                if !conn.is_alive() {
                    inner.pool.discard(&endpoint, &conn);
                    continue;
                }
                if conn.borrow_count() > 0 || conn.in_flight() > 0 || conn.idle_for() < interval {
                    continue;
                }
                let health = ObjectRef::new(endpoint.clone(), HEALTH_OBJECT_ID, HEALTH_TYPE_ID);
                let call = Call::request(&health, "ping", inner.protocol.as_ref());
                let request_id = call.request_id();
                let body = call.into_body();
                inner.metrics.inc(Counter::HeartbeatsSent);
                let outcome = conn.send_ping(request_id, &body);
                pool::recycle(body);
                match outcome {
                    Ok(()) => outstanding.push((endpoint.clone(), conn, request_id)),
                    Err(_) => {
                        inner.pool.discard(&endpoint, &conn);
                        inner.pool.breaker(&endpoint).record_failure();
                    }
                }
            }
        }
    })
}

/// A handle to the per-address-space ORB state. Cheap to clone.
#[derive(Clone)]
pub struct Orb {
    pub(crate) inner: Arc<OrbInner>,
}

pub(crate) struct OrbInner {
    pub(crate) protocol: Arc<dyn Protocol>,
    /// Per-ORB metrics registry (counters + latency histograms).
    pub(crate) metrics: Arc<Metrics>,
    pub(crate) objects: RwLock<HashMap<u64, Arc<dyn Skeleton>>>,
    /// Stream-servant registry (object id → servant), separate from
    /// `objects`: a skeleton marshals one whole reply, a stream servant's
    /// reply is pumped out as chunked frames. Ids come from the same
    /// `next_id` counter, so the two registries can never collide.
    streams: RwLock<HashMap<u64, Arc<dyn StreamServant>>>,
    next_id: AtomicU64,
    pool: ConnectionPool,
    default_deadline: Option<Duration>,
    values: ValueRegistry,
    /// Stub cache: stringified reference → typed stub (as `Any`).
    stubs: RwLock<HashMap<String, Arc<dyn Any + Send + Sync>>>,
    /// Lazy-skeleton cache: servant identity → exported object id.
    exported: RwLock<HashMap<usize, u64>>,
    server: Mutex<Option<ServerHandle>>,
    pub(crate) interceptors: InterceptorChain,
    retries: AtomicU64,
    retry_policy: RetryPolicy,
    server_policy: ServerPolicy,
    /// Client-side `@cached` result cache (see [`CallOptions::cached_ttl`]).
    result_cache: ResultCache,
    /// This ORB's invocation-token session id (see
    /// [`CallOptions::exactly_once`]): stamped, with `token_seq`, into the
    /// `"~tok"` wire suffix of every exactly-once request.
    session_id: u64,
    /// Monotonic sequence for invocation tokens. A retry reuses the
    /// original token — the sequence advances once per *invocation*, not
    /// per attempt.
    token_seq: AtomicU64,
    /// The heartbeat prober's stop signal and join handle (`None` when
    /// heartbeats are off, or once the prober has been joined). Shutdown
    /// and drop both stop-and-join through this, so the prober can never
    /// outlive the ORB.
    heartbeat: Mutex<Option<HeartbeatHandle>>,
    /// Which I/O engine this ORB's sockets run on (see
    /// [`OrbBuilder::transport_mode`]).
    transport_mode: TransportMode,
}

impl std::fmt::Debug for Orb {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Orb")
            .field("protocol", &self.inner.protocol.name())
            .field("objects", &self.inner.objects.read().len())
            .field("endpoint", &self.endpoint().map(|e| e.to_string()))
            .finish()
    }
}

impl Default for Orb {
    fn default() -> Self {
        Orb::new()
    }
}

impl Orb {
    /// Creates an ORB speaking the HeidiRMI text protocol.
    pub fn new() -> Orb {
        Orb::builder().build()
    }

    /// Creates an ORB speaking the given protocol on every connection.
    pub fn with_protocol(protocol: Arc<dyn Protocol>) -> Orb {
        Orb::builder().protocol(protocol).build()
    }

    /// Starts configuring an ORB:
    /// `Orb::builder().protocol(...).default_deadline(...).build()`.
    pub fn builder() -> OrbBuilder {
        OrbBuilder::default()
    }

    /// Registers an interceptor (Orbix-filter style, paper §5): it fires
    /// at every [`CallPhase`] on both the client invocation path and the
    /// server dispatch path, in registration order.
    pub fn add_interceptor(&self, interceptor: Arc<dyn Interceptor>) {
        self.inner.interceptors.add(interceptor);
    }

    /// The wire protocol this ORB speaks.
    pub fn protocol(&self) -> &Arc<dyn Protocol> {
        &self.inner.protocol
    }

    /// The connection cache (exposed for E3's ablation and observability).
    pub fn connections(&self) -> &ConnectionPool {
        &self.inner.pool
    }

    /// The pass-by-value factory registry.
    pub fn values(&self) -> &ValueRegistry {
        &self.inner.values
    }

    // ---- server side ----------------------------------------------------

    /// Starts the bootstrap port: binds `addr` (e.g. `"127.0.0.1:0"`) and
    /// serves incoming connections on background threads.
    ///
    /// # Errors
    ///
    /// Bind failures, or calling it twice.
    pub fn serve(&self, addr: &str) -> RmiResult<Endpoint> {
        let mut guard = self.inner.server.lock();
        if guard.is_some() {
            return Err(RmiError::Protocol("ORB is already serving".to_owned()));
        }
        let handle = ServerHandle::start(addr, self.clone())?;
        let endpoint = handle.endpoint().clone();
        *guard = Some(handle);
        Ok(endpoint)
    }

    /// The bootstrap endpoint, if serving.
    pub fn endpoint(&self) -> Option<Endpoint> {
        self.inner.server.lock().as_ref().map(|h| h.endpoint().clone())
    }

    /// The server-side overload policy this ORB was built with.
    pub(crate) fn server_policy(&self) -> &ServerPolicy {
        &self.inner.server_policy
    }

    /// The I/O engine this ORB was built with (see
    /// [`OrbBuilder::transport_mode`]).
    pub fn transport_mode(&self) -> TransportMode {
        self.inner.transport_mode
    }

    /// Stops accepting connections. Existing connections drain naturally.
    /// Also stops and joins the heartbeat prober, if one is running.
    pub fn shutdown(&self) {
        self.stop_heartbeat();
        if let Some(handle) = self.inner.server.lock().take() {
            handle.stop();
        }
    }

    /// Graceful shutdown: stops accepting, sheds new requests on live
    /// connections with `Busy`, waits up to the policy's `drain_timeout`
    /// for in-flight dispatches to complete, then force-closes whatever
    /// remains. Returns `true` when everything in flight finished within
    /// the budget (`false` = some dispatch was cut off), and `true` when
    /// the ORB was not serving.
    pub fn shutdown_and_drain(&self) -> bool {
        self.stop_heartbeat();
        // Take the handle *then* release the server lock: draining can
        // take up to `drain_timeout`, and in-flight dispatches may read
        // ORB state that must not deadlock behind this mutex.
        let handle = self.inner.server.lock().take();
        match handle {
            Some(h) => h.stop_and_drain(),
            None => true,
        }
    }

    /// Stops and joins the heartbeat prober (idempotent; no-op when
    /// heartbeats were never enabled). The join is bounded: the prober
    /// parks on the stop signal between ticks, and a mid-scan prober
    /// finishes its current probe (itself deadline-bounded) before it
    /// re-checks.
    fn stop_heartbeat(&self) {
        // Take the handle *then* release the lock: joining can block for
        // the tail of an in-flight probe, and the prober never takes this
        // lock, but keeping join outside the critical section is cheap
        // insurance against future lock-order knots.
        let handle = self.inner.heartbeat.lock().take();
        if let Some(mut h) = handle {
            h.stop_and_join();
        }
    }

    /// A point-in-time health snapshot of the running server: accepting
    /// flag, in-flight and connection gauges, shed counters. `None` when
    /// the ORB is not serving. The same data is remotely dispatchable via
    /// the built-in `_health` object ([`Orb::health_ref`]).
    pub fn server_health(&self) -> Option<ServerHealth> {
        self.inner.server.lock().as_ref().map(|h| h.health())
    }

    /// The reference of this server's built-in `_health` object
    /// (well-known object id 0, type `IDL:heidl/Health:1.0`). Every
    /// serving ORB dispatches it — no export required — so any client
    /// (including a telnet user on the text protocol) can probe liveness
    /// (`ping` → `"pong"`) and overload counters (`report`). `None` when
    /// the ORB is not serving.
    pub fn health_ref(&self) -> Option<ObjectRef> {
        self.endpoint().map(|e| ObjectRef::new(e, HEALTH_OBJECT_ID, HEALTH_TYPE_ID))
    }

    /// This ORB's metrics registry: call counters, per-operation latency
    /// histograms, retry/breaker/shed counters, byte counters. Always
    /// live — recording does not require a running server. The same data
    /// is remotely dispatchable via the built-in `_metrics` object
    /// ([`Orb::metrics_ref`]).
    pub fn metrics(&self) -> &Arc<Metrics> {
        &self.inner.metrics
    }

    /// The reference of this server's built-in `_metrics` object
    /// (well-known object id `u64::MAX`, type `IDL:heidl/Metrics:1.0`).
    /// Like `_health` it is served by every running ORB with no export
    /// required and bypasses admission control, so a telnet user can read
    /// `dump` even from an overloaded server. `None` when not serving.
    pub fn metrics_ref(&self) -> Option<ObjectRef> {
        self.endpoint().map(|e| ObjectRef::new(e, METRICS_OBJECT_ID, METRICS_TYPE_ID))
    }

    /// Registers a skeleton, returning its reference. Requires a running
    /// server (the reference embeds the bootstrap endpoint).
    ///
    /// # Errors
    ///
    /// Fails when the ORB is not serving.
    pub fn export(&self, skeleton: Arc<dyn Skeleton>) -> RmiResult<ObjectRef> {
        let endpoint = self.endpoint().ok_or_else(|| {
            RmiError::Protocol("cannot export: ORB is not serving (call serve() first)".to_owned())
        })?;
        let id = self.inner.next_id.fetch_add(1, Ordering::Relaxed);
        // Fully qualified: `std::any::Any` is in scope and would otherwise
        // capture `.type_id()` on the `Arc` itself.
        let type_id = Skeleton::type_id(skeleton.as_ref()).to_owned();
        self.inner.objects.write().insert(id, skeleton);
        Ok(ObjectRef::new(endpoint, id, type_id))
    }

    /// Lazy export: creates and registers the skeleton only on first call
    /// for this servant `identity` (use the servant's `Arc` pointer). This
    /// is the paper's "skeleton is only created when a reference to it is
    /// being passed", combined with the skeleton cache.
    ///
    /// # Errors
    ///
    /// As for [`Orb::export`].
    pub fn export_once(
        &self,
        identity: usize,
        make: impl FnOnce() -> Arc<dyn Skeleton>,
    ) -> RmiResult<ObjectRef> {
        if let Some(&id) = self.inner.exported.read().get(&identity) {
            let endpoint = self.endpoint().ok_or_else(|| {
                RmiError::Protocol("ORB stopped serving while references are live".to_owned())
            })?;
            let objects = self.inner.objects.read();
            let skel = objects.get(&id).ok_or_else(|| {
                RmiError::Protocol("exported object vanished from the registry".to_owned())
            })?;
            return Ok(ObjectRef::new(endpoint, id, Skeleton::type_id(skel.as_ref())));
        }
        let objref = self.export(make())?;
        self.inner.exported.write().insert(identity, objref.object_id);
        Ok(objref)
    }

    /// Registers a [`StreamServant`], returning its reference. Stream
    /// servants live in their own registry: their replies leave the
    /// server as chunked frames pumped under flow control, not as one
    /// marshaled body. Invoke the reference with [`Orb::invoke_stream`]
    /// (a plain [`Orb::invoke`] works too — the server then materializes
    /// the whole payload into one ordinary reply).
    ///
    /// # Errors
    ///
    /// Fails when the ORB is not serving.
    pub fn export_stream(&self, servant: Arc<dyn StreamServant>) -> RmiResult<ObjectRef> {
        let endpoint = self.endpoint().ok_or_else(|| {
            RmiError::Protocol("cannot export: ORB is not serving (call serve() first)".to_owned())
        })?;
        let id = self.inner.next_id.fetch_add(1, Ordering::Relaxed);
        // Fully qualified: `std::any::Any` is in scope and would otherwise
        // capture `.type_id()` on the `Arc` itself.
        let type_id = StreamServant::type_id(servant.as_ref()).to_owned();
        self.inner.streams.write().insert(id, servant);
        Ok(ObjectRef::new(endpoint, id, type_id))
    }

    /// The stream servant registered under `object_id`, if any — the
    /// server's router consults this to pick the pump dispatch path.
    pub(crate) fn stream_servant(&self, object_id: u64) -> Option<Arc<dyn StreamServant>> {
        self.inner.streams.read().get(&object_id).cloned()
    }

    /// Number of live skeletons (observability for E4's laziness tests).
    pub fn skeleton_count(&self) -> usize {
        self.inner.objects.read().len()
    }

    /// Removes an object from the registry. Existing references to it will
    /// fail with [`RmiError::UnknownObject`].
    pub fn unexport(&self, objref: &ObjectRef) {
        self.inner.objects.write().remove(&objref.object_id);
        self.inner.streams.write().remove(&objref.object_id);
    }

    // ---- client side ------------------------------------------------------

    /// Starts a request `Call` against `target` (Fig 4 step 1).
    pub fn call(&self, target: &ObjectRef, method: &str) -> Call {
        Call::request(target, method, self.inner.protocol.as_ref())
    }

    /// Starts a `oneway` call: the server will not reply, so the request
    /// carries `response_expected = false` (keeping cached connections in
    /// sync). Send it with [`Orb::invoke_oneway`].
    pub fn call_oneway(&self, target: &ObjectRef, method: &str) -> Call {
        Call::oneway(target, method, self.inner.protocol.as_ref())
    }

    /// Invokes a call with default [`CallOptions`]: connection checkout
    /// (the endpoint's shared multiplexed connection), correlated round
    /// trip, reply parse (Fig 4 steps 2-4).
    ///
    /// Pooled connections that died while idle — the classic
    /// stale-connection case after a server closed them — are evicted at
    /// checkout, before any request bytes are written, so every call
    /// transparently proceeds on a fresh connection. When a cached
    /// connection fails only *mid-call* (the narrow window where it went
    /// stale between checkout and use), the call is retried **once** on a
    /// fresh connection, but only when its retry-safety class allows it:
    /// the server may already be executing the request, so non-idempotent
    /// calls surface the error instead (see
    /// [`CallOptionsBuilder::retry_class`]).
    ///
    /// # Errors
    ///
    /// Transport failures, marshal failures, and remote exceptions
    /// ([`RmiError::Remote`]).
    pub fn invoke(&self, call: Call) -> RmiResult<Reply> {
        self.invoke_with(call, CallOptions::default())
    }

    /// Invokes a call with explicit [`CallOptions`] — deadline, retry
    /// class/policy, result caching. **This is the single client
    /// invocation entry point**: [`Orb::invoke`] is sugar for default
    /// options, generated stubs call it with annotation-derived options,
    /// and [`DynCall`](crate::dynamic::DynCall) routes through it too.
    ///
    /// A call that outlives its deadline returns
    /// [`RmiError::DeadlineExceeded`]; the shared connection is *not* torn
    /// down, and the late reply is discarded by the demultiplexer whenever
    /// it arrives.
    ///
    /// When [`CallOptions::cached_ttl`] is set and a fresh entry for the
    /// same target, method, and argument bytes exists in the result
    /// cache, the remembered reply is returned without touching the wire
    /// — no connection checkout, no interceptor fires, only the
    /// `CacheHits` counter records the short-circuit.
    ///
    /// # Errors
    ///
    /// As [`Orb::invoke`], plus [`RmiError::DeadlineExceeded`].
    pub fn invoke_with(&self, mut call: Call, options: CallOptions) -> RmiResult<Reply> {
        self.check_protocol(call.target())?;
        let request_id = call.request_id();
        // Exactly-once: stamp the request with this ORB's invocation
        // token. Attached *before* any trace context — the wire layout is
        // token-first, context-last — and reused verbatim by every retry
        // of this invocation, which is what lets the server dedup them.
        if options.exactly_once && call.response_expected() {
            let token = InvocationToken {
                session: self.inner.session_id,
                seq: self.inner.token_seq.fetch_add(1, Ordering::Relaxed),
            };
            call.attach_token(self.inner.protocol.as_ref(), token);
        }
        // Call tracing (Debug level): stamp the request with a trailing
        // wire context — this call's id, plus the id of whatever call we
        // are currently dispatching as the parent — and make it current
        // for the duration of the invocation so interceptor fires and
        // trace events correlate. Costs nothing when tracing is off.
        let _ctx_guard = if trace::enabled(TraceLevel::Debug) {
            let ctx = CallContext {
                call_id: request_id,
                parent_id: CallContext::current().map_or(0, |c| c.call_id),
            };
            call.attach_context(self.inner.protocol.as_ref(), ctx);
            Some(ctx.enter())
        } else {
            None
        };
        let args_span = call.args_span();
        // Take ownership of the target and method along with the body:
        // the call is done with them, and moving spares an `ObjectRef`
        // clone plus a `String` allocation on every invocation.
        let (target, method, body) = call.into_parts();
        // `@cached` consult: key on the argument bytes only — the header
        // embeds the per-call request id, which never repeats.
        let cache_key = options.cached_ttl.map(|_| CacheKey {
            target: target.to_string(),
            method: method.clone(),
            args: body[args_span].to_vec(),
        });
        if let Some(key) = &cache_key {
            if let Some(hit) = self.inner.result_cache.lookup(key) {
                pool::recycle(body);
                self.inner.metrics.inc(Counter::CacheHits);
                return Reply::parse(hit, self.inner.protocol.as_ref());
            }
        }
        self.inner.interceptors.fire(CallPhase::ClientSend, &target, &method, true);
        let deadline = options.deadline.or(self.inner.default_deadline);
        self.inner.metrics.add(Counter::BytesOut, body.len() as u64);

        // The latency clock is read only when per-op detail is on:
        // `record_client_call` ignores the nanos otherwise, and two
        // `Instant::now()` reads per call are measurable on the
        // sub-microsecond echo path. (Flipping detail on mid-call records
        // that one call as 0ns — harmless for a monitoring histogram.)
        let started = self.inner.metrics.detail_enabled().then(Instant::now);
        let result =
            self.invoke_fault_tolerant(&target, &method, request_id, &body, deadline, &options);
        // The request body is done with the wire on every path; give its
        // storage back for the next call's encoder.
        pool::recycle(body);
        let elapsed_ns = started.map_or(0, |s| s.elapsed().as_nanos() as u64);
        let reply_body = match result {
            Ok(b) => b,
            Err(e) => {
                // Broken connections were discarded, not re-pooled.
                self.inner.metrics.record_client_call(&method, elapsed_ns, false);
                self.inner.interceptors.fire(CallPhase::ClientReceive, &target, &method, false);
                return Err(e);
            }
        };
        self.inner.metrics.add(Counter::BytesIn, reply_body.len() as u64);
        let reply_vec: Vec<u8> = reply_body.into();
        // `Reply::parse` consumes the body, and only an OK-status body
        // parses to `Ok` — so clone up front and cache on success, which
        // keeps exception and busy replies out of the cache for free.
        let raw = if cache_key.is_some() { Some(reply_vec.clone()) } else { None };
        let reply = Reply::parse(reply_vec, self.inner.protocol.as_ref());
        if reply.is_ok() {
            if let (Some(key), Some(raw), Some(ttl)) = (cache_key, raw, options.cached_ttl) {
                self.inner.result_cache.store(key, raw, ttl);
            }
        }
        self.inner.metrics.record_client_call(&method, elapsed_ns, reply.is_ok());
        self.inner.interceptors.fire(CallPhase::ClientReceive, &target, &method, reply.is_ok());
        reply
    }

    /// Invokes a call whose reply is **streamed**: the request carries the
    /// trailing chunk section (the opt-in, with its `index` field naming
    /// the requested credit window in bytes), and the returned
    /// [`ReplyStream`] consumes the server's chunked frames incrementally
    /// — never buffering more than about one window — while acking
    /// consumed bytes to keep the server's credit turning.
    ///
    /// Sugar for [`Orb::invoke_stream_with`] with default options.
    ///
    /// # Errors
    ///
    /// As [`Orb::invoke_stream_with`].
    pub fn invoke_stream(&self, call: Call) -> RmiResult<ReplyStream> {
        self.invoke_stream_with(call, CallOptions::default())
    }

    /// [`Orb::invoke_stream`] with explicit [`CallOptions`].
    ///
    /// **Single-attempt by design**: a stream consumed halfway cannot be
    /// transparently re-sent, so there is no retry/failover loop here —
    /// callers re-invoke on error. [`CallOptions::exactly_once`] still
    /// attaches an invocation token; a retry landing *after* the stream
    /// went out is answered by the server's stream-expired marker
    /// ([`STREAM_EXPIRED_REPO_ID`](crate::STREAM_EXPIRED_REPO_ID)), which
    /// surfaces as the always-safe-to-retry [`RmiError::ServerBusy`].
    /// [`CallOptions::deadline`] (or the ORB default) bounds each
    /// *chunk* wait, not the whole stream.
    ///
    /// The requested window is the ORB's own
    /// [`ServerPolicy::stream_window_bytes`](crate::ServerPolicy) — the
    /// serving side clamps it to *its* policy, and the ack protocol makes
    /// the clamp transparent.
    ///
    /// # Errors
    ///
    /// Transport and marshal failures, as [`Orb::invoke`]; also rejects
    /// oneway calls and protocols without a chunk encoding.
    pub fn invoke_stream_with(
        &self,
        mut call: Call,
        options: CallOptions,
    ) -> RmiResult<ReplyStream> {
        self.check_protocol(call.target())?;
        if !call.response_expected() {
            return Err(RmiError::Protocol(
                "invoke_stream requires a two-way call built with call()".to_owned(),
            ));
        }
        let request_id = call.request_id();
        if options.exactly_once {
            let token = InvocationToken {
                session: self.inner.session_id,
                seq: self.inner.token_seq.fetch_add(1, Ordering::Relaxed),
            };
            call.attach_token(self.inner.protocol.as_ref(), token);
        }
        let window = self.inner.server_policy.stream_window_bytes as u64;
        if !call.attach_stream_request(self.inner.protocol.as_ref(), window) {
            return Err(RmiError::Protocol(format!(
                "protocol `{}` has no chunk encoding; streaming is unavailable",
                self.inner.protocol.name()
            )));
        }
        let endpoint = call.target().endpoint.clone();
        let (target, method, body) = call.into_parts();
        self.inner.interceptors.fire(CallPhase::ClientSend, &target, &method, true);
        self.inner.metrics.add(Counter::BytesOut, body.len() as u64);
        let checked = match self.inner.pool.checkout(&endpoint, &self.inner.protocol) {
            Ok(c) => c,
            Err(e) => {
                pool::recycle(body);
                self.inner.interceptors.fire(CallPhase::ClientReceive, &target, &method, false);
                return Err(e);
            }
        };
        let conn = Arc::clone(checked.connection());
        let slot = conn.call_streamed(request_id, &body);
        pool::recycle(body);
        let slot = match slot {
            Ok(s) => s,
            Err(e) => {
                self.inner.pool.discard(&endpoint, &conn);
                self.inner.interceptors.fire(CallPhase::ClientReceive, &target, &method, false);
                return Err(e);
            }
        };
        let ack_target = ObjectRef::new(endpoint, STREAM_ACK_OBJECT_ID, STREAM_ACK_TYPE_ID);
        Ok(ReplyStream::new(
            conn,
            slot,
            Arc::clone(&self.inner.protocol),
            request_id,
            ack_target,
            window,
            self.inner.server_policy.decode_limits,
            options.deadline.or(self.inner.default_deadline),
        ))
    }

    /// Number of stale-connection retries performed (observability).
    pub fn retry_count(&self) -> u64 {
        self.inner.retries.load(Ordering::Relaxed)
    }

    /// This ORB's invocation-token session id — the `session` half of
    /// every `"~tok"` suffix it stamps (see [`CallOptions::exactly_once`]).
    pub fn session_id(&self) -> u64 {
        self.inner.session_id
    }

    /// The fault-tolerant invocation engine: up to `max_attempts` passes
    /// over the reference's endpoints (primary, then fallbacks), with
    /// jittered backoff between passes and the whole schedule bounded by
    /// the call deadline — a budget too spent to fit the next backoff
    /// sleep surfaces as [`RmiError::DeadlineExceeded`], not as whatever
    /// transport error happened last. Whether a failure may move on to the next
    /// endpoint/pass is decided by its retry-safety class
    /// ([`classify`]): connect-level failures are always safe, failures
    /// after bytes were written need [`RetryClass::Safe`] (an idempotent
    /// declaration), and
    /// semantic failures (remote exceptions, deadlines) never retry.
    ///
    /// Interceptors observe each extra attempt as a
    /// [`CallPhase::ClientRetry`] with the target re-pointed at the
    /// endpoint about to be tried.
    fn invoke_fault_tolerant(
        &self,
        target: &ObjectRef,
        method: &str,
        request_id: u64,
        body: &[u8],
        deadline: Option<Duration>,
        options: &CallOptions,
    ) -> RmiResult<PooledBuf> {
        let policy = options.retry_policy.unwrap_or(self.inner.retry_policy);
        let overall = deadline.map(|d| Instant::now() + d);
        let mut backoff = Backoff::new(&policy, request_id);
        let mut last_err: Option<RmiError> = None;
        let mut first_attempt = true;
        for pass in 0..policy.max_attempts.max(1) {
            if pass > 0 {
                let delay = backoff.next_delay();
                // Never sleep past the deadline. The budget — not the last
                // endpoint tried — is what ran out here, so surface the
                // deadline rather than a stale transport error.
                if let Some(end) = overall {
                    if Instant::now() + delay >= end {
                        return Err(RmiError::DeadlineExceeded {
                            after: deadline.unwrap_or_default(),
                        });
                    }
                }
                std::thread::sleep(delay);
            }
            for endpoint in target.endpoints() {
                if !first_attempt {
                    self.inner.metrics.inc(Counter::Retries);
                    self.inner.interceptors.fire(
                        CallPhase::ClientRetry,
                        &target.at_endpoint(endpoint),
                        method,
                        true,
                    );
                }
                first_attempt = false;
                let remaining = match overall {
                    None => None,
                    Some(end) => {
                        let left = end.saturating_duration_since(Instant::now());
                        if left.is_zero() {
                            return Err(RmiError::DeadlineExceeded {
                                after: deadline.unwrap_or_default(),
                            });
                        }
                        Some(left)
                    }
                };
                match self.attempt_endpoint(endpoint, request_id, body, remaining, options) {
                    Ok(b) => return Ok(b),
                    // A tokened call is resend-safe even when bytes were
                    // written: the server dedups on the token, so a
                    // re-send can at worst replay the cached reply.
                    Err(e) if may_retry(&e, options.idempotent || options.exactly_once) => {
                        last_err = Some(e)
                    }
                    Err(e) => return Err(e),
                }
            }
        }
        Err(last_err.unwrap_or_else(|| RmiError::Protocol("no endpoints left to try".to_owned())))
    }

    /// One attempt against one specific endpoint: breaker admission,
    /// connection checkout, correlated round trip, breaker bookkeeping —
    /// including the stale-cached-connection heuristic (a *retry-safe*
    /// failure on a cached connection gets one immediate retry on a fresh
    /// one; see [`may_retry`]).
    fn attempt_endpoint(
        &self,
        endpoint: &Endpoint,
        request_id: u64,
        body: &[u8],
        deadline: Option<Duration>,
        options: &CallOptions,
    ) -> RmiResult<PooledBuf> {
        let breaker = self.inner.pool.breaker(endpoint);
        // The admission token ties the eventual outcome back to the
        // breaker generation that admitted this attempt: if the breaker
        // trips (or is probed) while this call is in flight, a stale
        // outcome is ignored instead of corrupting the newer state.
        let token = match breaker.try_admit() {
            Ok(token) => token,
            Err(retry_after) => {
                return Err(RmiError::CircuitOpen { endpoint: endpoint.to_string(), retry_after })
            }
        };
        let checked = match self.inner.pool.checkout(endpoint, &self.inner.protocol) {
            Ok(c) => c,
            Err(e) => {
                breaker.record_outcome(token, false);
                return Err(e);
            }
        };
        match checked.call(request_id, body, deadline) {
            Ok(b) => self.accept_reply(b, &breaker, token),
            // A deadline says nothing about connection health: keep the
            // connection — but a consistently slow endpoint is unhealthy
            // for fail-fast purposes, so the breaker counts it.
            Err(e @ RmiError::DeadlineExceeded { .. }) => {
                breaker.record_outcome(token, false);
                Err(e)
            }
            Err(first_err)
                if (checked.from_cache() || options.exactly_once)
                    && options.retry
                    && may_retry(&first_err, options.idempotent || options.exactly_once) =>
            {
                // The cached connection was stale (or the call carries an
                // invocation token, making a reconnect transparent even on
                // a fresh connection); try once on a new one. The gate
                // means this never re-sends a request the server may
                // already be executing *unsafely*: mid-call failures only
                // pass when the call is idempotent or token-deduped.
                self.inner.pool.discard(endpoint, checked.connection());
                drop(checked);
                self.inner.retries.fetch_add(1, Ordering::Relaxed);
                self.inner.metrics.inc(Counter::Retries);
                if options.exactly_once {
                    self.inner.metrics.inc(Counter::Reconnects);
                }
                match self.inner.pool.checkout(endpoint, &self.inner.protocol) {
                    Ok(fresh) => match fresh.call(request_id, body, deadline) {
                        Ok(b) => self.accept_reply(b, &breaker, token),
                        Err(e) => {
                            breaker.record_outcome(token, false);
                            Err(e)
                        }
                    },
                    Err(_) => {
                        breaker.record_outcome(token, false);
                        Err(first_err)
                    }
                }
            }
            Err(e) => {
                breaker.record_outcome(token, false);
                Err(e)
            }
        }
    }

    /// Inspects a received reply's status before handing it to the stub:
    /// a `Busy` status means the server shed the request before dispatch,
    /// so it surfaces here as [`RmiError::ServerBusy`] (an always-safe
    /// retry class: the policy loop backs off or fails over instead of
    /// hammering the overloaded server) and counts as a breaker failure.
    /// Anything else — including exception replies, which *are* answers —
    /// records breaker success and flows on to [`Reply::parse`].
    fn accept_reply(
        &self,
        body: PooledBuf,
        breaker: &Arc<CircuitBreaker>,
        token: ProbeToken,
    ) -> RmiResult<PooledBuf> {
        match peek_reply_status(&body, self.inner.protocol.as_ref()) {
            Ok((_, ReplyStatus::Busy)) => {
                breaker.record_outcome(token, false);
                match Reply::parse(body.into(), self.inner.protocol.as_ref()) {
                    Err(e) => Err(e),
                    // Unreachable (a Busy body always parses to an error),
                    // but never silently swallow a shed.
                    Ok(_) => Err(RmiError::ServerBusy { detail: "server busy".to_owned() }),
                }
            }
            _ => {
                breaker.record_outcome(token, true);
                Ok(body)
            }
        }
    }

    /// Invokes a `oneway` call: send and forget.
    ///
    /// Fires `ClientSend` like [`Orb::invoke`]; on a send failure it also
    /// fires `ClientReceive` with `ok = false`, so interceptors see a
    /// symmetric pair for failed oneways (successful oneways still fire
    /// only `ClientSend` — there is no reply to receive).
    ///
    /// # Errors
    ///
    /// Transport failures; also rejects calls built with [`Orb::call`]
    /// (the server would send a reply nobody reads).
    pub fn invoke_oneway(&self, call: Call) -> RmiResult<()> {
        if call.response_expected() {
            return Err(RmiError::Protocol(
                "invoke_oneway requires a call built with call_oneway()".to_owned(),
            ));
        }
        self.check_protocol(call.target())?;
        let endpoint = call.target().endpoint.clone();
        let target = call.target().clone();
        let method = call.method().to_owned();
        self.inner.interceptors.fire(CallPhase::ClientSend, &target, &method, true);
        let body = call.into_body();
        self.inner.metrics.inc(Counter::Oneways);
        self.inner.metrics.add(Counter::BytesOut, body.len() as u64);
        let result = self
            .inner
            .pool
            .checkout(&endpoint, &self.inner.protocol)
            .and_then(|conn| conn.send_oneway(&body));
        pool::recycle(body);
        if result.is_err() {
            self.inner.interceptors.fire(CallPhase::ClientReceive, &target, &method, false);
        }
        result
    }

    /// A reference names the protocol its server speaks (`@tcp:...` vs
    /// `@giop:...`); invoking it through an ORB speaking another protocol
    /// would exchange mutually unintelligible bytes, so fail fast.
    fn check_protocol(&self, target: &ObjectRef) -> RmiResult<()> {
        let ours = self.inner.protocol.name();
        for endpoint in target.endpoints() {
            if endpoint.proto != ours {
                return Err(RmiError::Protocol(format!(
                    "reference speaks `{}` but this ORB speaks `{ours}`",
                    endpoint.proto
                )));
            }
        }
        Ok(())
    }

    // ---- stub cache -------------------------------------------------------

    /// Returns the cached stub for `objref`, creating it with `make` on
    /// first use ("both stubs and skeletons are cached in each
    /// address-space").
    pub fn cached_stub<T, F>(&self, objref: &ObjectRef, make: F) -> Arc<T>
    where
        T: Any + Send + Sync,
        F: FnOnce() -> Arc<T>,
    {
        let key = objref.to_string();
        if let Some(existing) = self.inner.stubs.read().get(&key) {
            if let Ok(typed) = Arc::clone(existing).downcast::<T>() {
                return typed;
            }
        }
        let stub = make();
        self.inner.stubs.write().insert(key, Arc::clone(&stub) as Arc<dyn Any + Send + Sync>);
        stub
    }

    /// Number of cached stubs (observability).
    pub fn stub_count(&self) -> usize {
        self.inner.stubs.read().len()
    }

    /// Number of entries in the `@cached` result cache (observability;
    /// counts entries not yet reaped, including expired ones).
    pub fn cached_result_count(&self) -> usize {
        self.inner.result_cache.len()
    }

    // ---- incopy ----------------------------------------------------------

    /// Marshals an `incopy` argument: by value when the servant is
    /// serializable (no skeleton is ever created), by reference otherwise
    /// (lazily exporting a skeleton built by `make_skel`).
    ///
    /// # Errors
    ///
    /// Export failures when falling back to by-reference.
    pub fn marshal_incopy(
        &self,
        servant: &Arc<dyn RemoteObject>,
        make_skel: impl FnOnce() -> Arc<dyn Skeleton>,
        enc: &mut dyn Encoder,
    ) -> RmiResult<()> {
        if let Some(value) = servant.as_serializable() {
            serialize::marshal_value(value, enc);
            return Ok(());
        }
        let identity = Arc::as_ptr(servant) as *const () as usize;
        let objref = self.export_once(identity, make_skel)?;
        serialize::marshal_reference(&objref, enc);
        Ok(())
    }
}

impl Drop for OrbInner {
    fn drop(&mut self) {
        // Join the heartbeat prober first: it holds only a `Weak` to this
        // inner (upgrade now fails), so the join is bounded by one tick
        // plus the tail of an in-flight probe.
        if let Some(handle) = self.heartbeat.get_mut().take() {
            let mut handle = handle;
            handle.stop_and_join();
        }
        if let Some(handle) = self.server.get_mut().take() {
            handle.stop();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_defaults_match_default() {
        let built = CallOptions::builder().build();
        let defaulted = CallOptions::default();
        assert_eq!(built.deadline, defaulted.deadline);
        assert_eq!(built.retry, defaulted.retry);
        assert_eq!(built.retry_policy, defaulted.retry_policy);
        assert_eq!(built.idempotent, defaulted.idempotent);
        assert_eq!(built.cached_ttl, defaulted.cached_ttl);
    }

    #[test]
    fn retry_class_maps_onto_retry_and_idempotent() {
        let safe = CallOptions::builder().retry_class(RetryClass::Safe).build();
        assert!(safe.retry && safe.idempotent);
        let conditional = CallOptions::builder().retry_class(RetryClass::IfIdempotent).build();
        assert!(conditional.retry && !conditional.idempotent);
        let never = CallOptions::builder().retry_class(RetryClass::Never).build();
        assert!(!never.retry && !never.idempotent);
    }

    #[test]
    fn builder_chain_composes_all_knobs() {
        let options = CallOptions::builder()
            .deadline(Duration::from_millis(50))
            .retry_class(RetryClass::Safe)
            .retry_policy(RetryPolicy::none())
            .cached(Duration::from_millis(200))
            .build();
        assert_eq!(options.deadline, Some(Duration::from_millis(50)));
        assert!(options.idempotent);
        assert_eq!(options.retry_policy, Some(RetryPolicy::none()));
        assert_eq!(options.cached_ttl, Some(Duration::from_millis(200)));
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_constructors_still_produce_equivalent_options() {
        let old = CallOptions::with_deadline(Duration::from_millis(10));
        assert_eq!(old.deadline, Some(Duration::from_millis(10)));
        let old = CallOptions::idempotent();
        assert!(old.idempotent && old.retry);
        let old = CallOptions::with_retry_policy(RetryPolicy::none())
            .and_deadline(Duration::from_millis(7))
            .and_idempotent();
        assert_eq!(old.retry_policy, Some(RetryPolicy::none()));
        assert_eq!(old.deadline, Some(Duration::from_millis(7)));
        assert!(old.idempotent);
    }
}
