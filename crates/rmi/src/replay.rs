//! Server-side exactly-once support: a per-session dedup table plus a
//! bounded reply cache.
//!
//! Clients that declare `RetryClass::ExactlyOnce` (or `@exactly_once` in
//! IDL) stamp every request with an [`InvocationToken`](crate::InvocationToken)
//! — `(session, seq)` — and retries carry the *same* token. Before a
//! tokened request reaches a servant the server consults this cache:
//!
//! * first sighting → the token is marked **in flight** and the request
//!   executes normally; the completed reply body is recorded;
//! * a retry of a **completed** token → the cached reply is replayed
//!   byte-for-byte; the servant never runs again;
//! * a retry of an **in-flight** token → answered `Busy`, which clients
//!   classify `RetryClass::Safe` and retry after backoff — by which time
//!   the first execution has usually completed and the reply replays.
//!
//! The cache is bounded two ways, both set on
//! [`ServerPolicy`](crate::ServerPolicy): a TTL (entries older than
//! `reply_cache_ttl` are purged — this also reaps in-flight markers
//! orphaned by a crashed dispatch) and a byte cap
//! (`reply_cache_max_bytes`; the oldest completed replies are evicted
//! first). A retry arriving after its entry was evicted re-executes, so
//! exactly-once holds for retry windows shorter than both bounds — the
//! client's deadline, not the server's memory, is meant to be the binding
//! constraint.

use std::collections::{HashMap, VecDeque};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Key of one invocation: `(session, seq)` from the wire token.
type Key = (u64, u64);

/// What the dispatch path must do with a tokened request.
#[derive(Debug, PartialEq, Eq)]
pub(crate) enum ReplayDecision {
    /// First sighting: execute the servant and call
    /// [`ReplayCache::complete`] with the reply.
    Execute,
    /// Duplicate of a completed invocation: send this cached reply,
    /// skip the servant.
    Replay(Vec<u8>),
    /// Duplicate of an invocation still executing: answer `Busy` so the
    /// client backs off and retries once the first execution completes.
    InFlight,
}

#[derive(Debug)]
enum State {
    InFlight,
    Done(Vec<u8>),
}

#[derive(Debug)]
struct Entry {
    state: State,
    at: Instant,
}

#[derive(Debug, Default)]
struct Inner {
    entries: HashMap<Key, Entry>,
    /// Completion order of `Done` entries — the byte-cap eviction queue.
    /// `InFlight` markers are not listed; they are reaped by TTL when a
    /// retry meets them.
    order: VecDeque<Key>,
    bytes: usize,
}

/// The dedup table + reply cache. One per server, shared by every
/// connection; all operations take one short mutex hold.
#[derive(Debug)]
pub(crate) struct ReplayCache {
    ttl: Duration,
    max_bytes: usize,
    inner: Mutex<Inner>,
}

impl ReplayCache {
    pub(crate) fn new(ttl: Duration, max_bytes: usize) -> ReplayCache {
        ReplayCache { ttl, max_bytes: max_bytes.max(1), inner: Mutex::new(Inner::default()) }
    }

    /// Decides the fate of a tokened request, atomically claiming the
    /// token when it is new. Returns the decision plus the number of
    /// entries the TTL purge evicted on the way in.
    pub(crate) fn begin(&self, key: Key) -> (ReplayDecision, u64) {
        let now = Instant::now();
        let mut inner = self.inner.lock().expect("replay cache poisoned");
        let purged = self.purge_expired(&mut inner, now);
        let decision = match inner.entries.get(&key) {
            None => {
                inner.entries.insert(key, Entry { state: State::InFlight, at: now });
                ReplayDecision::Execute
            }
            Some(entry) => match &entry.state {
                State::Done(reply) => ReplayDecision::Replay(reply.clone()),
                State::InFlight if now.duration_since(entry.at) > self.ttl => {
                    // The first execution's dispatch died without
                    // completing (worker panic); reclaim the token.
                    inner.entries.insert(key, Entry { state: State::InFlight, at: now });
                    ReplayDecision::Execute
                }
                State::InFlight => ReplayDecision::InFlight,
            },
        };
        (decision, purged)
    }

    /// Records the reply for a token previously claimed by
    /// [`ReplayCache::begin`], making it replayable. Returns the number
    /// of older entries the byte cap evicted to make room (the new reply
    /// itself may be evicted when it alone exceeds the cap — the cap is a
    /// hard bound).
    pub(crate) fn complete(&self, key: Key, reply: &[u8]) -> u64 {
        let mut inner = self.inner.lock().expect("replay cache poisoned");
        // The entry may have been TTL-purged mid-execution; recording the
        // reply (re-creating it) is still correct — it just extends the
        // replay window. A replaced Done body (a reaped in-flight marker
        // whose late completion raced the retry's) must not leak bytes.
        let replaced = inner
            .entries
            .insert(key, Entry { state: State::Done(reply.to_vec()), at: Instant::now() });
        if let Some(Entry { state: State::Done(old), .. }) = replaced {
            inner.bytes -= old.len();
        }
        inner.bytes += reply.len();
        inner.order.push_back(key);
        let mut evicted = 0u64;
        while inner.bytes > self.max_bytes {
            let Some(old) = inner.order.pop_front() else { break };
            if let Some(Entry { state: State::Done(body), .. }) = inner.entries.remove(&old) {
                inner.bytes -= body.len();
                evicted += 1;
            }
        }
        evicted
    }

    /// Number of live entries (in-flight + completed). Sampled as a gauge
    /// by the server's `_metrics.dump`, so cache occupancy is observable
    /// remotely (the multi-session churn test asserts boundedness here).
    pub(crate) fn len(&self) -> usize {
        self.inner.lock().expect("replay cache poisoned").entries.len()
    }

    /// Bytes of cached reply bodies currently held (same gauge role as
    /// [`ReplayCache::len`]).
    pub(crate) fn bytes(&self) -> usize {
        self.inner.lock().expect("replay cache poisoned").bytes
    }

    /// Drops every `Done` entry older than the TTL from the front of the
    /// completion queue (completion times are monotonic, so the scan can
    /// stop at the first fresh entry). Returns how many were dropped.
    fn purge_expired(&self, inner: &mut Inner, now: Instant) -> u64 {
        let mut purged = 0u64;
        while let Some(key) = inner.order.front().copied() {
            match inner.entries.get(&key) {
                Some(entry) if now.duration_since(entry.at) > self.ttl => {
                    if let Some(Entry { state: State::Done(body), .. }) = inner.entries.remove(&key)
                    {
                        inner.bytes -= body.len();
                        purged += 1;
                    }
                    inner.order.pop_front();
                }
                // A key in `order` whose entry is missing was already
                // evicted by the byte cap; just drop the stale queue slot.
                None => {
                    inner.order.pop_front();
                }
                Some(_) => break,
            }
        }
        purged
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const KEY: Key = (7, 1);

    #[test]
    fn first_sighting_executes_then_replays() {
        let cache = ReplayCache::new(Duration::from_secs(30), 1 << 20);
        assert_eq!(cache.begin(KEY).0, ReplayDecision::Execute);
        assert_eq!(cache.complete(KEY, b"reply-bytes"), 0);
        match cache.begin(KEY).0 {
            ReplayDecision::Replay(body) => assert_eq!(body, b"reply-bytes"),
            other => panic!("expected replay, got {other:?}"),
        }
        // Replays are repeatable for the whole TTL window.
        assert!(matches!(cache.begin(KEY).0, ReplayDecision::Replay(_)));
    }

    #[test]
    fn concurrent_duplicate_of_in_flight_token_is_busy() {
        let cache = ReplayCache::new(Duration::from_secs(30), 1 << 20);
        assert_eq!(cache.begin(KEY).0, ReplayDecision::Execute);
        assert_eq!(cache.begin(KEY).0, ReplayDecision::InFlight);
        cache.complete(KEY, b"done");
        assert!(matches!(cache.begin(KEY).0, ReplayDecision::Replay(_)));
    }

    #[test]
    fn ttl_expiry_reopens_the_token() {
        let cache = ReplayCache::new(Duration::from_millis(20), 1 << 20);
        assert_eq!(cache.begin(KEY).0, ReplayDecision::Execute);
        cache.complete(KEY, b"old");
        std::thread::sleep(Duration::from_millis(40));
        // Expired: the retry re-executes rather than replaying stale data.
        let (decision, purged) = cache.begin(KEY);
        assert_eq!(decision, ReplayDecision::Execute);
        assert_eq!(purged, 1);
        assert_eq!(cache.bytes(), 0);
    }

    #[test]
    fn orphaned_in_flight_marker_is_reaped_after_ttl() {
        let cache = ReplayCache::new(Duration::from_millis(20), 1 << 20);
        assert_eq!(cache.begin(KEY).0, ReplayDecision::Execute);
        // No complete(): the dispatch "crashed".
        std::thread::sleep(Duration::from_millis(40));
        assert_eq!(cache.begin(KEY).0, ReplayDecision::Execute);
    }

    #[test]
    fn byte_cap_evicts_oldest_completed_replies_first() {
        let cache = ReplayCache::new(Duration::from_secs(30), 25);
        let mut evicted = 0;
        for seq in 0..3u64 {
            let key = (1, seq);
            assert_eq!(cache.begin(key).0, ReplayDecision::Execute);
            evicted += cache.complete(key, &[0u8; 10]);
        }
        assert_eq!(evicted, 1, "third insert pushes 30 bytes past the 25-byte cap");
        assert_eq!(cache.bytes(), 20);
        // (1, 0) was evicted → re-executes; newer entries still replay.
        assert_eq!(cache.begin((1, 0)).0, ReplayDecision::Execute);
        assert!(matches!(cache.begin((1, 1)).0, ReplayDecision::Replay(_)));
        assert!(matches!(cache.begin((1, 2)).0, ReplayDecision::Replay(_)));
    }

    #[test]
    fn eviction_counts_are_reported() {
        let cache = ReplayCache::new(Duration::from_secs(30), 25);
        for seq in 0..2u64 {
            let key = (1, seq);
            cache.begin(key);
            assert_eq!(cache.complete(key, &[0u8; 10]), 0);
        }
        cache.begin((1, 2));
        assert_eq!(cache.complete((1, 2), &[0u8; 10]), 1, "third insert evicts the first");
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn oversized_reply_is_evicted_by_the_hard_cap() {
        let cache = ReplayCache::new(Duration::from_secs(30), 8);
        cache.begin(KEY);
        assert_eq!(cache.complete(KEY, &[0u8; 64]), 1, "cap is hard even for the newest reply");
        assert_eq!(cache.bytes(), 0);
        assert_eq!(cache.begin(KEY).0, ReplayDecision::Execute, "evicted token re-executes");
    }
}
