//! Server-side overload policy: admission control caps, load-shedding
//! bounds, wire decode limits, slow-client timeouts, and drain semantics.
//!
//! The paper treats everything around the invocation path as
//! customization surface; [`ServerPolicy`] extends that to the *failure
//! boundary of the server itself*. Every bound defaults to "unlimited"
//! (the historical behavior) so existing deployments see no change; a
//! production server dials each knob on `Orb::builder()`:
//!
//! ```
//! use heidl_rmi::{Orb, ServerPolicy};
//! use std::time::Duration;
//!
//! let orb = Orb::builder()
//!     .server_policy(
//!         ServerPolicy::default()
//!             .with_max_connections(512)
//!             .with_max_in_flight(64)
//!             .with_max_in_flight_per_connection(8)
//!             .with_drain_timeout(Duration::from_secs(2)),
//!     )
//!     .build();
//! # drop(orb);
//! ```
//!
//! Shed requests are answered with a `Busy` reply (status `3`) before any
//! servant runs, which clients surface as `RmiError::ServerBusy` — an
//! always-safe-to-retry class, so the retry policy's backoff and failover
//! spread load away from the hot server instead of hammering it.

use heidl_wire::DecodeLimits;
use std::time::Duration;

/// Overload-protection configuration for one ORB's server side.
///
/// Defaults preserve the pre-policy behavior: effectively-unbounded caps,
/// no socket timeouts, permissive [`DecodeLimits`], and a 5 s drain
/// budget for [`Orb::shutdown_and_drain`](crate::Orb::shutdown_and_drain).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServerPolicy {
    /// Maximum concurrently accepted connections; further accepts are
    /// closed immediately and counted as shed connections.
    pub max_connections: usize,
    /// Maximum requests dispatched concurrently across the whole server;
    /// excess two-way requests get a `Busy` reply, oneways are dropped.
    pub max_in_flight: usize,
    /// Maximum requests dispatched concurrently for any one connection,
    /// so a single aggressive client cannot monopolize the global cap.
    pub max_in_flight_per_connection: usize,
    /// Maximum transient overflow threads the worker pool may add beyond
    /// its resident workers; past the cap, requests are shed with `Busy`.
    pub max_overflow_threads: usize,
    /// Read timeout on accepted sockets: a connection idle longer than
    /// this is dropped, reclaiming readers from silent clients.
    pub read_idle_timeout: Option<Duration>,
    /// Write timeout on accepted sockets: a client too slow to consume
    /// replies gets disconnected instead of blocking a worker forever.
    pub write_timeout: Option<Duration>,
    /// How long [`Orb::shutdown_and_drain`](crate::Orb::shutdown_and_drain)
    /// waits for in-flight dispatches before force-closing connections.
    pub drain_timeout: Duration,
    /// Wire decode limits applied to every frame and body the server
    /// reads; a hostile 4 GB length prefix is an error, not an allocation.
    pub decode_limits: DecodeLimits,
    /// How long a completed reply stays in the exactly-once reply cache,
    /// available for replay to a retried invocation token. Also bounds how
    /// long a crashed in-flight token blocks its retries with `Busy`.
    pub reply_cache_ttl: Duration,
    /// Total bytes of cached reply bodies kept for exactly-once replay;
    /// past the cap the oldest completed entries are evicted (and a retry
    /// arriving after eviction re-executes — the client should keep its
    /// retry window well under both bounds).
    pub reply_cache_max_bytes: usize,
    /// Payload bytes per chunk of a streamed reply. Smaller chunks pace
    /// more smoothly; larger chunks cost fewer frames per megabyte.
    pub stream_chunk_bytes: usize,
    /// Upper bound on one stream's in-flight (sent but unacknowledged)
    /// bytes. A client may request a smaller window in its chunk-suffix
    /// opt-in; it never gets a larger one. This is what bounds peak
    /// buffering on both sides of a streamed transfer, independent of the
    /// total payload size.
    pub stream_window_bytes: usize,
    /// Server-wide pacing of streamed chunk emission, in payload bytes
    /// per second through one shared token bucket. `None` (the default)
    /// streams as fast as windows and sockets allow.
    pub stream_rate_bytes_per_sec: Option<u64>,
    /// Global budget on reply bytes queued (not yet written to sockets)
    /// across *all* connections — the reactor engine's backstop against a
    /// fleet of slow readers inflating RSS even though each connection is
    /// individually under its queue cap. On exhaustion new two-way
    /// requests are shed with `Busy` before dispatch.
    pub max_reply_queue_bytes_global: usize,
}

impl Default for ServerPolicy {
    fn default() -> Self {
        ServerPolicy {
            max_connections: usize::MAX,
            max_in_flight: usize::MAX,
            max_in_flight_per_connection: usize::MAX,
            max_overflow_threads: 256,
            read_idle_timeout: None,
            write_timeout: None,
            drain_timeout: Duration::from_secs(5),
            decode_limits: DecodeLimits::default(),
            reply_cache_ttl: Duration::from_secs(30),
            reply_cache_max_bytes: 4 * 1024 * 1024,
            stream_chunk_bytes: 256 * 1024,
            stream_window_bytes: 1024 * 1024,
            stream_rate_bytes_per_sec: None,
            max_reply_queue_bytes_global: usize::MAX,
        }
    }
}

impl ServerPolicy {
    /// Caps concurrently accepted connections (clamped to ≥ 1).
    #[must_use]
    pub fn with_max_connections(mut self, max: usize) -> ServerPolicy {
        self.max_connections = max.max(1);
        self
    }

    /// Caps server-wide concurrent dispatches (clamped to ≥ 1).
    #[must_use]
    pub fn with_max_in_flight(mut self, max: usize) -> ServerPolicy {
        self.max_in_flight = max.max(1);
        self
    }

    /// Caps per-connection concurrent dispatches (clamped to ≥ 1).
    #[must_use]
    pub fn with_max_in_flight_per_connection(mut self, max: usize) -> ServerPolicy {
        self.max_in_flight_per_connection = max.max(1);
        self
    }

    /// Caps transient worker-pool overflow threads (0 disables overflow:
    /// when every resident worker is busy, requests shed immediately).
    #[must_use]
    pub fn with_max_overflow_threads(mut self, max: usize) -> ServerPolicy {
        self.max_overflow_threads = max;
        self
    }

    /// Drops connections idle longer than `timeout` (`None` = never).
    #[must_use]
    pub fn with_read_idle_timeout(mut self, timeout: Option<Duration>) -> ServerPolicy {
        self.read_idle_timeout = timeout;
        self
    }

    /// Disconnects clients too slow to consume replies (`None` = never).
    #[must_use]
    pub fn with_write_timeout(mut self, timeout: Option<Duration>) -> ServerPolicy {
        self.write_timeout = timeout;
        self
    }

    /// Sets the graceful-drain budget for `shutdown_and_drain`.
    #[must_use]
    pub fn with_drain_timeout(mut self, timeout: Duration) -> ServerPolicy {
        self.drain_timeout = timeout;
        self
    }

    /// Sets the wire decode limits enforced on everything the server reads.
    #[must_use]
    pub fn with_decode_limits(mut self, limits: DecodeLimits) -> ServerPolicy {
        self.decode_limits = limits;
        self
    }

    /// Sets how long cached replies stay replayable for retried tokens.
    #[must_use]
    pub fn with_reply_cache_ttl(mut self, ttl: Duration) -> ServerPolicy {
        self.reply_cache_ttl = ttl;
        self
    }

    /// Caps the bytes of reply bodies held in the exactly-once reply
    /// cache (clamped to ≥ 1 so a completed reply is always recordable).
    #[must_use]
    pub fn with_reply_cache_max_bytes(mut self, max: usize) -> ServerPolicy {
        self.reply_cache_max_bytes = max.max(1);
        self
    }

    /// Sets the payload bytes per streamed chunk (clamped to ≥ 1).
    #[must_use]
    pub fn with_stream_chunk_bytes(mut self, bytes: usize) -> ServerPolicy {
        self.stream_chunk_bytes = bytes.max(1);
        self
    }

    /// Caps one stream's in-flight (unacknowledged) bytes (clamped to
    /// ≥ 1; a window smaller than the chunk size still admits one chunk
    /// at a time).
    #[must_use]
    pub fn with_stream_window_bytes(mut self, bytes: usize) -> ServerPolicy {
        self.stream_window_bytes = bytes.max(1);
        self
    }

    /// Paces streamed chunk emission server-wide (`None` = unpaced).
    #[must_use]
    pub fn with_stream_rate_bytes_per_sec(mut self, rate: Option<u64>) -> ServerPolicy {
        self.stream_rate_bytes_per_sec = rate.map(|r| r.max(1));
        self
    }

    /// Caps reply bytes queued across every connection (clamped to ≥ 1);
    /// past it, new two-way requests are shed with `Busy`.
    #[must_use]
    pub fn with_max_reply_queue_bytes_global(mut self, max: usize) -> ServerPolicy {
        self.max_reply_queue_bytes_global = max.max(1);
        self
    }
}

/// A point-in-time snapshot of one server's health, as reported by the
/// built-in `_health` object and by [`Orb::server_health`](crate::Orb::server_health).
///
/// The shed counters are mirrored — from a single call site per kind, so
/// the two can never disagree — into the ORB's [`Metrics`](crate::Metrics)
/// registry ([`Counter::ShedRequests`](crate::Counter) /
/// [`Counter::ShedConnections`](crate::Counter)), where the built-in
/// `_metrics` object reports them alongside latency histograms.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServerHealth {
    /// True while the server accepts and dispatches new requests; false
    /// once a drain has begun.
    pub accepting: bool,
    /// Requests currently dispatched (or queued to workers).
    pub in_flight: u64,
    /// Connections currently open.
    pub connections: u64,
    /// Total requests shed with a `Busy` reply (or silently, for oneways)
    /// since the server started.
    pub shed_requests: u64,
    /// Total connections refused at accept time since the server started.
    pub shed_connections: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_effectively_unbounded() {
        let p = ServerPolicy::default();
        assert_eq!(p.max_connections, usize::MAX);
        assert_eq!(p.max_in_flight, usize::MAX);
        assert_eq!(p.max_in_flight_per_connection, usize::MAX);
        assert!(p.read_idle_timeout.is_none());
        assert!(p.write_timeout.is_none());
        assert_eq!(p.decode_limits, DecodeLimits::default());
        assert_eq!(p.max_reply_queue_bytes_global, usize::MAX);
        assert!(p.stream_rate_bytes_per_sec.is_none());
        assert!(p.stream_chunk_bytes <= p.stream_window_bytes);
    }

    #[test]
    fn builders_set_and_clamp() {
        let p = ServerPolicy::default()
            .with_max_connections(0)
            .with_max_in_flight(0)
            .with_max_in_flight_per_connection(0)
            .with_max_overflow_threads(0)
            .with_read_idle_timeout(Some(Duration::from_secs(30)))
            .with_write_timeout(Some(Duration::from_secs(5)))
            .with_drain_timeout(Duration::from_millis(250))
            .with_decode_limits(DecodeLimits::strict())
            .with_reply_cache_ttl(Duration::from_secs(60))
            .with_reply_cache_max_bytes(0)
            .with_stream_chunk_bytes(0)
            .with_stream_window_bytes(0)
            .with_stream_rate_bytes_per_sec(Some(0))
            .with_max_reply_queue_bytes_global(0);
        assert_eq!(p.max_connections, 1, "caps clamp to >= 1");
        assert_eq!(p.max_in_flight, 1);
        assert_eq!(p.max_in_flight_per_connection, 1);
        assert_eq!(p.max_overflow_threads, 0, "overflow may be disabled outright");
        assert_eq!(p.read_idle_timeout, Some(Duration::from_secs(30)));
        assert_eq!(p.write_timeout, Some(Duration::from_secs(5)));
        assert_eq!(p.drain_timeout, Duration::from_millis(250));
        assert_eq!(p.decode_limits, DecodeLimits::strict());
        assert_eq!(p.reply_cache_ttl, Duration::from_secs(60));
        assert_eq!(p.reply_cache_max_bytes, 1, "byte cap clamps to >= 1");
        assert_eq!(p.stream_chunk_bytes, 1);
        assert_eq!(p.stream_window_bytes, 1);
        assert_eq!(p.stream_rate_bytes_per_sec, Some(1), "zero rate clamps to >= 1");
        assert_eq!(p.max_reply_queue_bytes_global, 1);
    }

    #[test]
    fn health_snapshot_defaults_to_zeroed_not_accepting() {
        let h = ServerHealth::default();
        assert!(!h.accepting);
        assert_eq!(h.in_flight, 0);
        assert_eq!(h.shed_requests, 0);
    }
}
