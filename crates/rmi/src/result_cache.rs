//! Client-side result cache backing the IDL `@cached(ttl_ms)` annotation.
//!
//! A `@cached` operation's reply body is remembered for the annotation's
//! TTL and replayed for subsequent identical calls — no connection
//! checkout, no wire round trip. "Identical" means the same target
//! reference, the same method, and byte-equal marshaled arguments (the
//! request header is excluded: it embeds the per-call request id, which
//! differs on every call — see [`Call::args_span`](crate::call::Call)).
//!
//! Only *successful* replies are cached. Exception and busy replies
//! always travel the wire, so a recovering server is re-probed rather
//! than having its failure replayed until the TTL lapses.
//!
//! The cache is per-ORB and bounded: past [`ResultCache::CAPACITY`] live
//! entries, inserting evicts the entry closest to expiry. Expired entries
//! are dropped lazily on lookup and on insert.

use parking_lot::Mutex;
use std::collections::HashMap;
use std::time::{Duration, Instant};

/// Identity of a cacheable invocation.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub(crate) struct CacheKey {
    /// Stringified target reference (endpoint + object id + type id).
    pub target: String,
    /// Method name.
    pub method: String,
    /// The marshaled argument bytes (header and context suffix excluded).
    pub args: Vec<u8>,
}

#[derive(Debug)]
struct CacheEntry {
    body: Vec<u8>,
    expires_at: Instant,
}

/// A TTL-bounded map from invocation identity to raw reply body.
#[derive(Debug, Default)]
pub(crate) struct ResultCache {
    entries: Mutex<HashMap<CacheKey, CacheEntry>>,
}

impl ResultCache {
    /// Live-entry bound; see the module docs for the eviction rule.
    const CAPACITY: usize = 1024;

    /// Returns the cached reply body for `key` when present and fresh;
    /// drops the entry (and returns `None`) when its TTL has lapsed.
    pub fn lookup(&self, key: &CacheKey) -> Option<Vec<u8>> {
        let mut entries = self.entries.lock();
        match entries.get(key) {
            Some(e) if e.expires_at > Instant::now() => Some(e.body.clone()),
            Some(_) => {
                entries.remove(key);
                None
            }
            None => None,
        }
    }

    /// Remembers `body` as the reply for `key` for the next `ttl`.
    pub fn store(&self, key: CacheKey, body: Vec<u8>, ttl: Duration) {
        let now = Instant::now();
        let mut entries = self.entries.lock();
        if entries.len() >= Self::CAPACITY {
            entries.retain(|_, e| e.expires_at > now);
            if entries.len() >= Self::CAPACITY {
                // Still full of live entries: evict the one expiring
                // soonest — it has the least remaining value.
                if let Some(victim) =
                    entries.iter().min_by_key(|(_, e)| e.expires_at).map(|(k, _)| k.clone())
                {
                    entries.remove(&victim);
                }
            }
        }
        entries.insert(key, CacheEntry { body, expires_at: now + ttl });
    }

    /// Number of entries currently held (live or not yet reaped).
    pub fn len(&self) -> usize {
        self.entries.lock().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(args: &[u8]) -> CacheKey {
        CacheKey { target: "@tcp:h:1#7#IDL:T:1.0".into(), method: "m".into(), args: args.to_vec() }
    }

    #[test]
    fn hit_within_ttl_miss_after_expiry() {
        let cache = ResultCache::default();
        cache.store(key(b"a"), vec![1, 2, 3], Duration::from_millis(40));
        assert_eq!(cache.lookup(&key(b"a")), Some(vec![1, 2, 3]));
        std::thread::sleep(Duration::from_millis(60));
        assert_eq!(cache.lookup(&key(b"a")), None, "expired entry must not serve");
        assert_eq!(cache.len(), 0, "expired entry is reaped on lookup");
    }

    #[test]
    fn distinct_arguments_are_distinct_entries() {
        let cache = ResultCache::default();
        cache.store(key(b"a"), vec![1], Duration::from_secs(5));
        cache.store(key(b"b"), vec![2], Duration::from_secs(5));
        assert_eq!(cache.lookup(&key(b"a")), Some(vec![1]));
        assert_eq!(cache.lookup(&key(b"b")), Some(vec![2]));
        assert_eq!(cache.lookup(&key(b"c")), None);
    }

    #[test]
    fn capacity_evicts_soonest_expiring_live_entry() {
        let cache = ResultCache::default();
        for i in 0..ResultCache::CAPACITY {
            // Entry 0 expires soonest and is the designated victim.
            let ttl = Duration::from_secs(if i == 0 { 1 } else { 3600 });
            cache.store(key(&i.to_le_bytes()), vec![0], ttl);
        }
        cache.store(key(b"one-more"), vec![9], Duration::from_secs(3600));
        assert_eq!(cache.len(), ResultCache::CAPACITY);
        assert_eq!(cache.lookup(&key(&0usize.to_le_bytes())), None, "victim was evicted");
        assert_eq!(cache.lookup(&key(b"one-more")), Some(vec![9]));
    }
}
