//! Semantic validation: the well-formedness rules an IDL compiler
//! enforces before code generation.
//!
//! [`validate`] returns *all* diagnostics (not just the first), each with
//! a source span. [`build`](crate::build()) runs it first, so no
//! ill-formed specification ever reaches the EST or the templates.
//!
//! Enforced rules:
//!
//! * names are unique within a scope (modules merge in real IDL; we keep
//!   the paper-era one-shot model and reject redefinition);
//! * interface members (operations + attributes) and parameters are
//!   uniquely named; enumerators are unique;
//! * inheritance names resolve to interfaces and form no cycles;
//! * `oneway` operations return `void`, have no `out`/`inout` parameters
//!   and no `raises` clause (OMG rules — a oneway has no reply to carry
//!   results or exceptions);
//! * default parameter values trail non-defaulted parameters (the C++
//!   rule the HeidiRMI mapping inherits, §3.1);
//! * `raises` names resolve to exceptions;
//! * union case labels are unique and the discriminator is an integral,
//!   boolean, char or enum type.

use crate::symbols::{Symbol, SymbolTable};
use heidl_idl::ast::*;
use heidl_idl::span::Span;
use std::collections::{HashMap, HashSet};
use std::fmt;

/// One semantic diagnostic.
#[derive(Debug, Clone, PartialEq)]
pub struct SemanticError {
    message: String,
    span: Span,
}

impl SemanticError {
    fn new(message: impl Into<String>, span: Span) -> Self {
        SemanticError { message: message.into(), span }
    }

    /// The human-readable message.
    pub fn message(&self) -> &str {
        &self.message
    }

    /// Where in the source the problem lies.
    pub fn span(&self) -> Span {
        self.span
    }
}

impl fmt::Display for SemanticError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.span.start, self.message)
    }
}

impl std::error::Error for SemanticError {}

/// Validates `spec`, returning every diagnostic found.
pub fn validate(spec: &Specification) -> Vec<SemanticError> {
    let table = SymbolTable::build(spec);
    let mut checker =
        Checker { table, scope: Vec::new(), errors: Vec::new(), bases: HashMap::new() };
    checker.collect_bases(&spec.definitions);
    checker.definitions(&spec.definitions);
    checker.errors
}

struct Checker {
    table: SymbolTable,
    scope: Vec<String>,
    errors: Vec<SemanticError>,
    /// Interface path → resolved direct base paths, for cycle detection.
    bases: HashMap<Vec<String>, Vec<Vec<String>>>,
}

impl Checker {
    fn error(&mut self, message: impl Into<String>, span: Span) {
        self.errors.push(SemanticError::new(message, span));
    }

    fn definitions(&mut self, defs: &[Definition]) {
        // Unique names per scope. Forward declarations may coexist with
        // the interface definition of the same name (that is their job);
        // everything else redefined is an error.
        #[derive(Clone, Copy, PartialEq)]
        enum Class {
            InterfaceDef,
            InterfaceFwd,
            Other,
        }
        let mut seen: HashMap<&str, Class> = HashMap::new();
        for def in defs {
            let name = def.name().text.as_str();
            let class = match def {
                Definition::Interface(_) => Class::InterfaceDef,
                Definition::ForwardInterface(_) => Class::InterfaceFwd,
                _ => Class::Other,
            };
            match seen.get(name).copied() {
                None => {
                    seen.insert(name, class);
                }
                // Forward declarations combine freely with each other and
                // with at most one real definition.
                Some(Class::InterfaceFwd) if class != Class::Other => {
                    seen.insert(name, class);
                }
                Some(Class::InterfaceDef) if class == Class::InterfaceFwd => {}
                Some(_) => {
                    self.error(format!("duplicate definition of `{name}`"), def.name().span);
                }
            }
            match def {
                Definition::Module(m) => {
                    self.scope.push(m.name.text.clone());
                    self.definitions(&m.definitions);
                    self.scope.pop();
                }
                Definition::Interface(i) => self.interface(i),
                Definition::Enum(e) => self.enum_def(e),
                Definition::Union(u) => self.union_def(u),
                Definition::Struct(s) => self.fields(&s.members, "struct", s.span),
                Definition::Exception(e) => self.fields(&e.members, "exception", e.span),
                _ => {}
            }
        }
    }

    fn fields(&mut self, members: &[StructMember], what: &str, span: Span) {
        let mut seen = HashSet::new();
        for m in members {
            if !seen.insert(m.name.text.as_str()) {
                self.error(format!("duplicate {what} field `{}`", m.name.text), m.name.span);
            }
        }
        if members.is_empty() && what == "struct" {
            self.error("struct has no fields", span);
        }
    }

    fn enum_def(&mut self, e: &EnumDef) {
        let mut seen = HashSet::new();
        for member in &e.enumerators {
            if !seen.insert(member.text.as_str()) {
                self.error(format!("duplicate enumerator `{}`", member.text), member.span);
            }
        }
    }

    fn interface(&mut self, i: &Interface) {
        // Bases must be interfaces; the closure must be acyclic.
        for base in &i.bases {
            match self.table.resolve(base, &self.scope) {
                Some((_, Symbol::Interface)) => {}
                Some(_) => {
                    self.error(format!("`{base}` is not an interface"), base.span);
                }
                None => self.error(format!("unresolved base interface `{base}`"), base.span),
            }
        }
        if self.has_inheritance_cycle(i) {
            self.error(
                format!("interface `{}` inherits from itself (directly or transitively)", i.name),
                i.name.span,
            );
        }

        let mut members = HashSet::new();
        for m in &i.members {
            match m {
                Member::Operation(op) => {
                    if !members.insert(op.name.text.clone()) {
                        self.error(
                            format!("duplicate member `{}` in interface `{}`", op.name, i.name),
                            op.name.span,
                        );
                    }
                    self.operation(op);
                }
                Member::Attribute(a) => {
                    if !members.insert(a.name.text.clone()) {
                        self.error(
                            format!("duplicate member `{}` in interface `{}`", a.name, i.name),
                            a.name.span,
                        );
                    }
                    self.attribute(a);
                }
            }
        }
    }

    /// Pre-pass: record every interface's resolved direct base paths.
    fn collect_bases(&mut self, defs: &[Definition]) {
        for def in defs {
            match def {
                Definition::Module(m) => {
                    self.scope.push(m.name.text.clone());
                    self.collect_bases(&m.definitions);
                    self.scope.pop();
                }
                Definition::Interface(i) => {
                    let mut own = self.scope.clone();
                    own.push(i.name.text.clone());
                    let direct: Vec<Vec<String>> = i
                        .bases
                        .iter()
                        .filter_map(|b| match self.table.resolve(b, &self.scope) {
                            Some((path, Symbol::Interface)) => Some(path),
                            _ => None,
                        })
                        .collect();
                    self.bases.insert(own, direct);
                }
                _ => {}
            }
        }
    }

    /// DFS over the resolved base graph: reaching the interface's own
    /// path again is a cycle (covers direct, mutual and longer cycles).
    fn has_inheritance_cycle(&self, i: &Interface) -> bool {
        let mut own = self.scope.clone();
        own.push(i.name.text.clone());
        let mut visited: HashSet<&[String]> = HashSet::new();
        let mut stack: Vec<&Vec<String>> =
            self.bases.get(&own).map(|b| b.iter().collect()).unwrap_or_default();
        while let Some(path) = stack.pop() {
            if *path == own {
                return true;
            }
            if !visited.insert(path.as_slice()) {
                continue;
            }
            if let Some(next) = self.bases.get(path) {
                stack.extend(next.iter());
            }
        }
        false
    }

    fn operation(&mut self, op: &Operation) {
        // `@oneway` is the annotation spelling of the keyword: the same
        // well-formedness rules apply to both.
        let oneway = op.oneway || op.annotation("oneway").is_some();
        if oneway {
            if op.return_type != Type::Void {
                self.error(format!("oneway operation `{}` must return void", op.name), op.span);
            }
            if op.params.iter().any(|p| matches!(p.direction, Direction::Out | Direction::InOut)) {
                self.error(
                    format!("oneway operation `{}` cannot have out/inout parameters", op.name),
                    op.span,
                );
            }
            if !op.raises.is_empty() {
                self.error(
                    format!("oneway operation `{}` cannot raise exceptions", op.name),
                    op.span,
                );
            }
            // A oneway has no reply: there is nothing to retry against a
            // deadline, nothing to cache, idempotence never matters, and
            // exactly-once dedup has no reply to replay.
            for qos in ["idempotent", "deadline", "cached", "exactly_once"] {
                if let Some(a) = op.annotation(qos) {
                    self.error(
                        format!("oneway operation `{}` cannot carry `@{qos}`", op.name),
                        a.span,
                    );
                }
            }
        }
        // The two resend-safety declarations are mutually exclusive: one
        // says "re-executing is harmless", the other "never re-execute —
        // dedup on a token". A stub can only emit one retry class.
        if let (Some(_), Some(x)) = (op.annotation("idempotent"), op.annotation("exactly_once")) {
            self.error(
                format!(
                    "operation `{}` cannot carry both `@idempotent` and `@exactly_once`",
                    op.name
                ),
                x.span,
            );
        }
        if op.annotation("cached").is_some() && op.return_type == Type::Void {
            let a = op.annotation("cached").expect("just checked");
            self.error(
                format!("`@cached` operation `{}` must return a value to cache", op.name),
                a.span,
            );
        }
        if let Some(s) = op.annotation("stream") {
            // Chunk frames each carry one string fragment, so the mapping
            // only streams string results.
            if !matches!(op.return_type, Type::String(_)) {
                self.error(format!("`@stream` operation `{}` must return string", op.name), s.span);
            }
            if op.oneway || op.annotation("oneway").is_some() {
                self.error(
                    format!("oneway operation `{}` cannot carry `@stream`", op.name),
                    s.span,
                );
            }
            // A streamed reply is consumed incrementally; there is no
            // whole result to put in the client-side cache.
            if let Some(c) = op.annotation("cached") {
                self.error(
                    format!("`@stream` operation `{}` cannot also be `@cached`", op.name),
                    c.span,
                );
            }
        }
        if let Some(c) = op.annotation("chunked") {
            if op.annotation("stream").is_none() {
                self.error(format!("`@chunked` on `{}` requires `@stream`", op.name), c.span);
            }
        }

        let mut seen = HashSet::new();
        let mut defaults_started = false;
        for p in &op.params {
            if !seen.insert(p.name.text.as_str()) {
                self.error(
                    format!("duplicate parameter `{}` in operation `{}`", p.name, op.name),
                    p.name.span,
                );
            }
            // The C++ trailing-default rule, inherited by the mapping.
            if p.default.is_some() {
                defaults_started = true;
                if !matches!(p.direction, Direction::In | Direction::Incopy) {
                    self.error(
                        format!(
                            "parameter `{}` of `{}`: only in/incopy parameters may take defaults",
                            p.name, op.name
                        ),
                        p.name.span,
                    );
                }
            } else if defaults_started {
                self.error(
                    format!(
                        "parameter `{}` of `{}` follows a defaulted parameter and must also have a default",
                        p.name, op.name
                    ),
                    p.name.span,
                );
            }
        }

        for r in &op.raises {
            match self.table.resolve(r, &self.scope) {
                Some((_, Symbol::Exception)) => {}
                Some(_) => self.error(format!("`{r}` is not an exception"), r.span),
                None => self.error(format!("unresolved exception `{r}`"), r.span),
            }
        }
    }

    fn attribute(&mut self, a: &Attribute) {
        // Attribute accessors always expect a reply.
        if let Some(ann) = a.annotation("oneway") {
            self.error(format!("attribute `{}` cannot carry `@oneway`", a.name), ann.span);
        }
        if let (Some(_), Some(x)) = (a.annotation("idempotent"), a.annotation("exactly_once")) {
            self.error(
                format!(
                    "attribute `{}` cannot carry both `@idempotent` and `@exactly_once`",
                    a.name
                ),
                x.span,
            );
        }
        // Accessors move one value; streaming is an operation concern.
        for streamy in ["stream", "chunked"] {
            if let Some(ann) = a.annotation(streamy) {
                self.error(format!("attribute `{}` cannot carry `@{streamy}`", a.name), ann.span);
            }
        }
    }

    fn union_def(&mut self, u: &UnionDef) {
        // Discriminator: integral, boolean, char, or enum.
        let ok = match &u.discriminator {
            Type::Boolean
            | Type::Char
            | Type::Short
            | Type::UShort
            | Type::Long
            | Type::ULong
            | Type::LongLong
            | Type::ULongLong => true,
            Type::Named(n) => {
                matches!(self.table.resolve_transparent(n, &self.scope), Some((_, Symbol::Enum)))
            }
            _ => false,
        };
        if !ok {
            self.error(
                format!(
                    "union `{}` discriminator must be an integral, boolean, char or enum type",
                    u.name
                ),
                u.span,
            );
        }

        let mut labels = HashSet::new();
        let mut default_seen = false;
        let mut arm_names = HashSet::new();
        for case in &u.cases {
            if !arm_names.insert(case.name.text.as_str()) {
                self.error(format!("duplicate union arm `{}`", case.name), case.name.span);
            }
            for label in &case.labels {
                match label {
                    CaseLabel::Default => {
                        if default_seen {
                            self.error(
                                format!("union `{}` has multiple default labels", u.name),
                                u.span,
                            );
                        }
                        default_seen = true;
                    }
                    CaseLabel::Expr(e) => {
                        let key = e.to_string();
                        if !labels.insert(key.clone()) {
                            self.error(
                                format!("duplicate case label `{key}` in union `{}`", u.name),
                                u.span,
                            );
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use heidl_idl::parse;

    fn errors(src: &str) -> Vec<String> {
        validate(&parse(src).unwrap()).into_iter().map(|e| e.message().to_owned()).collect()
    }

    fn assert_clean(src: &str) {
        let errs = errors(src);
        assert!(errs.is_empty(), "{errs:?}");
    }

    fn assert_error(src: &str, needle: &str) {
        let errs = errors(src);
        assert!(errs.iter().any(|e| e.contains(needle)), "expected `{needle}` in {errs:?}");
    }

    #[test]
    fn fig3_is_clean() {
        assert_clean(heidl_idl::FIG3_IDL);
    }

    #[test]
    fn duplicate_definitions_in_scope() {
        assert_error("interface A {}; interface A {};", "duplicate definition of `A`");
        assert_error("enum E { X }; struct E { long a; };", "duplicate definition of `E`");
        // But forward + definition is legal:
        assert_clean("interface S; interface S {};");
        // And the same name in different modules is legal:
        assert_clean("module M1 { interface A {}; }; module M2 { interface A {}; };");
    }

    #[test]
    fn duplicate_members_and_params() {
        assert_error("interface I { void f(); void f(); };", "duplicate member `f`");
        assert_error("interface I { void f(); attribute long f; };", "duplicate member `f`");
        assert_error("interface I { void f(in long a, in long a); };", "duplicate parameter `a`");
        assert_error("enum E { X, X };", "duplicate enumerator `X`");
        assert_error("struct S { long a; long a; };", "duplicate struct field `a`");
    }

    #[test]
    fn oneway_rules() {
        assert_error("interface I { oneway long f(); };", "must return void");
        assert_error("interface I { oneway void f(out long x); };", "out/inout");
        assert_error(
            "exception E { long c; }; interface I { oneway void f() raises (E); };",
            "cannot raise",
        );
        assert_clean("interface I { oneway void f(in long x); };");
    }

    #[test]
    fn annotation_rules() {
        // `@oneway` carries the keyword's well-formedness rules.
        assert_error("interface I { @oneway long f(); };", "must return void");
        assert_error("interface I { @oneway void f(out long x); };", "out/inout");
        assert_clean("interface I { @oneway void f(in long x); };");
        // Replyless calls take no reply-oriented QoS.
        assert_error("interface I { @oneway @deadline(5) void f(); };", "cannot carry `@deadline`");
        assert_error("interface I { @cached(5) oneway void f(); };", "cannot carry `@cached`");
        assert_error(
            "interface I { @oneway @idempotent void f(); };",
            "cannot carry `@idempotent`",
        );
        // `@cached` needs a value to cache.
        assert_error("interface I { @cached(5) void f(); };", "must return a value");
        assert_clean("interface I { @cached(5) long f(); };");
        // Attributes reply by construction.
        assert_error("interface I { @oneway attribute long x; };", "cannot carry `@oneway`");
        assert_clean("interface I { @idempotent @deadline(50) readonly attribute long x; };");
        assert_clean(
            "interface I { @idempotent @deadline(50) @cached(1000) sequence<long> all(); };",
        );
    }

    #[test]
    fn stream_rules() {
        assert_clean("interface I { @stream string pull(); };");
        assert_clean("interface I { @stream @chunked(65536) string pull(); };");
        // Chunk frames carry string fragments only.
        assert_error("interface I { @stream long pull(); };", "must return string");
        // A oneway call has no reply to stream.
        assert_error("interface I { @stream oneway string f(); };", "cannot carry `@stream`");
        assert_error("interface I { @stream @oneway string f(); };", "cannot carry `@stream`");
        // The stream is consumed incrementally; nothing whole to cache.
        assert_error("interface I { @stream @cached(5) string f(); };", "cannot also be `@cached`");
        // `@chunked` only tunes an already-streamed reply.
        assert_error("interface I { @chunked(1024) string f(); };", "requires `@stream`");
        // Attributes move one value.
        assert_error("interface I { @stream attribute string x; };", "cannot carry `@stream`");
        assert_error("interface I { @chunked(8) attribute string x; };", "cannot carry `@chunked`");
    }

    #[test]
    fn trailing_default_rule() {
        assert_error(
            "interface I { void f(in long a = 1, in long b); };",
            "must also have a default",
        );
        assert_clean("interface I { void f(in long a, in long b = 1); };");
        assert_error(
            "interface I { void f(out long a = 1); };",
            "only in/incopy parameters may take defaults",
        );
    }

    #[test]
    fn raises_must_name_exceptions() {
        assert_error(
            "interface E {}; interface I { void f() raises (E); };",
            "is not an exception",
        );
        assert_error("interface I { void f() raises (Nope); };", "unresolved exception");
        assert_clean("exception E { long code; }; interface I { void f() raises (E); };");
    }

    #[test]
    fn bases_must_be_interfaces_and_acyclic() {
        assert_error("enum E { X }; interface I : E {};", "is not an interface");
        assert_error("interface A : A {};", "inherits from itself");
        assert_clean("interface A {}; interface B : A {};");
    }

    #[test]
    fn mutual_and_long_inheritance_cycles() {
        let errs = errors("interface A : B {}; interface B : A {};");
        assert_eq!(
            errs.iter().filter(|e| e.contains("inherits from itself")).count(),
            2,
            "{errs:?}"
        );
        assert_error(
            "interface A : C {}; interface B : A {}; interface C : B {};",
            "inherits from itself",
        );
        // Diamonds are NOT cycles.
        assert_clean(
            "interface Root {}; interface L : Root {}; interface R : Root {}; interface D : L, R {};",
        );
    }

    #[test]
    fn build_rejects_invalid_specs() {
        let err = crate::build(&parse("interface I { oneway long f(); };").unwrap()).unwrap_err();
        assert!(err.message().contains("must return void"), "{err}");
        let err = crate::build(&parse("interface A : A {};").unwrap()).unwrap_err();
        assert!(err.message().contains("inherits from itself"), "{err}");
    }

    #[test]
    fn union_rules() {
        assert_error("union U switch (float) { case 1: long a; };", "discriminator must be");
        assert_error(
            "union U switch (long) { case 1: long a; case 1: long b; };",
            "duplicate case label",
        );
        assert_error(
            "union U switch (long) { default: long a; default: long b; };",
            "multiple default labels",
        );
        assert_error(
            "union U switch (long) { case 1: long a; case 2: long a; };",
            "duplicate union arm",
        );
        assert_clean("enum E { X, Y }; union U switch (E) { case X: long a; default: float b; };");
        assert_clean("union U switch (boolean) { case TRUE: long a; };");
    }

    #[test]
    fn empty_struct_is_flagged() {
        assert_error("struct S {};", "no fields");
    }

    #[test]
    fn multiple_errors_are_all_reported() {
        let errs = errors("interface I { void f(); void f(); oneway long g(); };");
        assert!(errs.len() >= 2, "{errs:?}");
    }
}
