//! The Enhanced Syntax Tree node model.
//!
//! An EST (paper §4.1, Fig 7) is a parse tree reorganized so that *similar
//! elements are grouped together*: all the operations of an interface form
//! one list, all the attributes another, regardless of how they interleave
//! in the IDL source. Nodes are property bags — the paper's Perl encoding
//! (`Ast::New(name, kind, parent)` + `AddProp`) maps directly onto
//! [`Est::add_node`] and [`Est::add_prop`].

use std::collections::BTreeMap;
use std::fmt;

/// Index of a node within an [`Est`] arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub(crate) u32);

impl NodeId {
    /// The arena index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// A property value attached to an EST node.
#[derive(Debug, Clone, PartialEq)]
pub enum PropValue {
    /// A string property (the common case; the paper's props are strings).
    Str(String),
    /// An integer property.
    Int(i64),
    /// A boolean property (e.g. `IsVariable`).
    Bool(bool),
    /// A list of strings (e.g. an enum's `members`).
    List(Vec<String>),
}

impl PropValue {
    /// The value rendered as template-substitutable text.
    ///
    /// Lists join with `", "`; booleans render as `true`/`false` to match
    /// the paper's Fig 8 (`AddProp("IsVariable", true)`).
    pub fn as_text(&self) -> String {
        match self {
            PropValue::Str(s) => s.clone(),
            PropValue::Int(v) => v.to_string(),
            PropValue::Bool(v) => v.to_string(),
            PropValue::List(items) => items.join(", "),
        }
    }

    /// Borrows the string content when this is a [`PropValue::Str`].
    pub fn as_str(&self) -> Option<&str> {
        match self {
            PropValue::Str(s) => Some(s),
            _ => None,
        }
    }
}

impl From<&str> for PropValue {
    fn from(s: &str) -> Self {
        PropValue::Str(s.to_owned())
    }
}

impl From<String> for PropValue {
    fn from(s: String) -> Self {
        PropValue::Str(s)
    }
}

impl From<bool> for PropValue {
    fn from(v: bool) -> Self {
        PropValue::Bool(v)
    }
}

impl From<i64> for PropValue {
    fn from(v: i64) -> Self {
        PropValue::Int(v)
    }
}

/// One node of the EST: a named, kinded property bag with ordered children.
#[derive(Debug, Clone, PartialEq)]
pub struct EstNode {
    /// The node's name (an interface/operation/param name; may be empty for
    /// anonymous nodes such as inline sequence types).
    pub name: String,
    /// The node kind, e.g. `"Interface"`, `"Operation"`, `"Param"`.
    pub kind: String,
    /// Properties, ordered by key for deterministic encoding.
    pub props: BTreeMap<String, PropValue>,
    /// Children in insertion order. Grouped access goes through
    /// [`Est::children_of_kind`].
    pub children: Vec<NodeId>,
    /// The parent node, `None` only for the root.
    pub parent: Option<NodeId>,
}

/// An Enhanced Syntax Tree: an arena of [`EstNode`]s with a single root.
///
/// ```
/// use heidl_est::{Est, PropValue};
///
/// let mut est = Est::new();
/// let root = est.root();
/// let m = est.add_node("Heidi", "Module", root);
/// let i = est.add_node("A", "Interface", m);
/// est.add_prop(i, "Parent", "Heidi_S");
/// assert_eq!(est.children_of_kind(m, "Interface"), vec![i]);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Est {
    nodes: Vec<EstNode>,
}

impl Est {
    /// Creates an EST containing only a `Root` node.
    pub fn new() -> Self {
        Est {
            nodes: vec![EstNode {
                name: "Root".to_owned(),
                kind: "Root".to_owned(),
                props: BTreeMap::new(),
                children: Vec::new(),
                parent: None,
            }],
        }
    }

    /// The root node id.
    pub fn root(&self) -> NodeId {
        NodeId(0)
    }

    /// Adds a node under `parent`, mirroring the paper's
    /// `Ast::New(name, kind, parent)`.
    pub fn add_node(
        &mut self,
        name: impl Into<String>,
        kind: impl Into<String>,
        parent: NodeId,
    ) -> NodeId {
        let id = NodeId(u32::try_from(self.nodes.len()).expect("EST larger than u32::MAX nodes"));
        self.nodes.push(EstNode {
            name: name.into(),
            kind: kind.into(),
            props: BTreeMap::new(),
            children: Vec::new(),
            parent: Some(parent),
        });
        self.nodes[parent.index()].children.push(id);
        id
    }

    /// Attaches a property, mirroring the paper's `AddProp`.
    /// Overwrites any existing property of the same key.
    pub fn add_prop(&mut self, node: NodeId, key: impl Into<String>, value: impl Into<PropValue>) {
        self.nodes[node.index()].props.insert(key.into(), value.into());
    }

    /// Borrows a node.
    pub fn node(&self, id: NodeId) -> &EstNode {
        &self.nodes[id.index()]
    }

    /// Number of nodes including the root.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when only the root exists.
    pub fn is_empty(&self) -> bool {
        self.nodes.len() == 1
    }

    /// Iterates over all `(id, node)` pairs in creation order.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, &EstNode)> {
        self.nodes.iter().enumerate().map(|(i, n)| (NodeId(i as u32), n))
    }

    /// Looks up a property on a node.
    ///
    /// Two *virtual* properties always resolve: `name` and `kind`, unless
    /// shadowed by an explicit property of the same key.
    pub fn prop(&self, node: NodeId, key: &str) -> Option<PropValue> {
        let n = self.node(node);
        if let Some(v) = n.props.get(key) {
            return Some(v.clone());
        }
        match key {
            "name" => Some(PropValue::Str(n.name.clone())),
            "kind" => Some(PropValue::Str(n.kind.clone())),
            _ => None,
        }
    }

    /// The *grouped* child list: direct children of `node` with kind `kind`,
    /// in source order. This is the paper's Fig 7 invariant — attributes and
    /// operations interleaved in IDL come back as separate, contiguous lists.
    pub fn children_of_kind(&self, node: NodeId, kind: &str) -> Vec<NodeId> {
        self.node(node).children.iter().copied().filter(|c| self.node(*c).kind == kind).collect()
    }

    /// Like [`Est::children_of_kind`], but when `node` is a container
    /// (`Root` or `Module`) the search descends through nested modules.
    ///
    /// This is what lets a template say `@foreach interfaceList` at the top
    /// level and visit every interface in every module (paper Fig 9).
    pub fn descendants_of_kind(&self, node: NodeId, kind: &str) -> Vec<NodeId> {
        let mut out = Vec::new();
        self.collect_descendants(node, kind, &mut out);
        out
    }

    fn collect_descendants(&self, node: NodeId, kind: &str, out: &mut Vec<NodeId>) {
        for &c in &self.node(node).children {
            let child = self.node(c);
            if child.kind == kind {
                out.push(c);
            }
            if child.kind == "Module" {
                self.collect_descendants(c, kind, out);
            }
        }
    }

    /// Finds the first descendant (depth-first) with the given kind and name.
    pub fn find(&self, kind: &str, name: &str) -> Option<NodeId> {
        self.iter().find(|(_, n)| n.kind == kind && n.name == name).map(|(id, _)| id)
    }
}

impl Default for Est {
    fn default() -> Self {
        Est::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> (Est, NodeId, NodeId) {
        let mut est = Est::new();
        let root = est.root();
        let m = est.add_node("Heidi", "Module", root);
        let i = est.add_node("A", "Interface", m);
        (est, m, i)
    }

    #[test]
    fn root_exists_and_is_empty() {
        let est = Est::new();
        assert!(est.is_empty());
        assert_eq!(est.node(est.root()).kind, "Root");
        assert_eq!(est.node(est.root()).parent, None);
    }

    #[test]
    fn add_node_links_parent_and_child() {
        let (est, m, i) = sample();
        assert_eq!(est.node(i).parent, Some(m));
        assert_eq!(est.node(m).children, vec![i]);
        assert_eq!(est.len(), 3);
        assert!(!est.is_empty());
    }

    #[test]
    fn props_overwrite_and_resolve() {
        let (mut est, _, i) = sample();
        est.add_prop(i, "Parent", "Heidi_S");
        est.add_prop(i, "Parent", "Heidi_T");
        assert_eq!(est.prop(i, "Parent"), Some(PropValue::Str("Heidi_T".into())));
        assert_eq!(est.prop(i, "missing"), None);
    }

    #[test]
    fn virtual_name_and_kind_props() {
        let (est, m, i) = sample();
        assert_eq!(est.prop(m, "name").unwrap().as_text(), "Heidi");
        assert_eq!(est.prop(i, "kind").unwrap().as_text(), "Interface");
    }

    #[test]
    fn explicit_prop_shadows_virtual() {
        let (mut est, _, i) = sample();
        est.add_prop(i, "name", "Mapped");
        assert_eq!(est.prop(i, "name").unwrap().as_text(), "Mapped");
    }

    #[test]
    fn children_of_kind_groups_interleaved_members() {
        let (mut est, _, i) = sample();
        // Interleave like Fig 3: q, button (attribute), s.
        est.add_node("q", "Operation", i);
        est.add_node("button", "Attribute", i);
        est.add_node("s", "Operation", i);
        let ops: Vec<_> = est
            .children_of_kind(i, "Operation")
            .iter()
            .map(|&o| est.node(o).name.clone())
            .collect();
        assert_eq!(ops, ["q", "s"]);
        let attrs = est.children_of_kind(i, "Attribute");
        assert_eq!(attrs.len(), 1);
        assert_eq!(est.node(attrs[0]).name, "button");
    }

    #[test]
    fn descendants_descend_through_modules_only() {
        let mut est = Est::new();
        let root = est.root();
        let m1 = est.add_node("M1", "Module", root);
        let m2 = est.add_node("M2", "Module", m1);
        let i1 = est.add_node("I1", "Interface", m1);
        let i2 = est.add_node("I2", "Interface", m2);
        // An interface nested *inside an interface node* is not a thing the
        // builder produces, but make sure we don't descend into non-modules.
        est.add_node("Op", "Operation", i1);
        assert_eq!(est.descendants_of_kind(root, "Interface"), vec![i2, i1]);
        assert_eq!(est.descendants_of_kind(root, "Operation"), Vec::<NodeId>::new());
        assert_eq!(est.descendants_of_kind(m1, "Interface"), vec![i2, i1]);
    }

    #[test]
    fn find_locates_by_kind_and_name() {
        let (est, _, i) = sample();
        assert_eq!(est.find("Interface", "A"), Some(i));
        assert_eq!(est.find("Interface", "B"), None);
        assert_eq!(est.find("Module", "A"), None);
    }

    #[test]
    fn prop_value_text_rendering() {
        assert_eq!(PropValue::Str("x".into()).as_text(), "x");
        assert_eq!(PropValue::Int(-3).as_text(), "-3");
        assert_eq!(PropValue::Bool(true).as_text(), "true");
        assert_eq!(PropValue::List(vec!["Start".into(), "Stop".into()]).as_text(), "Start, Stop");
        assert_eq!(PropValue::Str("x".into()).as_str(), Some("x"));
        assert_eq!(PropValue::Int(1).as_str(), None);
    }

    #[test]
    fn node_id_display() {
        assert_eq!(Est::new().root().to_string(), "n0");
    }
}
