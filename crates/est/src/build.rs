//! AST → EST builder: the "generic parser output" half of the paper's
//! two-stage compiler (Fig 6).
//!
//! The builder resolves every name against the [`SymbolTable`], computes
//! repository IDs (`IDL:Heidi/A:1.0`), and attaches the properties the
//! template engine consumes. Source order of members is preserved in the
//! child vector; *grouping* (Fig 7) is provided by the EST's kind-filtered
//! list queries.

use crate::node::{Est, NodeId, PropValue};
use crate::symbols::{Symbol, SymbolTable};
use crate::types::{describe, flat_name};
use heidl_idl::ast::*;
use heidl_idl::expr::{self, ConstValue, NameResolver};
use heidl_idl::span::Span;
use std::collections::HashMap;
use std::error::Error;
use std::fmt;

/// An error produced while building the EST (unresolved names, mostly).
#[derive(Debug, Clone, PartialEq)]
pub struct BuildError {
    message: String,
    span: Span,
}

impl BuildError {
    fn new(message: impl Into<String>, span: Span) -> Self {
        BuildError { message: message.into(), span }
    }

    /// The human-readable message.
    pub fn message(&self) -> &str {
        &self.message
    }

    /// Where in the IDL source the problem lies.
    pub fn span(&self) -> Span {
        self.span
    }
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.span.start, self.message)
    }
}

impl Error for BuildError {}

/// Builds the EST for a parsed specification.
///
/// ```
/// let spec = heidl_idl::parse(heidl_idl::FIG3_IDL)?;
/// let est = heidl_est::build(&spec)?;
/// let a = est.find("Interface", "A").unwrap();
/// assert_eq!(est.prop(a, "repoId").unwrap().as_text(), "IDL:Heidi/A:1.0");
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
///
/// # Errors
///
/// Returns a [`BuildError`] when the specification is semantically
/// ill-formed (see [`check::validate`](crate::check::validate) for the
/// enforced rules — the first diagnostic is returned), when a referenced
/// name does not resolve, or when a constant expression cannot be
/// evaluated.
pub fn build(spec: &Specification) -> Result<Est, BuildError> {
    if let Some(first) = crate::check::validate(spec).into_iter().next() {
        return Err(BuildError::new(first.message().to_owned(), first.span()));
    }
    let table = SymbolTable::build(spec);
    let mut b = Builder { est: Est::new(), table, scope: Vec::new(), bases: HashMap::new() };
    b.collect_bases(&spec.definitions);
    let root = b.est.root();
    b.definitions(&spec.definitions, root)?;
    Ok(b.est)
}

struct Builder {
    est: Est,
    table: SymbolTable,
    scope: Vec<String>,
    /// Interface flat name → direct base flat names (for flattening).
    bases: HashMap<String, Vec<String>>,
}

impl Builder {
    fn repo_id(&self, name: &str) -> String {
        let mut path = self.scope.clone();
        path.push(name.to_owned());
        format!("IDL:{}:1.0", path.join("/"))
    }

    fn flat(&self, name: &str) -> String {
        let mut path = self.scope.clone();
        path.push(name.to_owned());
        flat_name(&path)
    }

    fn scoped(&self, name: &str) -> String {
        let mut path = self.scope.clone();
        path.push(name.to_owned());
        path.join("::")
    }

    /// Pre-pass: record every interface's direct bases as flat names so
    /// interfaces can later expose a transitively flattened base list.
    fn collect_bases(&mut self, defs: &[Definition]) {
        for def in defs {
            match def {
                Definition::Module(m) => {
                    self.scope.push(m.name.text.clone());
                    self.collect_bases(&m.definitions);
                    self.scope.pop();
                }
                Definition::Interface(i) => {
                    let scoped = self.scoped(&i.name.text);
                    let direct: Vec<String> = i
                        .bases
                        .iter()
                        .filter_map(|b| {
                            self.table.resolve(b, &self.scope).map(|(path, _)| path.join("::"))
                        })
                        .collect();
                    self.bases.insert(scoped, direct);
                }
                _ => {}
            }
        }
    }

    /// Depth-first, left-to-right transitive bases with duplicates removed
    /// (the order the paper prescribes for multi-inheritance dispatch).
    fn flattened_bases(&self, scoped: &str) -> Vec<String> {
        let mut out = Vec::new();
        self.flatten_into(scoped, &mut out);
        out
    }

    fn flatten_into(&self, scoped: &str, out: &mut Vec<String>) {
        if let Some(direct) = self.bases.get(scoped) {
            for b in direct {
                if !out.contains(b) {
                    out.push(b.clone());
                    self.flatten_into(b, out);
                }
            }
        }
    }

    fn resolve_flat(&self, name: &ScopedName) -> Result<String, BuildError> {
        self.table
            .resolve(name, &self.scope)
            .map(|(path, _)| flat_name(&path))
            .ok_or_else(|| BuildError::new(format!("unresolved name `{name}`"), name.span))
    }

    fn resolve_scoped(&self, name: &ScopedName) -> Result<String, BuildError> {
        self.table
            .resolve(name, &self.scope)
            .map(|(path, _)| path.join("::"))
            .ok_or_else(|| BuildError::new(format!("unresolved name `{name}`"), name.span))
    }

    fn type_props(
        &mut self,
        node: NodeId,
        desc_key: &str,
        ty: &Type,
        span: Span,
    ) -> Result<(), BuildError> {
        let info = describe(ty, &self.table, &self.scope)
            .map_err(|e| BuildError::new(e.to_string(), span))?;
        self.est.add_prop(node, desc_key, info.desc);
        self.est.add_prop(node, "type", info.category);
        self.est.add_prop(node, "typeName", info.type_name);
        self.est.add_prop(node, "IsVariable", info.is_variable);
        Ok(())
    }

    /// Canonical text of a constant expression: `"0"`, `"TRUE"`, `"'c'"`,
    /// `"\"s\""`, `"enum:Heidi_Start"`, `"0.5"`.
    fn const_text(&self, e: &ConstExpr, span: Span) -> Result<String, BuildError> {
        let resolver = Resolver { table: &self.table, scope: &self.scope };
        let v = expr::eval(e, &resolver).map_err(|m| BuildError::new(m, span))?;
        Ok(match v {
            ConstValue::Int(v) => v.to_string(),
            ConstValue::Float(v) => {
                if v.fract() == 0.0 && v.is_finite() {
                    format!("{v:.1}")
                } else {
                    v.to_string()
                }
            }
            ConstValue::Bool(true) => "TRUE".to_owned(),
            ConstValue::Bool(false) => "FALSE".to_owned(),
            ConstValue::Char(c) => format!("'{c}'"),
            ConstValue::Str(s) => format!("\"{s}\""),
            ConstValue::Enum(n) => n,
        })
    }

    fn definitions(&mut self, defs: &[Definition], parent: NodeId) -> Result<(), BuildError> {
        for def in defs {
            match def {
                Definition::Module(m) => self.module(m, parent)?,
                Definition::Interface(i) => self.interface(i, parent)?,
                Definition::ForwardInterface(fwd) => {
                    let n = self.est.add_node(fwd.name.text.clone(), "Forward", parent);
                    self.est.add_prop(n, "forwardName", self.scoped(&fwd.name.text));
                    self.est.add_prop(n, "repoId", self.repo_id(&fwd.name.text));
                }
                Definition::TypeDef(t) => self.typedef(t, parent)?,
                Definition::Struct(s) => {
                    let n = self.est.add_node(s.name.text.clone(), "Struct", parent);
                    self.est.add_prop(n, "structName", self.scoped(&s.name.text));
                    self.est.add_prop(n, "repoId", self.repo_id(&s.name.text));
                    self.est.add_prop(n, "IsVariable", true);
                    self.fields(&s.members, n, s.span)?;
                }
                Definition::Union(u) => self.union(u, parent)?,
                Definition::Enum(e) => {
                    let n = self.est.add_node(e.name.text.clone(), "Enum", parent);
                    self.est.add_prop(n, "enumName", self.scoped(&e.name.text));
                    self.est.add_prop(n, "repoId", self.repo_id(&e.name.text));
                    let members: Vec<String> =
                        e.enumerators.iter().map(|m| m.text.clone()).collect();
                    self.est.add_prop(n, "members", PropValue::List(members));
                    // One child per enumerator so templates can iterate
                    // `enumMemberList` with per-member values.
                    for (i, en) in e.enumerators.iter().enumerate() {
                        let m = self.est.add_node(en.text.clone(), "EnumMember", n);
                        self.est.add_prop(m, "memberName", en.text.clone());
                        self.est.add_prop(m, "memberValue", i as i64);
                    }
                }
                Definition::Const(c) => {
                    let n = self.est.add_node(c.name.text.clone(), "Const", parent);
                    self.est.add_prop(n, "constName", self.scoped(&c.name.text));
                    self.est.add_prop(n, "repoId", self.repo_id(&c.name.text));
                    self.type_props(n, "constType", &c.ty, c.span)?;
                    let value = self.const_text(&c.value, c.span)?;
                    self.est.add_prop(n, "value", value);
                }
                Definition::Exception(e) => {
                    let n = self.est.add_node(e.name.text.clone(), "Exception", parent);
                    self.est.add_prop(n, "exceptionName", self.scoped(&e.name.text));
                    self.est.add_prop(n, "repoId", self.repo_id(&e.name.text));
                    self.fields(&e.members, n, e.span)?;
                }
            }
        }
        Ok(())
    }

    fn module(&mut self, m: &Module, parent: NodeId) -> Result<(), BuildError> {
        let n = self.est.add_node(m.name.text.clone(), "Module", parent);
        self.est.add_prop(n, "moduleName", self.scoped(&m.name.text));
        self.est.add_prop(n, "repoId", self.repo_id(&m.name.text));
        self.scope.push(m.name.text.clone());
        let r = self.definitions(&m.definitions, n);
        self.scope.pop();
        r
    }

    fn interface(&mut self, i: &Interface, parent: NodeId) -> Result<(), BuildError> {
        let n = self.est.add_node(i.name.text.clone(), "Interface", parent);
        let scoped = self.scoped(&i.name.text);
        self.est.add_prop(n, "interfaceName", scoped.clone());
        self.est.add_prop(n, "flatName", self.flat(&i.name.text));
        self.est.add_prop(n, "localName", i.name.text.clone());
        self.est.add_prop(n, "scopedName", scoped.clone());
        self.est.add_prop(n, "repoId", self.repo_id(&i.name.text));
        self.est.add_prop(n, "hasBases", !i.bases.is_empty());
        // Fig 8: the first base is recorded as `Parent` (flat spelling,
        // exactly as the paper's generated Perl shows); empty without bases
        // so templates can test it.
        match i.bases.first() {
            Some(first) => {
                let base_flat = self.resolve_flat(first)?;
                self.est.add_prop(n, "Parent", base_flat);
            }
            None => self.est.add_prop(n, "Parent", ""),
        }
        for base in &i.bases {
            let base_scoped = self.resolve_scoped(base)?;
            let b = self.est.add_node(base.last().to_owned(), "Inherit", n);
            self.est.add_prop(b, "inheritedName", base_scoped);
            self.est.add_prop(b, "scopedName", base.to_string());
        }
        let flattened = self.flattened_bases(&scoped);
        self.est.add_prop(n, "flattenedBases", PropValue::List(flattened));

        let iface_repo_prefix = {
            let mut path = self.scope.clone();
            path.push(i.name.text.clone());
            path.join("/")
        };
        for m in &i.members {
            match m {
                Member::Operation(op) => self.operation(op, n, &iface_repo_prefix)?,
                Member::Attribute(a) => {
                    let an = self.est.add_node(a.name.text.clone(), "Attribute", n);
                    self.est.add_prop(an, "attributeName", a.name.text.clone());
                    self.est.add_prop(
                        an,
                        "attributeQualifier",
                        if a.readonly { "readonly" } else { "" },
                    );
                    self.est.add_prop(
                        an,
                        "repoId",
                        format!("IDL:{}/{}:1.0", iface_repo_prefix, a.name.text),
                    );
                    self.type_props(an, "attributeType", &a.ty, a.span)?;
                    self.annotation_props(an, &a.annotations);
                }
            }
        }
        Ok(())
    }

    fn operation(
        &mut self,
        op: &Operation,
        parent: NodeId,
        iface_repo_prefix: &str,
    ) -> Result<(), BuildError> {
        let n = self.est.add_node(op.name.text.clone(), "Operation", parent);
        self.est.add_prop(n, "methodName", op.name.text.clone());
        // `oneway` merges the keyword and the `@oneway` annotation: templates
        // see one truth regardless of which spelling the IDL used.
        self.est.add_prop(n, "oneway", op.oneway || op.annotation("oneway").is_some());
        self.annotation_props(n, &op.annotations);
        self.est.add_prop(n, "repoId", format!("IDL:{}/{}:1.0", iface_repo_prefix, op.name.text));
        let info = describe(&op.return_type, &self.table, &self.scope)
            .map_err(|e| BuildError::new(e.to_string(), op.span))?;
        self.est.add_prop(n, "returnType", info.desc);
        self.est.add_prop(n, "type", info.category);
        self.est.add_prop(n, "typeName", info.type_name);
        self.est.add_prop(n, "paramCount", op.params.len() as i64);
        let names: Vec<String> = op.params.iter().map(|p| p.name.text.clone()).collect();
        self.est.add_prop(n, "paramNames", PropValue::List(names));
        for (pos, p) in op.params.iter().enumerate() {
            let pn = self.est.add_node(p.name.text.clone(), "Param", n);
            self.est.add_prop(pn, "paramName", p.name.text.clone());
            // Fig 8 calls the direction property `getType`.
            self.est.add_prop(pn, "getType", p.direction.as_str());
            self.est.add_prop(pn, "direction", p.direction.as_str());
            self.est.add_prop(pn, "position", pos as i64);
            self.type_props(pn, "paramType", &p.ty, op.span)?;
            let default = match &p.default {
                Some(e) => self.const_text(e, op.span)?,
                None => String::new(),
            };
            self.est.add_prop(pn, "defaultParam", default);
        }
        for r in &op.raises {
            let scoped = self.resolve_scoped(r)?;
            let rn = self.est.add_node(r.last().to_owned(), "Raises", n);
            self.est.add_prop(rn, "raisesName", scoped);
            self.est.add_prop(rn, "scopedName", r.to_string());
        }
        Ok(())
    }

    /// QoS annotation properties. Always present — templates `-map` over
    /// them, and a missing property is a template *run error* — so every
    /// Operation/Attribute node carries the full set with "no annotation"
    /// defaults (`false`/`0`).
    ///
    /// - `idempotent` (Bool): `@idempotent` present.
    /// - `exactlyOnce` (Bool): `@exactly_once` present.
    /// - `deadlineMs` (Int): `@deadline(ms)` argument, `0` = none.
    /// - `cachedTtlMs` (Int): `@cached(ttl_ms)` argument, `0` = none.
    /// - `stream` (Bool): `@stream` present — the stub maps the result to
    ///   an incrementally consumed reply stream.
    /// - `chunkedBytes` (Int): `@chunked(bytes)` argument, `0` = the
    ///   server policy's default chunk size.
    /// - `hasQos` (Bool): any reply-oriented QoS annotation present —
    ///   gates per-call option emission in stub templates.
    /// - `hasSetQos` (Bool): QoS applicable to an attribute *setter*
    ///   (everything but `@cached`; a setter has no result to cache).
    ///
    /// Each annotation additionally becomes an `Annotation` child node
    /// (`annotationName`/`annotationValue`) so templates can iterate
    /// `annotationList` for doc-comments or non-Rust backends.
    fn annotation_props(&mut self, n: NodeId, annotations: &[Annotation]) {
        let idempotent = annotations.iter().any(|a| a.name.text == "idempotent");
        let exactly_once = annotations.iter().any(|a| a.name.text == "exactly_once");
        let arg = |name: &str| {
            annotations.iter().find(|a| a.name.text == name).and_then(|a| a.value).unwrap_or(0)
                as i64
        };
        let deadline_ms = arg("deadline");
        let cached_ttl_ms = arg("cached");
        let stream = annotations.iter().any(|a| a.name.text == "stream");
        let chunked_bytes = arg("chunked");
        self.est.add_prop(n, "idempotent", idempotent);
        self.est.add_prop(n, "exactlyOnce", exactly_once);
        self.est.add_prop(n, "deadlineMs", deadline_ms);
        self.est.add_prop(n, "cachedTtlMs", cached_ttl_ms);
        self.est.add_prop(n, "stream", stream);
        self.est.add_prop(n, "chunkedBytes", chunked_bytes);
        self.est.add_prop(
            n,
            "hasQos",
            idempotent || exactly_once || deadline_ms > 0 || cached_ttl_ms > 0,
        );
        self.est.add_prop(n, "hasSetQos", idempotent || exactly_once || deadline_ms > 0);
        for a in annotations {
            let an = self.est.add_node(a.name.text.clone(), "Annotation", n);
            self.est.add_prop(an, "annotationName", a.name.text.clone());
            self.est.add_prop(an, "annotationValue", a.value.unwrap_or(0) as i64);
        }
    }

    fn typedef(&mut self, t: &TypeDef, parent: NodeId) -> Result<(), BuildError> {
        let n = self.est.add_node(t.name.text.clone(), "Alias", parent);
        self.est.add_prop(n, "aliasName", self.scoped(&t.name.text));
        self.est.add_prop(n, "repoId", self.repo_id(&t.name.text));
        let info = describe(&t.ty, &self.table, &self.scope)
            .map_err(|e| BuildError::new(e.to_string(), t.span))?;
        // Fig 8: `AddProp("type", "sequence")` on the alias itself.
        self.est.add_prop(n, "type", info.category.clone());
        self.est.add_prop(n, "typeName", info.type_name.clone());
        self.est.add_prop(n, "aliasedType", info.desc.clone());
        self.est.add_prop(n, "IsVariable", info.is_variable);
        let dims: Vec<String> = t.array_dims.iter().map(|d| d.to_string()).collect();
        self.est.add_prop(n, "arrayDims", PropValue::List(dims));
        // Fig 8: a sequence alias carries an anonymous Sequence child node
        // describing the element type.
        if let Type::Sequence(elem, bound) = &t.ty {
            let sn = self.est.add_node("", "Sequence", n);
            let einfo = describe(elem, &self.table, &self.scope)
                .map_err(|e| BuildError::new(e.to_string(), t.span))?;
            self.est.add_prop(sn, "type", einfo.category);
            self.est.add_prop(sn, "typeName", einfo.type_name);
            self.est.add_prop(sn, "elemType", einfo.desc);
            self.est.add_prop(sn, "IsVariable", einfo.is_variable);
            if let Some(b) = bound {
                self.est.add_prop(sn, "bound", *b as i64);
            }
        }
        Ok(())
    }

    fn union(&mut self, u: &UnionDef, parent: NodeId) -> Result<(), BuildError> {
        let n = self.est.add_node(u.name.text.clone(), "Union", parent);
        self.est.add_prop(n, "unionName", self.scoped(&u.name.text));
        self.est.add_prop(n, "repoId", self.repo_id(&u.name.text));
        self.est.add_prop(n, "IsVariable", true);
        self.type_props(n, "switchType", &u.discriminator, u.span)?;
        for case in &u.cases {
            let cn = self.est.add_node(case.name.text.clone(), "Case", n);
            self.est.add_prop(cn, "caseName", case.name.text.clone());
            self.type_props(cn, "caseType", &case.ty, u.span)?;
            let labels: Vec<String> = case
                .labels
                .iter()
                .map(|l| match l {
                    CaseLabel::Default => Ok("default".to_owned()),
                    CaseLabel::Expr(e) => self.const_text(e, u.span),
                })
                .collect::<Result<_, _>>()?;
            self.est.add_prop(cn, "labels", PropValue::List(labels));
        }
        Ok(())
    }

    fn fields(
        &mut self,
        members: &[StructMember],
        parent: NodeId,
        span: Span,
    ) -> Result<(), BuildError> {
        for f in members {
            let fnode = self.est.add_node(f.name.text.clone(), "Field", parent);
            self.est.add_prop(fnode, "fieldName", f.name.text.clone());
            self.type_props(fnode, "fieldType", &f.ty, span)?;
            let dims: Vec<String> = f.array_dims.iter().map(|d| d.to_string()).collect();
            self.est.add_prop(fnode, "arrayDims", PropValue::List(dims));
        }
        Ok(())
    }
}

/// Resolves names in constant expressions against the symbol table.
struct Resolver<'a> {
    table: &'a SymbolTable,
    scope: &'a [String],
}

impl NameResolver for Resolver<'_> {
    fn resolve(&self, name: &ScopedName) -> Option<ConstValue> {
        let (path, sym) = self.table.resolve(name, self.scope)?;
        match sym {
            Symbol::Enumerator(value_path) => {
                Some(ConstValue::Enum(format!("enum:{}", value_path.join("::"))))
            }
            Symbol::Const(e) => {
                // Evaluate the constant's own expression in its enclosing
                // scope so nested named constants resolve correctly.
                let enclosing = &path[..path.len() - 1];
                let inner = Resolver { table: self.table, scope: enclosing };
                expr::eval(e, &inner).ok()
            }
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use heidl_idl::parse;

    fn fig3_est() -> Est {
        build(&parse(heidl_idl::FIG3_IDL).unwrap()).unwrap()
    }

    #[test]
    fn fig8_module_and_repo_ids() {
        let est = fig3_est();
        let m = est.find("Module", "Heidi").unwrap();
        assert_eq!(est.prop(m, "repoId").unwrap().as_text(), "IDL:Heidi:1.0");
        let a = est.find("Interface", "A").unwrap();
        assert_eq!(est.prop(a, "repoId").unwrap().as_text(), "IDL:Heidi/A:1.0");
        let f = est
            .children_of_kind(a, "Operation")
            .into_iter()
            .find(|&o| est.node(o).name == "f")
            .unwrap();
        assert_eq!(est.prop(f, "repoId").unwrap().as_text(), "IDL:Heidi/A/f:1.0");
    }

    #[test]
    fn fig8_enum_members_prop() {
        let est = fig3_est();
        let e = est.find("Enum", "Status").unwrap();
        assert_eq!(
            est.prop(e, "members").unwrap(),
            PropValue::List(vec!["Start".into(), "Stop".into()])
        );
        assert_eq!(est.prop(e, "enumName").unwrap().as_text(), "Heidi::Status");
    }

    #[test]
    fn fig8_sequence_alias_child() {
        let est = fig3_est();
        let alias = est.find("Alias", "SSequence").unwrap();
        assert_eq!(est.prop(alias, "type").unwrap().as_text(), "sequence");
        let seqs = est.children_of_kind(alias, "Sequence");
        assert_eq!(seqs.len(), 1);
        let s = seqs[0];
        assert_eq!(est.prop(s, "type").unwrap().as_text(), "objref");
        assert_eq!(est.prop(s, "typeName").unwrap().as_text(), "Heidi_S");
        assert_eq!(est.prop(s, "IsVariable").unwrap(), PropValue::Bool(true));
    }

    #[test]
    fn fig8_interface_parent_prop() {
        let est = fig3_est();
        let a = est.find("Interface", "A").unwrap();
        assert_eq!(est.prop(a, "Parent").unwrap().as_text(), "Heidi_S");
    }

    #[test]
    fn fig8_param_props() {
        let est = fig3_est();
        let a = est.find("Interface", "A").unwrap();
        let f = est
            .children_of_kind(a, "Operation")
            .into_iter()
            .find(|&o| est.node(o).name == "f")
            .unwrap();
        let params = est.children_of_kind(f, "Param");
        assert_eq!(params.len(), 1);
        let p = params[0];
        assert_eq!(est.prop(p, "type").unwrap().as_text(), "objref");
        assert_eq!(est.prop(p, "typeName").unwrap().as_text(), "Heidi_A");
        assert_eq!(est.prop(p, "getType").unwrap().as_text(), "in");
    }

    #[test]
    fn fig7_grouping_attribute_between_methods() {
        // In Fig 3 the `button` attribute sits between methods q and s;
        // the EST's grouped lists keep methods contiguous.
        let est = fig3_est();
        let a = est.find("Interface", "A").unwrap();
        let methods: Vec<String> = est
            .children_of_kind(a, "Operation")
            .into_iter()
            .map(|o| est.node(o).name.clone())
            .collect();
        assert_eq!(methods, ["f", "g", "p", "q", "s", "t"]);
        let attrs: Vec<String> = est
            .children_of_kind(a, "Attribute")
            .into_iter()
            .map(|o| est.node(o).name.clone())
            .collect();
        assert_eq!(attrs, ["button"]);
    }

    #[test]
    fn default_params_canonicalize() {
        let est = fig3_est();
        let a = est.find("Interface", "A").unwrap();
        let defaults: Vec<(String, String)> = est
            .children_of_kind(a, "Operation")
            .into_iter()
            .flat_map(|o| est.children_of_kind(o, "Param"))
            .map(|p| (est.node(p).name.clone(), est.prop(p, "defaultParam").unwrap().as_text()))
            .collect();
        let get =
            |name: &str| defaults.iter().find(|(n, _)| n == name).map(|(_, d)| d.clone()).unwrap();
        assert_eq!(get("a"), "");
        assert_eq!(get("l"), "0");
        assert_eq!(get("b"), "TRUE");
        // q's parameter default `Heidi::Start` resolves to the enumerator.
        let q_default =
            defaults.iter().filter(|(n, _)| n == "s").map(|(_, d)| d.clone()).collect::<Vec<_>>();
        assert!(q_default.contains(&"enum:Heidi::Start".to_owned()), "{q_default:?}");
    }

    #[test]
    fn incopy_direction_prop() {
        let est = fig3_est();
        let a = est.find("Interface", "A").unwrap();
        let g = est
            .children_of_kind(a, "Operation")
            .into_iter()
            .find(|&o| est.node(o).name == "g")
            .unwrap();
        let p = est.children_of_kind(g, "Param")[0];
        assert_eq!(est.prop(p, "getType").unwrap().as_text(), "incopy");
    }

    #[test]
    fn readonly_attribute_qualifier() {
        let est = fig3_est();
        let a = est.find("Interface", "A").unwrap();
        let attr = est.children_of_kind(a, "Attribute")[0];
        assert_eq!(est.prop(attr, "attributeQualifier").unwrap().as_text(), "readonly");
        assert_eq!(est.prop(attr, "type").unwrap().as_text(), "enum");
        assert_eq!(est.prop(attr, "typeName").unwrap().as_text(), "Heidi_Status");
    }

    #[test]
    fn flattened_bases_are_transitive_and_deduped() {
        let src = r#"
            interface A {};
            interface B : A {};
            interface C : A {};
            interface D : B, C {};
        "#;
        let est = build(&parse(src).unwrap()).unwrap();
        let d = est.find("Interface", "D").unwrap();
        let PropValue::List(bases) = est.prop(d, "flattenedBases").unwrap() else { panic!() };
        assert_eq!(bases, ["B", "A", "C"]);
        let inherits = est.children_of_kind(d, "Inherit");
        assert_eq!(inherits.len(), 2, "direct bases only");
    }

    #[test]
    fn unresolved_base_is_an_error() {
        let err = build(&parse("interface A : Missing {};").unwrap()).unwrap_err();
        assert!(err.message().contains("Missing"), "{err}");
    }

    #[test]
    fn unresolved_param_type_is_an_error() {
        let err = build(&parse("interface A { void f(in Nope x); };").unwrap()).unwrap_err();
        assert!(err.message().contains("Nope"), "{err}");
    }

    #[test]
    fn const_value_inlining() {
        let src = "const long BASE = 40; const long MAX = BASE + 2; \
                   interface I { void f(in long x = MAX); };";
        let est = build(&parse(src).unwrap()).unwrap();
        let c = est.find("Const", "MAX").unwrap();
        assert_eq!(est.prop(c, "value").unwrap().as_text(), "42");
        let i = est.find("Interface", "I").unwrap();
        let f = est.children_of_kind(i, "Operation")[0];
        let p = est.children_of_kind(f, "Param")[0];
        assert_eq!(est.prop(p, "defaultParam").unwrap().as_text(), "42");
    }

    #[test]
    fn exception_and_raises() {
        let src = "exception Broken { string why; }; \
                   interface I { void f() raises (Broken); };";
        let est = build(&parse(src).unwrap()).unwrap();
        let e = est.find("Exception", "Broken").unwrap();
        let fields = est.children_of_kind(e, "Field");
        assert_eq!(fields.len(), 1);
        assert_eq!(est.prop(fields[0], "type").unwrap().as_text(), "string");
        let i = est.find("Interface", "I").unwrap();
        let f = est.children_of_kind(i, "Operation")[0];
        let raises = est.children_of_kind(f, "Raises");
        assert_eq!(raises.len(), 1);
        assert_eq!(est.prop(raises[0], "raisesName").unwrap().as_text(), "Broken");
    }

    #[test]
    fn union_cases_and_labels() {
        let src = "enum E { X, Y }; union U switch (E) { case X: long a; default: float b; };";
        let est = build(&parse(src).unwrap()).unwrap();
        let u = est.find("Union", "U").unwrap();
        assert_eq!(est.prop(u, "switchType").unwrap().as_text(), "enum:E");
        let cases = est.children_of_kind(u, "Case");
        assert_eq!(cases.len(), 2);
        assert_eq!(est.prop(cases[0], "labels").unwrap(), PropValue::List(vec!["enum:X".into()]));
        assert_eq!(est.prop(cases[1], "labels").unwrap(), PropValue::List(vec!["default".into()]));
    }

    #[test]
    fn oneway_prop() {
        let est = build(&parse("interface I { oneway void ping(); };").unwrap()).unwrap();
        let i = est.find("Interface", "I").unwrap();
        let op = est.children_of_kind(i, "Operation")[0];
        assert_eq!(est.prop(op, "oneway").unwrap(), PropValue::Bool(true));
    }

    #[test]
    fn annotation_props_default_to_no_qos() {
        // Every Operation/Attribute node must carry the QoS property set
        // even without annotations: templates -map them unconditionally.
        let est = build(&parse("interface I { long f(); attribute long x; };").unwrap()).unwrap();
        let i = est.find("Interface", "I").unwrap();
        let op = est.children_of_kind(i, "Operation")[0];
        let attr = est.children_of_kind(i, "Attribute")[0];
        for n in [op, attr] {
            assert_eq!(est.prop(n, "idempotent").unwrap(), PropValue::Bool(false));
            assert_eq!(est.prop(n, "deadlineMs").unwrap(), PropValue::Int(0));
            assert_eq!(est.prop(n, "cachedTtlMs").unwrap(), PropValue::Int(0));
            assert_eq!(est.prop(n, "hasQos").unwrap(), PropValue::Bool(false));
            assert_eq!(est.prop(n, "hasSetQos").unwrap(), PropValue::Bool(false));
            assert!(est.children_of_kind(n, "Annotation").is_empty());
        }
    }

    #[test]
    fn annotation_props_propagate_to_operations() {
        let src = "interface I {
            @idempotent @deadline(50) long state();
            @cached(200) long total();
            @oneway void fire();
        };";
        let est = build(&parse(src).unwrap()).unwrap();
        let i = est.find("Interface", "I").unwrap();
        let op = |name: &str| {
            est.children_of_kind(i, "Operation")
                .into_iter()
                .find(|&o| est.node(o).name == name)
                .unwrap()
        };

        let state = op("state");
        assert_eq!(est.prop(state, "idempotent").unwrap(), PropValue::Bool(true));
        assert_eq!(est.prop(state, "deadlineMs").unwrap(), PropValue::Int(50));
        assert_eq!(est.prop(state, "cachedTtlMs").unwrap(), PropValue::Int(0));
        assert_eq!(est.prop(state, "hasQos").unwrap(), PropValue::Bool(true));
        let anns = est.children_of_kind(state, "Annotation");
        assert_eq!(anns.len(), 2);
        assert_eq!(est.prop(anns[0], "annotationName").unwrap().as_text(), "idempotent");
        assert_eq!(est.prop(anns[1], "annotationName").unwrap().as_text(), "deadline");
        assert_eq!(est.prop(anns[1], "annotationValue").unwrap(), PropValue::Int(50));

        let total = op("total");
        assert_eq!(est.prop(total, "cachedTtlMs").unwrap(), PropValue::Int(200));
        assert_eq!(est.prop(total, "hasQos").unwrap(), PropValue::Bool(true));
        // @cached alone does not make a setter-style QoS set.
        assert_eq!(est.prop(total, "hasSetQos").unwrap(), PropValue::Bool(false));

        // `@oneway` merges into the same `oneway` prop the keyword sets.
        let fire = op("fire");
        assert_eq!(est.prop(fire, "oneway").unwrap(), PropValue::Bool(true));
        assert_eq!(est.prop(fire, "hasQos").unwrap(), PropValue::Bool(false));
    }

    #[test]
    fn stream_props_propagate_to_operations() {
        let src = "interface I {
            @stream @chunked(65536) string pull();
            @stream string tail();
            long f();
        };";
        let est = build(&parse(src).unwrap()).unwrap();
        let i = est.find("Interface", "I").unwrap();
        let op = |name: &str| {
            est.children_of_kind(i, "Operation")
                .into_iter()
                .find(|&o| est.node(o).name == name)
                .unwrap()
        };

        let pull = op("pull");
        assert_eq!(est.prop(pull, "stream").unwrap(), PropValue::Bool(true));
        assert_eq!(est.prop(pull, "chunkedBytes").unwrap(), PropValue::Int(65536));
        // Streaming shapes the reply wire format, not the retry/QoS options
        // block, so it must not flip `hasQos`.
        assert_eq!(est.prop(pull, "hasQos").unwrap(), PropValue::Bool(false));

        // `@stream` without `@chunked` leaves the chunk size to the server.
        let tail = op("tail");
        assert_eq!(est.prop(tail, "stream").unwrap(), PropValue::Bool(true));
        assert_eq!(est.prop(tail, "chunkedBytes").unwrap(), PropValue::Int(0));

        let f = op("f");
        assert_eq!(est.prop(f, "stream").unwrap(), PropValue::Bool(false));
        assert_eq!(est.prop(f, "chunkedBytes").unwrap(), PropValue::Int(0));
    }

    #[test]
    fn annotation_props_propagate_to_attributes() {
        let src = "interface I { @idempotent @deadline(25) attribute long level; };";
        let est = build(&parse(src).unwrap()).unwrap();
        let i = est.find("Interface", "I").unwrap();
        let attr = est.children_of_kind(i, "Attribute")[0];
        assert_eq!(est.prop(attr, "idempotent").unwrap(), PropValue::Bool(true));
        assert_eq!(est.prop(attr, "deadlineMs").unwrap(), PropValue::Int(25));
        assert_eq!(est.prop(attr, "hasQos").unwrap(), PropValue::Bool(true));
        assert_eq!(est.prop(attr, "hasSetQos").unwrap(), PropValue::Bool(true));
        assert_eq!(est.children_of_kind(attr, "Annotation").len(), 2);
    }

    #[test]
    fn annotation_semantic_errors_surface_via_build() {
        let err =
            build(&parse("interface I { @cached(5) oneway void f(); };").unwrap()).unwrap_err();
        assert!(err.message().contains("@cached"), "{err}");
    }

    #[test]
    fn struct_fields_with_arrays() {
        let est = build(&parse("struct P { long xs[4]; string name; };").unwrap()).unwrap();
        let p = est.find("Struct", "P").unwrap();
        let fields = est.children_of_kind(p, "Field");
        assert_eq!(est.prop(fields[0], "arrayDims").unwrap(), PropValue::List(vec!["4".into()]));
        assert_eq!(est.prop(fields[1], "type").unwrap().as_text(), "string");
    }
}
