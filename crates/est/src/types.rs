//! Type descriptors: the single-string encoding of IDL types stored in EST
//! properties.
//!
//! The paper's EST stores, per typed entity, a `type` property (a category
//! such as `"objref"` or `"sequence"`) and a `typeName` property (the flat
//! name, e.g. `"Heidi_S"`) — see Fig 8. Template map functions, however,
//! receive a *single* string (`-map paramType CPP::MapType`). The descriptor
//! is that string: a compact grammar carrying category, name and bounds:
//!
//! ```text
//! long | boolean | ... | any                  primitives
//! string | string<8>                          strings
//! objref:Heidi::S                             interface reference
//! enum:Heidi::Status                          enum type
//! struct:M::Point | union:M::U | except:M::E  aggregates
//! alias:M::Meters | valias:Heidi::SSequence   typedef (fixed / variable target)
//! sequence<objref:Heidi::S> | sequence<long,4>
//! ```
//!
//! Descriptor names are `::`-scoped so map functions can split them
//! unambiguously (module and member names may themselves contain `_`).
//! The *`typeName` property* on EST nodes keeps the paper's flat
//! `Heidi_S` spelling for Fig 8 parity. Aliases carry their target's
//! variability in the category (`alias` = fixed-size target, `valias` =
//! variable) because language mappings differ on exactly that — Fig 3 maps
//! the sequence alias to `HdSSequence*` but would map a `typedef long`
//! by value.
//!
//! Descriptors are parseable ([`TypeDesc::parse`]) so language backends can
//! destructure nested sequences.

use crate::symbols::{Symbol, SymbolTable};
use heidl_idl::ast::{ScopedName, Type};
use std::fmt;

/// A parsed type descriptor.
#[derive(Debug, Clone, PartialEq)]
pub enum TypeDesc {
    /// A primitive or `any`, identified by keyword (e.g. `"long"`).
    Primitive(String),
    /// `string` with optional bound.
    String(Option<u64>),
    /// A named type: category (`objref`, `enum`, `struct`, `union`,
    /// `except`, `alias`) and the flat name.
    Named(String, String),
    /// A sequence of an element descriptor with optional bound.
    Sequence(Box<TypeDesc>, Option<u64>),
}

impl TypeDesc {
    /// Parses a descriptor string produced by [`describe`].
    ///
    /// Returns `None` on malformed input.
    pub fn parse(s: &str) -> Option<TypeDesc> {
        let s = s.trim();
        if let Some(rest) = s.strip_prefix("sequence<") {
            let inner = rest.strip_suffix('>')?;
            // A bound is a trailing `,N` at nesting depth zero.
            let mut depth = 0usize;
            let mut split = None;
            for (i, c) in inner.char_indices() {
                match c {
                    '<' => depth += 1,
                    '>' => depth = depth.saturating_sub(1),
                    ',' if depth == 0 => split = Some(i),
                    _ => {}
                }
            }
            return match split {
                Some(i) => {
                    let elem = TypeDesc::parse(&inner[..i])?;
                    let bound: u64 = inner[i + 1..].trim().parse().ok()?;
                    Some(TypeDesc::Sequence(Box::new(elem), Some(bound)))
                }
                None => Some(TypeDesc::Sequence(Box::new(TypeDesc::parse(inner)?), None)),
            };
        }
        if s == "string" {
            return Some(TypeDesc::String(None));
        }
        if let Some(rest) = s.strip_prefix("string<") {
            let n: u64 = rest.strip_suffix('>')?.trim().parse().ok()?;
            return Some(TypeDesc::String(Some(n)));
        }
        if let Some((cat, name)) = s.split_once(':') {
            if name.is_empty() || cat.is_empty() || name.starts_with(':') {
                return None;
            }
            return Some(TypeDesc::Named(cat.to_owned(), name.to_owned()));
        }
        match s {
            "void" | "boolean" | "char" | "octet" | "short" | "ushort" | "long" | "ulong"
            | "longlong" | "ulonglong" | "float" | "double" | "any" => {
                Some(TypeDesc::Primitive(s.to_owned()))
            }
            _ => None,
        }
    }

    /// The category keyword: the first word of the descriptor (`"long"`,
    /// `"string"`, `"sequence"`, `"objref"`, ...). This is what the paper's
    /// `type` property holds.
    pub fn category(&self) -> &str {
        match self {
            TypeDesc::Primitive(p) => p,
            TypeDesc::String(_) => "string",
            TypeDesc::Named(cat, _) => cat,
            TypeDesc::Sequence(..) => "sequence",
        }
    }

    /// The `::`-scoped type name for named types, empty otherwise. (The
    /// paper's flat `typeName` property is separate — see [`TypeInfo`].)
    pub fn type_name(&self) -> &str {
        match self {
            TypeDesc::Named(_, name) => name,
            _ => "",
        }
    }
}

impl fmt::Display for TypeDesc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TypeDesc::Primitive(p) => f.write_str(p),
            TypeDesc::String(None) => f.write_str("string"),
            TypeDesc::String(Some(n)) => write!(f, "string<{n}>"),
            TypeDesc::Named(cat, name) => write!(f, "{cat}:{name}"),
            TypeDesc::Sequence(elem, None) => write!(f, "sequence<{elem}>"),
            TypeDesc::Sequence(elem, Some(n)) => write!(f, "sequence<{elem},{n}>"),
        }
    }
}

/// Information derived from an IDL type for EST properties.
#[derive(Debug, Clone, PartialEq)]
pub struct TypeInfo {
    /// The full descriptor string.
    pub desc: String,
    /// The category (the paper's `type` property).
    pub category: String,
    /// The flat name for named types (the paper's `typeName`), else empty.
    pub type_name: String,
    /// The paper's `IsVariable`: true when the marshaled size is not fixed.
    pub is_variable: bool,
}

/// Joins an absolute symbol path into the paper's flat name (`Heidi_S`).
pub fn flat_name(path: &[String]) -> String {
    path.join("_")
}

/// The error type for descriptor derivation: an unresolved name.
#[derive(Debug, Clone, PartialEq)]
pub struct UnresolvedName(pub String);

impl fmt::Display for UnresolvedName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unresolved type name `{}`", self.0)
    }
}

impl std::error::Error for UnresolvedName {}

/// Derives the [`TypeInfo`] of `ty` as used from within `scope`.
///
/// # Errors
///
/// Returns [`UnresolvedName`] when a scoped name does not resolve — the
/// paper's compiler would likewise reject IDL referencing unknown types.
pub fn describe(
    ty: &Type,
    table: &SymbolTable,
    scope: &[String],
) -> Result<TypeInfo, UnresolvedName> {
    Ok(match ty {
        Type::Void => simple("void", false),
        Type::Boolean => simple("boolean", false),
        Type::Char => simple("char", false),
        Type::Octet => simple("octet", false),
        Type::Short => simple("short", false),
        Type::UShort => simple("ushort", false),
        Type::Long => simple("long", false),
        Type::ULong => simple("ulong", false),
        Type::LongLong => simple("longlong", false),
        Type::ULongLong => simple("ulonglong", false),
        Type::Float => simple("float", false),
        Type::Double => simple("double", false),
        Type::Any => simple("any", true),
        Type::String(None) => TypeInfo {
            desc: "string".into(),
            category: "string".into(),
            type_name: String::new(),
            is_variable: true,
        },
        Type::String(Some(n)) => TypeInfo {
            desc: format!("string<{n}>"),
            category: "string".into(),
            type_name: String::new(),
            is_variable: true,
        },
        Type::Sequence(elem, bound) => {
            let e = describe(elem, table, scope)?;
            let desc = match bound {
                Some(n) => format!("sequence<{},{n}>", e.desc),
                None => format!("sequence<{}>", e.desc),
            };
            TypeInfo {
                desc,
                category: "sequence".into(),
                type_name: e.type_name,
                is_variable: true,
            }
        }
        Type::Named(name) => describe_named(name, table, scope)?,
    })
}

fn simple(kw: &str, is_variable: bool) -> TypeInfo {
    TypeInfo { desc: kw.to_owned(), category: kw.to_owned(), type_name: String::new(), is_variable }
}

fn describe_named(
    name: &ScopedName,
    table: &SymbolTable,
    scope: &[String],
) -> Result<TypeInfo, UnresolvedName> {
    let (path, sym) = table.resolve(name, scope).ok_or_else(|| UnresolvedName(name.to_string()))?;
    let flat = flat_name(&path);
    let scoped = path.join("::");
    let (category, is_variable) = match sym {
        Symbol::Interface => ("objref", true),
        Symbol::Enum => ("enum", false),
        Symbol::Struct => ("struct", true),
        Symbol::Union => ("union", true),
        Symbol::Exception => ("except", true),
        Symbol::Alias(_) => {
            // The alias's own name is kept in the descriptor (backends map
            // it to the typedef'd name), but variability follows the
            // target and is exposed in the category: `alias` vs `valias`.
            let var = table
                .resolve_transparent(name, scope)
                .map(|(p, s)| match s {
                    Symbol::Interface | Symbol::Struct | Symbol::Union | Symbol::Exception => true,
                    Symbol::Alias(t) => alias_target_variable(&t, table, &p),
                    _ => false,
                })
                .unwrap_or(true);
            let category = if var { "valias" } else { "alias" };
            return Ok(TypeInfo {
                desc: format!("{category}:{scoped}"),
                category: category.into(),
                type_name: flat,
                is_variable: var,
            });
        }
        Symbol::Enumerator(_) | Symbol::Const(_) | Symbol::Module => {
            return Err(UnresolvedName(format!("`{name}` is not a type")));
        }
    };
    Ok(TypeInfo {
        desc: format!("{category}:{scoped}"),
        category: category.into(),
        type_name: flat,
        is_variable,
    })
}

/// Variability of a terminal alias target (scope = the alias's own path).
fn alias_target_variable(ty: &Type, table: &SymbolTable, alias_path: &[String]) -> bool {
    let enclosing = &alias_path[..alias_path.len().saturating_sub(1)];
    describe(ty, table, enclosing).map(|i| i.is_variable).unwrap_or(true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use heidl_idl::ast::Type;
    use heidl_idl::parse;

    fn setup() -> SymbolTable {
        SymbolTable::build(&parse(heidl_idl::FIG3_IDL).unwrap())
    }

    fn scope() -> Vec<String> {
        vec!["Heidi".to_owned()]
    }

    #[test]
    fn primitives_describe_as_keywords() {
        let t = setup();
        let info = describe(&Type::Long, &t, &scope()).unwrap();
        assert_eq!(info.desc, "long");
        assert_eq!(info.category, "long");
        assert!(!info.is_variable);
        assert!(info.type_name.is_empty());
    }

    #[test]
    fn interface_reference_is_objref() {
        let t = setup();
        let ty = Type::Named(ScopedName::from_parts(["S"]));
        let info = describe(&ty, &t, &scope()).unwrap();
        assert_eq!(info.desc, "objref:Heidi::S");
        assert_eq!(info.category, "objref");
        assert_eq!(info.type_name, "Heidi_S");
        assert!(info.is_variable);
    }

    #[test]
    fn enum_reference() {
        let t = setup();
        let ty = Type::Named(ScopedName::from_parts(["Status"]));
        let info = describe(&ty, &t, &scope()).unwrap();
        assert_eq!(info.desc, "enum:Heidi::Status");
        assert!(!info.is_variable);
    }

    #[test]
    fn sequence_of_objref_matches_fig8() {
        // Fig 8: the SSequence alias has a Sequence child with
        // type="objref", typeName="Heidi_S", IsVariable=true.
        let t = setup();
        let ty = Type::Sequence(Box::new(Type::Named(ScopedName::from_parts(["S"]))), None);
        let info = describe(&ty, &t, &scope()).unwrap();
        assert_eq!(info.desc, "sequence<objref:Heidi::S>");
        assert_eq!(info.category, "sequence");
        assert_eq!(info.type_name, "Heidi_S");
        assert!(info.is_variable);
    }

    #[test]
    fn alias_reference_keeps_alias_name() {
        let t = setup();
        let ty = Type::Named(ScopedName::from_parts(["SSequence"]));
        let info = describe(&ty, &t, &scope()).unwrap();
        assert_eq!(info.desc, "valias:Heidi::SSequence");
        assert!(info.is_variable, "sequence alias is variable");
    }

    #[test]
    fn alias_of_fixed_type_is_fixed() {
        let t = SymbolTable::build(&parse("typedef long Meters; typedef Meters Depth;").unwrap());
        let ty = Type::Named(ScopedName::from_parts(["Depth"]));
        let info = describe(&ty, &t, &[]).unwrap();
        assert_eq!(info.desc, "alias:Depth");
        assert!(!info.is_variable);
    }

    #[test]
    fn unresolved_name_is_an_error() {
        let t = setup();
        let ty = Type::Named(ScopedName::from_parts(["Nope"]));
        let err = describe(&ty, &t, &scope()).unwrap_err();
        assert!(err.to_string().contains("Nope"));
    }

    #[test]
    fn value_name_is_not_a_type() {
        let t = setup();
        // `Start` is an enumerator, not a type.
        let ty = Type::Named(ScopedName::from_parts(["Start"]));
        assert!(describe(&ty, &t, &scope()).is_err());
    }

    #[test]
    fn descriptor_parse_roundtrip() {
        for s in [
            "long",
            "void",
            "string",
            "string<8>",
            "objref:Heidi::S",
            "enum:Heidi::Status",
            "alias:M::Meters",
            "valias:Heidi::SSequence",
            "sequence<objref:Heidi::S>",
            "sequence<long,4>",
            "sequence<sequence<string<8>>,2>",
        ] {
            let d = TypeDesc::parse(s).unwrap_or_else(|| panic!("parse {s}"));
            assert_eq!(d.to_string(), s);
        }
    }

    #[test]
    fn descriptor_parse_rejects_garbage() {
        assert_eq!(TypeDesc::parse("wat"), None);
        assert_eq!(TypeDesc::parse("sequence<"), None);
        assert_eq!(TypeDesc::parse("string<x>"), None);
        assert_eq!(TypeDesc::parse(":name"), None);
        assert_eq!(TypeDesc::parse("objref:"), None);
    }

    #[test]
    fn nested_sequence_bound_belongs_to_outer() {
        let d = TypeDesc::parse("sequence<sequence<long,2>,4>").unwrap();
        let TypeDesc::Sequence(inner, Some(4)) = d else { panic!() };
        let TypeDesc::Sequence(elem, Some(2)) = *inner else { panic!() };
        assert_eq!(*elem, TypeDesc::Primitive("long".into()));
    }

    #[test]
    fn category_and_type_name_accessors() {
        let d = TypeDesc::parse("objref:Heidi::S").unwrap();
        assert_eq!(d.category(), "objref");
        assert_eq!(d.type_name(), "Heidi::S");
        let d = TypeDesc::parse("sequence<long>").unwrap();
        assert_eq!(d.category(), "sequence");
        assert_eq!(d.type_name(), "");
    }
}
