//! The *EST script*: an executable textual encoding of the EST.
//!
//! The paper's prototype (Fig 8) emits a **Perl program** that rebuilds the
//! EST inside the interpreter (`Ast::New(...)`, `AddProp(...)`), arguing
//! that "evaluating a perl program that directly rebuilds the EST ... is
//! certainly more efficient than parsing an external representation". Our
//! analog is a line-oriented command program with exactly those two
//! operations:
//!
//! ```text
//! # IDL:Heidi/A:1.0
//! new n2 Interface "A" n1
//! prop n2 Parent str "Heidi_S"
//! prop n2 members list "Start","Stop"
//! ```
//!
//! [`encode`] renders a program; [`decode`] "executes" it to rebuild the
//! [`Est`]. Experiment E6 benchmarks decode against a full IDL re-parse.

use crate::node::{Est, EstNode, NodeId, PropValue};

use std::error::Error;
use std::fmt;
use std::fmt::Write as _;

/// An error produced while decoding an EST script.
#[derive(Debug, Clone, PartialEq)]
pub struct ScriptError {
    /// 1-based line number of the offending command.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ScriptError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "script line {}: {}", self.line, self.message)
    }
}

impl Error for ScriptError {}

fn quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            _ => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Renders the EST as a script program (the Fig 8 analog).
///
/// Nodes appear in creation order, each `new` followed by its `prop` lines,
/// with the repository ID echoed as a comment when present (as the paper's
/// generated Perl does).
pub fn encode(est: &Est) -> String {
    let mut out = String::new();
    for (id, node) in est.iter() {
        // decode() creates the root implicitly, but its properties (if
        // any) still need emitting.
        if id != est.root() {
            if let Some(repo) = node.props.get("repoId") {
                let _ = writeln!(out, "# {}", repo.as_text());
            }
            let parent = node.parent.expect("non-root nodes have parents");
            let _ = writeln!(out, "new {id} {} {} {parent}", node.kind, quote(&node.name));
        }
        for (key, value) in &node.props {
            let (ty, rendered) = match value {
                PropValue::Str(s) => ("str", quote(s)),
                PropValue::Int(v) => ("int", v.to_string()),
                PropValue::Bool(v) => ("bool", v.to_string()),
                PropValue::List(items) => {
                    let joined: Vec<String> = items.iter().map(|i| quote(i)).collect();
                    ("list", joined.join(","))
                }
            };
            let _ = writeln!(out, "prop {id} {key} {ty} {rendered}");
        }
    }
    out
}

/// Executes a script program, rebuilding the EST.
///
/// Decoding is the paper's "evaluate a program that directly rebuilds the
/// EST" step and must beat a full IDL re-parse (experiment E6), so the
/// hot path is allocation-free until a value string is actually built:
/// node ids are numeric indices into a dense table, operands are borrowed
/// slices, and error construction is deferred.
///
/// # Errors
///
/// Returns a [`ScriptError`] with the line number on malformed commands,
/// undefined node references, or bad literals.
pub fn decode(script: &str) -> Result<Est, ScriptError> {
    let mut est = Est::new();
    // Script ids are "n<index>" in creation order; bind them densely.
    let mut ids: Vec<Option<NodeId>> = vec![Some(est.root())];

    let lookup =
        |ids: &[Option<NodeId>], token: &str, line: usize| -> Result<NodeId, ScriptError> {
            let idx: usize = token
                .strip_prefix('n')
                .and_then(|d| d.parse().ok())
                .ok_or_else(|| ScriptError { line, message: format!("bad node id `{token}`") })?;
            ids.get(idx)
                .copied()
                .flatten()
                .ok_or_else(|| ScriptError { line, message: format!("undefined node `{token}`") })
        };

    for (i, raw) in script.lines().enumerate() {
        let line_no = i + 1;
        let line = raw.trim_ascii();
        if line.is_empty() || line.as_bytes()[0] == b'#' {
            continue;
        }
        let mut parts = Operands::new(line);
        let cmd = parts.word().map_err(|m| ScriptError { line: line_no, message: m })?;
        match cmd {
            "new" => {
                let id = parts.word().map_err(|m| ScriptError { line: line_no, message: m })?;
                let idx: usize =
                    id.strip_prefix('n').and_then(|d| d.parse().ok()).ok_or_else(|| {
                        ScriptError { line: line_no, message: format!("bad node id `{id}`") }
                    })?;
                let kind = parts.word().map_err(|m| ScriptError { line: line_no, message: m })?;
                let name = parts.quoted().map_err(|m| ScriptError { line: line_no, message: m })?;
                let parent_tok =
                    parts.word().map_err(|m| ScriptError { line: line_no, message: m })?;
                let parent = lookup(&ids, parent_tok, line_no)?;
                let node = est.add_node(name, kind, parent);
                if ids.len() <= idx {
                    ids.resize(idx + 1, None);
                }
                ids[idx] = Some(node);
            }
            "prop" => {
                let id = parts.word().map_err(|m| ScriptError { line: line_no, message: m })?;
                let node = lookup(&ids, id, line_no)?;
                let key = parts.word().map_err(|m| ScriptError { line: line_no, message: m })?;
                let ty = parts.word().map_err(|m| ScriptError { line: line_no, message: m })?;
                let value = match ty {
                    "str" => PropValue::Str(
                        parts.quoted().map_err(|m| ScriptError { line: line_no, message: m })?,
                    ),
                    "int" => PropValue::Int(
                        parts
                            .word()
                            .map_err(|m| ScriptError { line: line_no, message: m })?
                            .parse()
                            .map_err(|e| ScriptError {
                                line: line_no,
                                message: format!("bad int literal: {e}"),
                            })?,
                    ),
                    "bool" => {
                        match parts.word().map_err(|m| ScriptError { line: line_no, message: m })? {
                            "true" => PropValue::Bool(true),
                            "false" => PropValue::Bool(false),
                            other => {
                                return Err(ScriptError {
                                    line: line_no,
                                    message: format!("bad bool literal `{other}`"),
                                });
                            }
                        }
                    }
                    "list" => {
                        let mut items = Vec::new();
                        if !parts.at_end() {
                            loop {
                                items.push(
                                    parts
                                        .quoted()
                                        .map_err(|m| ScriptError { line: line_no, message: m })?,
                                );
                                if !parts.eat(',') {
                                    break;
                                }
                            }
                        }
                        PropValue::List(items)
                    }
                    other => {
                        return Err(ScriptError {
                            line: line_no,
                            message: format!("unknown property type `{other}`"),
                        });
                    }
                };
                est.add_prop(node, key.to_owned(), value);
            }
            other => {
                return Err(ScriptError {
                    line: line_no,
                    message: format!("unknown command `{other}`"),
                });
            }
        }
    }
    Ok(est)
}

/// A tiny zero-copy operand scanner over one command line.
struct Operands<'a> {
    rest: &'a str,
}

impl<'a> Operands<'a> {
    fn new(rest: &'a str) -> Self {
        Operands { rest: rest.trim_ascii_start() }
    }

    fn at_end(&self) -> bool {
        self.rest.is_empty()
    }

    fn word(&mut self) -> Result<&'a str, String> {
        if self.rest.is_empty() {
            return Err("missing operand".to_owned());
        }
        let end = self.rest.find(' ').unwrap_or(self.rest.len());
        let (w, rest) = self.rest.split_at(end);
        self.rest = rest.trim_ascii_start();
        Ok(w)
    }

    fn eat(&mut self, c: char) -> bool {
        if let Some(rest) = self.rest.strip_prefix(c) {
            self.rest = rest.trim_ascii_start();
            true
        } else {
            false
        }
    }

    fn quoted(&mut self) -> Result<String, String> {
        let rest = self
            .rest
            .strip_prefix('"')
            .ok_or_else(|| format!("expected quoted string at `{}`", self.rest))?;
        // Fast path: no escapes before the closing quote.
        let bytes = rest.as_bytes();
        let mut i = 0;
        while i < bytes.len() {
            match bytes[i] {
                b'"' => {
                    let out = rest[..i].to_owned();
                    self.rest = rest[i + 1..].trim_ascii_start();
                    return Ok(out);
                }
                b'\\' => break,
                _ => i += 1,
            }
        }
        // Slow path with escapes.
        let mut out = String::new();
        out.push_str(&rest[..i]);
        let mut chars = rest[i..].char_indices();
        while let Some((j, c)) = chars.next() {
            match c {
                '"' => {
                    self.rest = rest[i + j + 1..].trim_ascii_start();
                    return Ok(out);
                }
                '\\' => match chars.next() {
                    Some((_, 'n')) => out.push('\n'),
                    Some((_, e)) => out.push(e),
                    None => return Err("dangling escape".to_owned()),
                },
                c => out.push(c),
            }
        }
        Err("unterminated quoted string".to_owned())
    }
}

/// A *recorded program* that rebuilds an EST through direct API calls —
/// the faithful analog of the paper's generated Perl once it has been
/// compiled by the interpreter. The paper's §4.1 claim is exactly that
/// "evaluating a perl program that directly rebuilds the EST ... is
/// certainly more efficient than parsing an external representation of
/// the EST": [`Replay::run`] vs [`decode`] in experiment E6.
#[derive(Debug, Clone)]
pub struct Replay {
    ops: Vec<ReplayOp>,
}

#[derive(Debug, Clone)]
enum ReplayOp {
    New { name: String, kind: String, parent: u32 },
    Prop { node: u32, key: String, value: PropValue },
}

impl Replay {
    /// Records the instruction sequence that recreates `est`.
    pub fn record(est: &Est) -> Replay {
        let mut ops = Vec::new();
        for (id, node) in est.iter() {
            if id != est.root() {
                let parent = node.parent.expect("non-root nodes have parents");
                ops.push(ReplayOp::New {
                    name: node.name.clone(),
                    kind: node.kind.clone(),
                    parent: parent.index() as u32,
                });
            }
            for (key, value) in &node.props {
                ops.push(ReplayOp::Prop {
                    node: id.index() as u32,
                    key: key.clone(),
                    value: value.clone(),
                });
            }
        }
        Replay { ops }
    }

    /// Number of recorded instructions.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Executes the program, rebuilding the EST.
    pub fn run(&self) -> Est {
        let mut est = Est::new();
        let mut ids: Vec<NodeId> = vec![est.root()];
        for op in &self.ops {
            match op {
                ReplayOp::New { name, kind, parent } => {
                    let node = est.add_node(name.clone(), kind.clone(), ids[*parent as usize]);
                    ids.push(node);
                }
                ReplayOp::Prop { node, key, value } => {
                    est.add_prop(ids[*node as usize], key.clone(), value.clone());
                }
            }
        }
        est
    }
}

/// Structural equality of two ESTs ignoring node-id numbering: same tree
/// shape, names, kinds and props.
pub fn same_shape(a: &Est, b: &Est) -> bool {
    fn node_eq(a: &Est, b: &Est, an: NodeId, bn: NodeId) -> bool {
        let (na, nb): (&EstNode, &EstNode) = (a.node(an), b.node(bn));
        na.name == nb.name
            && na.kind == nb.kind
            && na.props == nb.props
            && na.children.len() == nb.children.len()
            && na.children.iter().zip(&nb.children).all(|(&ca, &cb)| node_eq(a, b, ca, cb))
    }
    node_eq(a, b, a.root(), b.root())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build;
    use heidl_idl::parse;

    #[test]
    fn fig8_roundtrip_for_fig3() {
        let est = build(&parse(heidl_idl::FIG3_IDL).unwrap()).unwrap();
        let script = encode(&est);
        // The script contains the paper's comment convention.
        assert!(script.contains("# IDL:Heidi/A:1.0"), "{script}");
        assert!(script.contains("new "), "{script}");
        let rebuilt = decode(&script).unwrap();
        assert!(same_shape(&est, &rebuilt));
    }

    #[test]
    fn decode_reports_line_numbers() {
        let err = decode("new n1 Module \"M\" n0\nbogus command\n").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.message.contains("unknown command"));
    }

    #[test]
    fn decode_rejects_undefined_parent() {
        let err = decode("new n5 Interface \"A\" n99\n").unwrap_err();
        assert!(err.message.contains("undefined node `n99`"), "{err}");
        let err = decode("new n5 Interface \"A\" nope\n").unwrap_err();
        assert!(err.message.contains("bad node id"), "{err}");
    }

    #[test]
    fn replay_rebuilds_identically() {
        let est = build(&parse(heidl_idl::FIG3_IDL).unwrap()).unwrap();
        let replay = Replay::record(&est);
        assert!(!replay.is_empty());
        let rebuilt = replay.run();
        assert!(same_shape(&est, &rebuilt));
        assert_eq!(rebuilt.len(), est.len());
    }

    #[test]
    fn decode_rejects_bad_literals() {
        let base = "new n1 Module \"M\" n0\n";
        assert!(decode(&format!("{base}prop n1 x int notanint\n")).is_err());
        assert!(decode(&format!("{base}prop n1 x bool maybe\n")).is_err());
        assert!(decode(&format!("{base}prop n1 x blob \"v\"\n")).is_err());
        assert!(decode(&format!("{base}prop n9 x str \"v\"\n")).is_err());
    }

    #[test]
    fn quoting_survives_special_characters() {
        let mut est = Est::new();
        let root = est.root();
        let n = est.add_node("we\"ird\\name\n", "Struct", root);
        est.add_prop(n, "value", "line1\nline2 \"quoted\"");
        est.add_prop(n, "items", PropValue::List(vec!["a,b".into(), "c\"d".into()]));
        let script = encode(&est);
        let rebuilt = decode(&script).unwrap();
        assert!(same_shape(&est, &rebuilt), "{script}");
    }

    #[test]
    fn empty_list_prop_roundtrips() {
        let mut est = Est::new();
        let root = est.root();
        let n = est.add_node("E", "Enum", root);
        est.add_prop(n, "members", PropValue::List(vec![]));
        let rebuilt = decode(&encode(&est)).unwrap();
        assert!(same_shape(&est, &rebuilt));
    }

    #[test]
    fn int_and_bool_props_roundtrip() {
        let mut est = Est::new();
        let root = est.root();
        let n = est.add_node("x", "Param", root);
        est.add_prop(n, "position", 3i64);
        est.add_prop(n, "IsVariable", true);
        est.add_prop(n, "negative", -7i64);
        let rebuilt = decode(&encode(&est)).unwrap();
        assert!(same_shape(&est, &rebuilt));
    }

    #[test]
    fn root_properties_survive_the_roundtrip() {
        // Regression: encode() used to skip the root node wholesale,
        // dropping its properties (found by proptest).
        let mut est = Est::new();
        let root = est.root();
        est.add_prop(root, "file", "A.idl");
        let rebuilt = decode(&encode(&est)).unwrap();
        assert!(same_shape(&est, &rebuilt));
        assert_eq!(rebuilt.prop(rebuilt.root(), "file").unwrap().as_text(), "A.idl");
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let est = decode("# a comment\n\n  \nnew n1 Module \"M\" n0\n").unwrap();
        assert_eq!(est.len(), 2);
    }

    #[test]
    fn same_shape_detects_differences() {
        let mut a = Est::new();
        let ra = a.root();
        a.add_node("A", "Interface", ra);
        let mut b = Est::new();
        let rb = b.root();
        b.add_node("B", "Interface", rb);
        assert!(!same_shape(&a, &b));
        let mut c = Est::new();
        let rc = c.root();
        c.add_node("A", "Interface", rc);
        assert!(same_shape(&a, &c));
    }
}
