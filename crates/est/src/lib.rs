//! # heidl-est — the Enhanced Syntax Tree
//!
//! The middle stage of the template-driven IDL compiler from Welling & Ott
//! (Middleware 2000, §4): a parse tree *"organized so that similar elements
//! are grouped together"*. Interfaces expose their operations, attributes
//! and inherited bases as separate lists regardless of source interleaving
//! (Fig 7), which is what makes a template's `@foreach methodList`
//! exhaustive.
//!
//! The crate provides:
//!
//! * [`Est`] / [`EstNode`] — the arena-based property-bag tree, mirroring
//!   the paper's `Ast::New` / `AddProp` API (Fig 8);
//! * [`build()`] — AST → EST with name resolution, repository IDs and type
//!   descriptors;
//! * [`script`] — the executable textual EST encoding (the Perl-program
//!   analog of Fig 8) with [`script::encode`] / [`script::decode`];
//! * [`lists`] — the `fooList` naming convention used by templates.
//!
//! ```
//! let spec = heidl_idl::parse(heidl_idl::FIG3_IDL)?;
//! let est = heidl_est::build(&spec)?;
//! let a = est.find("Interface", "A").unwrap();
//! // Members grouped by kind, not source order (Fig 7):
//! assert_eq!(est.children_of_kind(a, "Operation").len(), 6);
//! assert_eq!(est.children_of_kind(a, "Attribute").len(), 1);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]

pub mod build;
pub mod check;
pub mod lists;
pub mod node;
pub mod repository;
pub mod script;
pub mod symbols;
pub mod types;

pub use build::{build, BuildError};
pub use check::{validate, SemanticError};
pub use node::{Est, EstNode, NodeId, PropValue};
pub use repository::{InterfaceRepository, RepoError};
pub use symbols::{Symbol, SymbolTable};
pub use types::{describe, flat_name, TypeDesc, TypeInfo};
