//! A persistent Interface Repository storing ESTs.
//!
//! Paper §5: the OmniBroker compiler "stores an abstract representation
//! of the IDL source in a possibly persistent global *Interface
//! Repository* (IR) in support of a distributed development environment.
//! The code-generation stage then queries the IR ... the IR could be
//! modified to store the EST instead of the parse tree." This module is
//! that modified IR: compilation units are stored as executable EST
//! scripts (Fig 8) under a directory, so code generation can run later,
//! elsewhere, without the IDL source.

use crate::node::Est;
use crate::script::{self, ScriptError};
use std::error::Error;
use std::fmt;
use std::io;
use std::path::{Path, PathBuf};

/// File extension for stored EST scripts.
const EXT: &str = "estp";

/// Errors from repository operations.
#[derive(Debug)]
pub enum RepoError {
    /// Filesystem failure.
    Io(io::Error),
    /// A stored script failed to decode (corruption, version skew).
    Corrupt {
        /// The unit whose script failed.
        unit: String,
        /// The decode error.
        source: ScriptError,
    },
    /// The requested unit does not exist.
    NotFound {
        /// The missing unit name.
        unit: String,
    },
    /// A unit name that would escape the repository directory.
    BadName {
        /// The offending name.
        unit: String,
    },
}

impl fmt::Display for RepoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RepoError::Io(e) => write!(f, "repository i/o error: {e}"),
            RepoError::Corrupt { unit, source } => {
                write!(f, "stored unit `{unit}` is corrupt: {source}")
            }
            RepoError::NotFound { unit } => write!(f, "no unit `{unit}` in the repository"),
            RepoError::BadName { unit } => {
                write!(f, "invalid unit name `{unit}` (must be a bare name)")
            }
        }
    }
}

impl Error for RepoError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            RepoError::Io(e) => Some(e),
            RepoError::Corrupt { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl From<io::Error> for RepoError {
    fn from(e: io::Error) -> Self {
        RepoError::Io(e)
    }
}

/// A directory of stored ESTs, one per compilation unit.
#[derive(Debug, Clone)]
pub struct InterfaceRepository {
    root: PathBuf,
}

impl InterfaceRepository {
    /// Opens (creating if needed) a repository at `root`.
    ///
    /// # Errors
    ///
    /// Fails when the directory cannot be created.
    pub fn open(root: impl Into<PathBuf>) -> Result<InterfaceRepository, RepoError> {
        let root = root.into();
        std::fs::create_dir_all(&root)?;
        Ok(InterfaceRepository { root })
    }

    /// The repository directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    fn path_for(&self, unit: &str) -> Result<PathBuf, RepoError> {
        let valid = !unit.is_empty()
            && unit.chars().all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-' || c == '.');
        if !valid || unit.contains("..") {
            return Err(RepoError::BadName { unit: unit.to_owned() });
        }
        Ok(self.root.join(format!("{unit}.{EXT}")))
    }

    /// Stores (or replaces) a compilation unit's EST.
    ///
    /// # Errors
    ///
    /// Bad unit names and filesystem failures.
    pub fn store(&self, unit: &str, est: &Est) -> Result<(), RepoError> {
        let path = self.path_for(unit)?;
        std::fs::write(path, script::encode(est))?;
        Ok(())
    }

    /// Loads a unit's EST by executing its stored script.
    ///
    /// # Errors
    ///
    /// [`RepoError::NotFound`] for unknown units, [`RepoError::Corrupt`]
    /// for undecodable scripts.
    pub fn load(&self, unit: &str) -> Result<Est, RepoError> {
        let path = self.path_for(unit)?;
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) if e.kind() == io::ErrorKind::NotFound => {
                return Err(RepoError::NotFound { unit: unit.to_owned() });
            }
            Err(e) => return Err(e.into()),
        };
        script::decode(&text).map_err(|source| RepoError::Corrupt { unit: unit.to_owned(), source })
    }

    /// Removes a unit; `Ok(false)` when it did not exist.
    ///
    /// # Errors
    ///
    /// Bad unit names and filesystem failures.
    pub fn remove(&self, unit: &str) -> Result<bool, RepoError> {
        let path = self.path_for(unit)?;
        match std::fs::remove_file(path) {
            Ok(()) => Ok(true),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(false),
            Err(e) => Err(e.into()),
        }
    }

    /// Lists stored unit names, sorted.
    ///
    /// # Errors
    ///
    /// Filesystem failures.
    pub fn units(&self) -> Result<Vec<String>, RepoError> {
        let mut out = Vec::new();
        for entry in std::fs::read_dir(&self.root)? {
            let entry = entry?;
            let path = entry.path();
            if path.extension().and_then(|e| e.to_str()) == Some(EXT) {
                if let Some(stem) = path.file_stem().and_then(|s| s.to_str()) {
                    out.push(stem.to_owned());
                }
            }
        }
        out.sort();
        Ok(out)
    }

    /// Finds the unit defining the interface with the given repository id
    /// (e.g. `IDL:Heidi/A:1.0`), searching all stored units.
    ///
    /// # Errors
    ///
    /// Filesystem failures and corrupt units encountered during the scan.
    pub fn find_interface(&self, repo_id: &str) -> Result<Option<(String, Est)>, RepoError> {
        for unit in self.units()? {
            let est = self.load(&unit)?;
            let hit = est.iter().any(|(id, n)| {
                n.kind == "Interface"
                    && est.prop(id, "repoId").map(|p| p.as_text()) == Some(repo_id.to_owned())
            });
            if hit {
                return Ok(Some((unit, est)));
            }
        }
        Ok(None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build;
    use heidl_idl::parse;

    fn temp_repo(tag: &str) -> InterfaceRepository {
        let dir = std::env::temp_dir().join(format!("heidl-ir-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        InterfaceRepository::open(dir).unwrap()
    }

    #[test]
    fn store_load_roundtrip() {
        let repo = temp_repo("roundtrip");
        let est = build(&parse(heidl_idl::FIG3_IDL).unwrap()).unwrap();
        repo.store("A", &est).unwrap();
        let loaded = repo.load("A").unwrap();
        assert!(script::same_shape(&est, &loaded));
        std::fs::remove_dir_all(repo.root()).unwrap();
    }

    #[test]
    fn units_listed_sorted_and_removable() {
        let repo = temp_repo("units");
        let est = build(&parse("interface X {};").unwrap()).unwrap();
        repo.store("zeta", &est).unwrap();
        repo.store("alpha", &est).unwrap();
        assert_eq!(repo.units().unwrap(), ["alpha", "zeta"]);
        assert!(repo.remove("zeta").unwrap());
        assert!(!repo.remove("zeta").unwrap(), "second remove is a no-op");
        assert_eq!(repo.units().unwrap(), ["alpha"]);
        std::fs::remove_dir_all(repo.root()).unwrap();
    }

    #[test]
    fn load_missing_unit_is_not_found() {
        let repo = temp_repo("missing");
        assert!(matches!(repo.load("nope"), Err(RepoError::NotFound { .. })));
        std::fs::remove_dir_all(repo.root()).unwrap();
    }

    #[test]
    fn corrupt_unit_is_reported_with_name() {
        let repo = temp_repo("corrupt");
        std::fs::write(repo.root().join("bad.estp"), "new broken").unwrap();
        let err = repo.load("bad").unwrap_err();
        let RepoError::Corrupt { unit, .. } = err else { panic!("{err}") };
        assert_eq!(unit, "bad");
        std::fs::remove_dir_all(repo.root()).unwrap();
    }

    #[test]
    fn bad_unit_names_are_rejected() {
        let repo = temp_repo("names");
        let est = Est::new();
        for bad in ["../evil", "a/b", "", "a b"] {
            assert!(
                matches!(repo.store(bad, &est), Err(RepoError::BadName { .. })),
                "`{bad}` should be rejected"
            );
        }
        std::fs::remove_dir_all(repo.root()).unwrap();
    }

    #[test]
    fn find_interface_by_repo_id() {
        let repo = temp_repo("find");
        let a = build(&parse(heidl_idl::FIG3_IDL).unwrap()).unwrap();
        let b = build(&parse("module M { interface Other {}; };").unwrap()).unwrap();
        repo.store("a_unit", &a).unwrap();
        repo.store("b_unit", &b).unwrap();
        let (unit, est) = repo.find_interface("IDL:Heidi/A:1.0").unwrap().unwrap();
        assert_eq!(unit, "a_unit");
        assert!(est.find("Interface", "A").is_some());
        let (unit, _) = repo.find_interface("IDL:M/Other:1.0").unwrap().unwrap();
        assert_eq!(unit, "b_unit");
        assert!(repo.find_interface("IDL:Nope:1.0").unwrap().is_none());
        std::fs::remove_dir_all(repo.root()).unwrap();
    }

    #[test]
    fn store_replaces_existing_unit() {
        let repo = temp_repo("replace");
        let v1 = build(&parse("interface V1 {};").unwrap()).unwrap();
        let v2 = build(&parse("interface V2 {};").unwrap()).unwrap();
        repo.store("u", &v1).unwrap();
        repo.store("u", &v2).unwrap();
        let loaded = repo.load("u").unwrap();
        assert!(loaded.find("Interface", "V2").is_some());
        assert!(loaded.find("Interface", "V1").is_none());
        std::fs::remove_dir_all(repo.root()).unwrap();
    }
}
