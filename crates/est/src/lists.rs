//! List-name ↔ node-kind mapping for templates.
//!
//! The paper's templates iterate named lists — `@foreach interfaceList`,
//! `@foreach methodList`, `@foreach paramList` (Fig 9) — which the EST
//! serves by filtering children on node kind. This module is the naming
//! convention glue.

/// Maps a template list name (e.g. `"methodList"`) to the EST node kind it
/// enumerates (e.g. `"Operation"`).
///
/// Unknown names ending in `List` fall back to the capitalized stem, so
/// project-specific node kinds work without registry changes:
/// `"widgetList"` → `"Widget"`.
pub fn kind_for_list(list: &str) -> Option<String> {
    let known = match list {
        "moduleList" => "Module",
        "interfaceList" => "Interface",
        "forwardList" => "Forward",
        "methodList" | "operationList" => "Operation",
        "attributeList" => "Attribute",
        "paramList" | "parameterList" => "Param",
        "inheritedList" => "Inherit",
        "raisesList" => "Raises",
        "enumList" => "Enum",
        "aliasList" | "typedefList" => "Alias",
        "structList" => "Struct",
        "fieldList" | "memberList" => "Field",
        "unionList" => "Union",
        "caseList" => "Case",
        "constList" => "Const",
        "exceptionList" => "Exception",
        "sequenceList" => "Sequence",
        _ => "",
    };
    if !known.is_empty() {
        return Some(known.to_owned());
    }
    let stem = list.strip_suffix("List")?;
    let mut chars = stem.chars();
    let first = chars.next()?;
    Some(first.to_uppercase().collect::<String>() + chars.as_str())
}

/// Whether a list should search *recursively through modules* when iterated
/// from a container node. True for all top-level definition kinds; member
/// kinds (operations, params, fields, ...) only ever iterate direct
/// children.
pub fn is_container_list(kind: &str) -> bool {
    matches!(
        kind,
        "Module"
            | "Interface"
            | "Forward"
            | "Enum"
            | "Alias"
            | "Struct"
            | "Union"
            | "Const"
            | "Exception"
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_lists_map() {
        assert_eq!(kind_for_list("interfaceList").unwrap(), "Interface");
        assert_eq!(kind_for_list("methodList").unwrap(), "Operation");
        assert_eq!(kind_for_list("paramList").unwrap(), "Param");
        assert_eq!(kind_for_list("parameterList").unwrap(), "Param");
        assert_eq!(kind_for_list("inheritedList").unwrap(), "Inherit");
        assert_eq!(kind_for_list("memberList").unwrap(), "Field");
    }

    #[test]
    fn fallback_capitalizes_stem() {
        assert_eq!(kind_for_list("widgetList").unwrap(), "Widget");
        assert_eq!(kind_for_list("caseList").unwrap(), "Case");
    }

    #[test]
    fn non_list_names_are_none() {
        assert_eq!(kind_for_list("interfaces"), None);
        assert_eq!(kind_for_list("List"), None);
        assert_eq!(kind_for_list(""), None);
    }

    #[test]
    fn container_kinds() {
        assert!(is_container_list("Interface"));
        assert!(is_container_list("Enum"));
        assert!(!is_container_list("Operation"));
        assert!(!is_container_list("Param"));
    }
}
