//! Symbol table: resolves scoped names to the kind of entity they denote.
//!
//! The EST builder needs to know whether `Heidi::S` names an interface (an
//! *object reference* in the paper's terminology, `type = "objref"`), an
//! enum, a struct, an alias, or an enumerator — the generated props differ.
//! Resolution follows IDL scoping: a name is searched from the innermost
//! enclosing scope outwards, and enumerators are injected into the scope
//! *enclosing* their enum (which is why `Heidi::Start` resolves in Fig 3).

use heidl_idl::ast::{ConstExpr, Definition, ScopedName, Specification};
use std::collections::HashMap;

/// What a resolved name denotes.
#[derive(Debug, Clone, PartialEq)]
pub enum Symbol {
    /// An interface (or forward-declared interface): an object reference.
    Interface,
    /// An enum type.
    Enum,
    /// An enumerator; carries the absolute path of its value, e.g.
    /// `["Heidi", "Start"]`.
    Enumerator(Vec<String>),
    /// A struct type.
    Struct,
    /// A union type.
    Union,
    /// A typedef; carries the aliased type for transparent resolution.
    Alias(heidl_idl::ast::Type),
    /// A constant; carries its (unevaluated) value expression.
    Const(ConstExpr),
    /// An exception type.
    Exception,
    /// A module.
    Module,
}

/// A symbol table over one IDL specification.
#[derive(Debug, Default)]
pub struct SymbolTable {
    /// Absolute path (e.g. `["Heidi", "A"]`) → symbol.
    entries: HashMap<Vec<String>, Symbol>,
}

impl SymbolTable {
    /// Builds the table by walking `spec`.
    pub fn build(spec: &Specification) -> Self {
        let mut table = SymbolTable::default();
        let mut scope = Vec::new();
        table.collect(&spec.definitions, &mut scope);
        table
    }

    fn insert(&mut self, scope: &[String], name: &str, sym: Symbol) {
        let mut path = scope.to_vec();
        path.push(name.to_owned());
        self.entries.insert(path, sym);
    }

    fn collect(&mut self, defs: &[Definition], scope: &mut Vec<String>) {
        for def in defs {
            match def {
                Definition::Module(m) => {
                    self.insert(scope, &m.name.text, Symbol::Module);
                    scope.push(m.name.text.clone());
                    self.collect(&m.definitions, scope);
                    scope.pop();
                }
                Definition::Interface(i) => {
                    self.insert(scope, &i.name.text, Symbol::Interface);
                }
                Definition::ForwardInterface(f) => {
                    self.insert(scope, &f.name.text, Symbol::Interface);
                }
                Definition::TypeDef(t) => {
                    self.insert(scope, &t.name.text, Symbol::Alias(t.ty.clone()));
                }
                Definition::Struct(s) => {
                    self.insert(scope, &s.name.text, Symbol::Struct);
                }
                Definition::Union(u) => {
                    self.insert(scope, &u.name.text, Symbol::Union);
                }
                Definition::Enum(e) => {
                    self.insert(scope, &e.name.text, Symbol::Enum);
                    // Enumerators are injected into the enclosing scope.
                    for en in &e.enumerators {
                        let mut value_path = scope.clone();
                        value_path.push(en.text.clone());
                        self.insert(scope, &en.text, Symbol::Enumerator(value_path));
                    }
                }
                Definition::Const(c) => {
                    self.insert(scope, &c.name.text, Symbol::Const(c.value.clone()));
                }
                Definition::Exception(e) => {
                    self.insert(scope, &e.name.text, Symbol::Exception);
                }
            }
        }
    }

    /// Resolves `name` as used from within `scope` (innermost last).
    ///
    /// Returns the symbol together with its absolute path. Absolute names
    /// (`::A::B`) skip the outward search.
    pub fn resolve(&self, name: &ScopedName, scope: &[String]) -> Option<(Vec<String>, &Symbol)> {
        let parts: Vec<String> = name.parts.iter().map(|p| p.text.clone()).collect();
        if name.absolute {
            return self.entries.get(&parts).map(|s| (parts.clone(), s));
        }
        // Search enclosing scopes from innermost to outermost, then global.
        for depth in (0..=scope.len()).rev() {
            let mut candidate: Vec<String> = scope[..depth].to_vec();
            candidate.extend(parts.iter().cloned());
            if let Some(sym) = self.entries.get(&candidate) {
                return Some((candidate, sym));
            }
        }
        None
    }

    /// Resolves through aliases until a non-alias symbol (or the final
    /// aliased primitive type) is reached.
    ///
    /// Returns `None` when `name` is entirely unknown.
    pub fn resolve_transparent(
        &self,
        name: &ScopedName,
        scope: &[String],
    ) -> Option<(Vec<String>, Symbol)> {
        let (path, sym) = self.resolve(name, scope)?;
        if let Symbol::Alias(heidl_idl::ast::Type::Named(inner)) = sym {
            // The alias target is resolved in the scope where the alias
            // itself lives (its enclosing scope = path minus last part).
            let enclosing = &path[..path.len() - 1];
            if let Some(r) = self.resolve_transparent(inner, enclosing) {
                return Some(r);
            }
        }
        Some((path, sym.clone()))
    }

    /// Number of symbols.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no symbols were collected.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use heidl_idl::parse;

    fn table(src: &str) -> SymbolTable {
        SymbolTable::build(&parse(src).unwrap())
    }

    fn name(parts: &[&str]) -> ScopedName {
        ScopedName::from_parts(parts.iter().copied())
    }

    #[test]
    fn fig3_symbols_resolve() {
        let t = table(heidl_idl::FIG3_IDL);
        let scope = vec!["Heidi".to_owned()];
        let (path, sym) = t.resolve(&name(&["A"]), &scope).unwrap();
        assert_eq!(path, ["Heidi", "A"]);
        assert_eq!(*sym, Symbol::Interface);
        let (_, sym) = t.resolve(&name(&["Status"]), &scope).unwrap();
        assert_eq!(*sym, Symbol::Enum);
        let (_, sym) = t.resolve(&name(&["SSequence"]), &scope).unwrap();
        assert!(matches!(sym, Symbol::Alias(_)));
    }

    #[test]
    fn enumerators_live_in_enclosing_scope() {
        let t = table(heidl_idl::FIG3_IDL);
        // `Heidi::Start` resolves from the global scope...
        let (path, sym) = t.resolve(&name(&["Heidi", "Start"]), &[]).unwrap();
        assert_eq!(path, ["Heidi", "Start"]);
        assert!(matches!(sym, Symbol::Enumerator(p) if p == &["Heidi", "Start"]));
        // ...and `Start` resolves from inside the module.
        let scope = vec!["Heidi".to_owned()];
        assert!(t.resolve(&name(&["Start"]), &scope).is_some());
        // But not from the global scope unqualified.
        assert!(t.resolve(&name(&["Start"]), &[]).is_none());
    }

    #[test]
    fn inner_scope_shadows_outer() {
        let t = table("interface X; module M { interface X; interface U { void f(in X x); }; };");
        let scope = vec!["M".to_owned()];
        let (path, _) = t.resolve(&name(&["X"]), &scope).unwrap();
        assert_eq!(path, ["M", "X"], "inner X wins");
        let mut abs = name(&["X"]);
        abs.absolute = true;
        let (path, _) = t.resolve(&abs, &scope).unwrap();
        assert_eq!(path, ["X"], "absolute name skips scope search");
    }

    #[test]
    fn alias_resolves_transparently() {
        let t =
            table("module M { interface I; typedef I J; typedef J K; typedef sequence<long> L; };");
        let scope = vec!["M".to_owned()];
        let (path, sym) = t.resolve_transparent(&name(&["K"]), &scope).unwrap();
        assert_eq!(path, ["M", "I"]);
        assert_eq!(sym, Symbol::Interface);
        // A sequence alias stays an alias (there is no named target).
        let (path, sym) = t.resolve_transparent(&name(&["L"]), &scope).unwrap();
        assert_eq!(path, ["M", "L"]);
        assert!(matches!(sym, Symbol::Alias(_)));
    }

    #[test]
    fn unknown_name_is_none() {
        let t = table("module M { interface I {}; };");
        assert!(t.resolve(&name(&["Nope"]), &[]).is_none());
        assert!(t.resolve_transparent(&name(&["M", "Nope"]), &[]).is_none());
    }

    #[test]
    fn consts_carry_their_expression() {
        let t = table("const long MAX = 42;");
        let (_, sym) = t.resolve(&name(&["MAX"]), &[]).unwrap();
        let Symbol::Const(e) = sym else { panic!() };
        assert_eq!(heidl_idl::expr::eval_i64(e).unwrap(), 42);
    }

    #[test]
    fn table_len_counts_everything() {
        let t = table("module M { enum E { A, B }; };");
        // M, M::E, M::A, M::B
        assert_eq!(t.len(), 4);
        assert!(!t.is_empty());
    }
}
