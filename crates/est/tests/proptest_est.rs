//! Property tests for the EST arena and its script/replay encodings over
//! *arbitrary* trees (not just IDL-derived ones): whatever an alternate
//! front end builds, the Fig 8 machinery must round-trip it.

use heidl_est::script::{decode, encode, same_shape, Replay};
use heidl_est::{Est, NodeId, PropValue};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    /// Add a node under the parent chosen by `parent_pick % existing`.
    New { name: String, kind: String, parent_pick: usize },
    /// Add a property to the node chosen by `node_pick % existing`.
    Prop { node_pick: usize, key: String, value: PropVal },
}

#[derive(Debug, Clone)]
enum PropVal {
    Str(String),
    Int(i64),
    Bool(bool),
    List(Vec<String>),
}

fn tricky_string() -> impl Strategy<Value = String> {
    // Quotes, backslashes, newlines, commas, unicode: everything the
    // quoting layer must survive.
    proptest::string::string_regex("[ -~\\n\"\\\\,«é✓]{0,16}").unwrap()
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (tricky_string(), "[A-Za-z]{1,10}", any::<usize>())
            .prop_map(|(name, kind, parent_pick)| Op::New { name, kind, parent_pick }),
        (
            any::<usize>(),
            "[A-Za-z][A-Za-z0-9]{0,10}",
            prop_oneof![
                tricky_string().prop_map(PropVal::Str),
                any::<i64>().prop_map(PropVal::Int),
                any::<bool>().prop_map(PropVal::Bool),
                proptest::collection::vec(tricky_string(), 0..4).prop_map(PropVal::List),
            ]
        )
            .prop_map(|(node_pick, key, value)| Op::Prop { node_pick, key, value }),
    ]
}

fn build_est(ops: &[Op]) -> Est {
    let mut est = Est::new();
    let mut nodes: Vec<NodeId> = vec![est.root()];
    for op in ops {
        match op {
            Op::New { name, kind, parent_pick } => {
                let parent = nodes[parent_pick % nodes.len()];
                let id = est.add_node(name.clone(), kind.clone(), parent);
                nodes.push(id);
            }
            Op::Prop { node_pick, key, value } => {
                let node = nodes[node_pick % nodes.len()];
                let v: PropValue = match value {
                    PropVal::Str(s) => PropValue::Str(s.clone()),
                    PropVal::Int(i) => PropValue::Int(*i),
                    PropVal::Bool(b) => PropValue::Bool(*b),
                    PropVal::List(items) => PropValue::List(items.clone()),
                };
                est.add_prop(node, key.clone(), v);
            }
        }
    }
    est
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn script_roundtrips_arbitrary_trees(ops in proptest::collection::vec(op_strategy(), 0..60)) {
        let est = build_est(&ops);
        let text = encode(&est);
        let rebuilt = decode(&text)
            .map_err(|e| TestCaseError::fail(format!("{e}\n--- script ---\n{text}")))?;
        prop_assert!(same_shape(&est, &rebuilt));
        prop_assert_eq!(rebuilt.len(), est.len());
    }

    #[test]
    fn replay_roundtrips_arbitrary_trees(ops in proptest::collection::vec(op_strategy(), 0..60)) {
        let est = build_est(&ops);
        let rebuilt = Replay::record(&est).run();
        prop_assert!(same_shape(&est, &rebuilt));
    }

    #[test]
    fn decode_never_panics_on_arbitrary_text(text in "[ -~\\n]{0,400}") {
        let _ = decode(&text);
    }

    #[test]
    fn grouped_lists_partition_children(ops in proptest::collection::vec(op_strategy(), 0..40)) {
        // For every node: the union of children_of_kind over all child
        // kinds equals the child list, order preserved within a kind.
        let est = build_est(&ops);
        for (id, node) in est.iter() {
            let mut kinds: Vec<&str> = node.children.iter().map(|&c| est.node(c).kind.as_str()).collect();
            kinds.sort_unstable();
            kinds.dedup();
            let mut total = 0usize;
            for kind in kinds {
                let group = est.children_of_kind(id, kind);
                total += group.len();
                // Order within the group preserves child order.
                let positions: Vec<usize> = group
                    .iter()
                    .map(|g| node.children.iter().position(|c| c == g).unwrap())
                    .collect();
                prop_assert!(positions.windows(2).all(|w| w[0] < w[1]));
            }
            prop_assert_eq!(total, node.children.len());
        }
    }
}
