//! `heidl-node` — one binary, three cluster roles.
//!
//! ```text
//! heidl-node directory --listen 127.0.0.1:7001
//! heidl-node backend   --listen 127.0.0.1:7101 --directory <REF> --name echo
//! heidl-node router    --listen 127.0.0.1:7201 --directory <REF> --name echo
//! ```
//!
//! `<REF>` is the stringified reference a `directory` node prints on
//! startup; for a replicated directory, join the replicas' endpoints into
//! one failover reference (`@tcp:h:7001,tcp:h:7002,tcp:h:7003#1#...`).
//!
//! Every role runs until stdin closes (or a `quit` line), then shuts down
//! cleanly — backends deregister their lease first. See README, "Running a
//! multi-node cluster over telnet", for a full walkthrough.

use heidl_rmi::{
    DispatchKind, DispatchOutcome, ObjectRef, Orb, RmiResult, Router, Skeleton, SkeletonBase,
};
use heidl_router::{DirectoryClient, DirectoryServer, Resolver};
use heidl_wire::{Decoder, Encoder};
use std::io::BufRead;
use std::sync::mpsc;
use std::sync::Arc;
use std::time::Duration;

/// Repository id of the demo service every `backend` node serves.
const ECHO_REPO_ID: &str = "IDL:heidl/Echo:1.0";

/// Lease TTL backends register with (renewed at a third of this).
const DEFAULT_TTL_MS: i32 = 3000;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((role, rest)) = args.split_first() else {
        usage_and_exit(None);
    };
    let opts = Opts::parse(rest).unwrap_or_else(|e| usage_and_exit(Some(&e)));
    let result = match role.as_str() {
        "directory" => run_directory(&opts),
        "backend" => run_backend(&opts),
        "router" => run_router(&opts),
        other => usage_and_exit(Some(&format!("unknown role `{other}`"))),
    };
    if let Err(e) = result {
        eprintln!("heidl-node: {e}");
        std::process::exit(1);
    }
}

/// Parsed `--flag value` pairs; every role uses a subset.
struct Opts {
    listen: String,
    directory: Option<ObjectRef>,
    name: String,
    ttl_ms: i32,
}

impl Opts {
    fn parse(args: &[String]) -> Result<Opts, String> {
        let mut opts = Opts {
            listen: "127.0.0.1:0".to_owned(),
            directory: None,
            name: "echo".to_owned(),
            ttl_ms: DEFAULT_TTL_MS,
        };
        let mut it = args.iter();
        while let Some(flag) = it.next() {
            let mut value =
                || it.next().cloned().ok_or_else(|| format!("flag {flag} needs a value"));
            match flag.as_str() {
                "--listen" => opts.listen = value()?,
                "--directory" => {
                    let text = value()?;
                    opts.directory =
                        Some(text.parse().map_err(|e| format!("bad --directory ref: {e}"))?);
                }
                "--name" => opts.name = value()?,
                "--ttl-ms" => {
                    opts.ttl_ms = value()?.parse().map_err(|e| format!("bad --ttl-ms: {e}"))?;
                }
                other => return Err(format!("unknown flag `{other}`")),
            }
        }
        Ok(opts)
    }

    fn directory(&self) -> Result<&ObjectRef, String> {
        self.directory.as_ref().ok_or_else(|| "--directory <REF> is required".to_owned())
    }
}

fn usage_and_exit(error: Option<&str>) -> ! {
    if let Some(e) = error {
        eprintln!("heidl-node: {e}\n");
    }
    eprintln!(
        "usage: heidl-node <role> [flags]\n\
         \n\
         roles:\n\
         \x20 directory --listen HOST:PORT\n\
         \x20 backend   --listen HOST:PORT --directory REF [--name SVC] [--ttl-ms N]\n\
         \x20 router    --listen HOST:PORT --directory REF [--name SVC]\n\
         \n\
         REF is the reference a directory node prints; comma-join endpoints\n\
         for a replicated directory. Each role runs until stdin closes or a\n\
         `quit` line arrives, then shuts down cleanly."
    );
    std::process::exit(2);
}

/// Blocks until stdin reaches EOF or a line says `quit` / `exit`.
fn wait_for_quit() {
    let stdin = std::io::stdin();
    for line in stdin.lock().lines() {
        match line {
            Ok(l) if matches!(l.trim(), "quit" | "exit") => return,
            Ok(_) => {}
            Err(_) => return,
        }
    }
}

fn run_directory(opts: &Opts) -> Result<(), String> {
    let server = DirectoryServer::start(&opts.listen).map_err(|e| e.to_string())?;
    println!("directory ready");
    println!("  ref: {}", server.object_ref());
    println!("  (join replica endpoints into one REF for failover)");
    wait_for_quit();
    server.shutdown();
    println!("directory stopped");
    Ok(())
}

/// The demo servant: `echo` returns its argument unchanged, `whoami`
/// names the node that served the call — telnet to the router, call
/// `whoami` a few times, and watch it hop between backends.
struct EchoNode {
    base: SkeletonBase,
    identity: String,
}

impl Skeleton for EchoNode {
    fn type_id(&self) -> &str {
        self.base.type_id()
    }

    fn dispatch(
        &self,
        method: &str,
        args: &mut dyn Decoder,
        reply: &mut dyn Encoder,
    ) -> RmiResult<DispatchOutcome> {
        match self.base.find(method) {
            Some(0) => {
                let text = args.get_string()?;
                reply.put_string(&text);
                Ok(DispatchOutcome::Handled)
            }
            Some(1) => {
                reply.put_string(&self.identity);
                Ok(DispatchOutcome::Handled)
            }
            _ => self.base.dispatch_parents(method, args, reply),
        }
    }
}

fn run_backend(opts: &Opts) -> Result<(), String> {
    let directory_ref = opts.directory()?.clone();
    let orb = Orb::new();
    let endpoint = orb.serve(&opts.listen).map_err(|e| e.to_string())?;
    let objref = orb
        .export(Arc::new(EchoNode {
            base: SkeletonBase::new(ECHO_REPO_ID, DispatchKind::Hash, ["echo", "whoami"], vec![]),
            identity: endpoint.socket_addr(),
        }))
        .map_err(|e| e.to_string())?;

    let client = DirectoryClient::new(orb.clone(), directory_ref);
    let provider = objref.to_string();
    client
        .register(&opts.name, &provider, opts.ttl_ms)
        .map_err(|e| format!("initial register failed: {e}"))?;
    println!("backend ready");
    println!("  ref: {provider}");
    println!("  registered as `{}`, lease {} ms", opts.name, opts.ttl_ms);

    // Renew the lease at a third of its TTL until told to stop; a renewal
    // that reaches any replica keeps the lease alive, and renewals repair
    // replicas that missed earlier writes.
    let (stop_tx, stop_rx) = mpsc::channel::<()>();
    let renew_every = Duration::from_millis((opts.ttl_ms as u64 / 3).max(1));
    let renewer = {
        let name = opts.name.clone();
        let provider = provider.clone();
        let ttl_ms = opts.ttl_ms;
        std::thread::Builder::new()
            .name("heidl-lease-renew".to_owned())
            .spawn(move || {
                while stop_rx.recv_timeout(renew_every) == Err(mpsc::RecvTimeoutError::Timeout) {
                    if let Err(e) = client.register(&name, &provider, ttl_ms) {
                        eprintln!("lease renewal failed (will retry): {e}");
                    }
                }
                // Departing gracefully: drop the lease instead of letting
                // it age out.
                let _ = client.deregister(&name, &provider);
            })
            .expect("spawn renewer")
    };

    wait_for_quit();
    drop(stop_tx);
    let _ = renewer.join();
    orb.shutdown_and_drain();
    println!("backend stopped");
    Ok(())
}

fn run_router(opts: &Opts) -> Result<(), String> {
    let directory_ref = opts.directory()?.clone();
    let orb = Orb::new();
    let client = DirectoryClient::new(orb.clone(), directory_ref);
    let resolver = Resolver::new(client, opts.name.clone());
    let router =
        Router::builder(resolver.clone()).start(&opts.listen).map_err(|e| e.to_string())?;
    // Satellite: a breaker tripping open on any backend leg drops the
    // cached resolution, so the next call re-reads the directory.
    router.pool().add_breaker_listener(resolver.clone());

    println!("router ready on {}", router.endpoint());
    match resolver.resolved_ref() {
        Some(backend) => {
            println!("  service `{}` -> {}", opts.name, backend);
            println!("  clients call: {}", router.service_ref(backend.object_id, &backend.type_id));
        }
        None => {
            println!(
                "  service `{}` has no providers yet; clients call \
                 {} once backends register",
                opts.name,
                router.service_ref(1, ECHO_REPO_ID)
            );
        }
    }

    wait_for_quit();
    router.shutdown();
    orb.shutdown();
    println!("router stopped");
    Ok(())
}
