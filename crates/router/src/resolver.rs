//! Client-side discovery: write-all registration, read-any resolution,
//! and the cached, breaker-invalidated [`Resolver`] that feeds a
//! [`Router`](heidl_rmi::Router) its backend membership.

use crate::discovery::{DirectoryStub, Membership, NotFound};
use heidl_rmi::{
    BackendSource, BreakerListener, BreakerState, Endpoint, ObjectRef, Orb, RmiError, RmiResult,
};
use parking_lot::Mutex;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A client of the replicated directory.
///
/// Reads (`resolve`, `poll`) go through the failover reference spanning
/// all replicas — the ORB's multi-endpoint invocation tries them in
/// order, and both methods are `@idempotent` in the IDL, so mid-call
/// failover is safe. Writes (`register`, `deregister`) fan out to
/// **every** replica individually: a write that reaches at least one
/// replica succeeds, and lease renewal repairs the replicas it missed.
pub struct DirectoryClient {
    orb: Orb,
    /// The read path: one stub over the combined failover ref.
    read: DirectoryStub,
    /// The write-all set: each replica addressed individually.
    replicas: Vec<ObjectRef>,
}

impl DirectoryClient {
    /// Builds a client over the replicas of `combined` (its primary
    /// endpoint plus every fallback — [`DirectoryCluster::client_ref`]
    /// produces exactly this shape).
    ///
    /// [`DirectoryCluster::client_ref`]: crate::DirectoryCluster::client_ref
    pub fn new(orb: Orb, combined: ObjectRef) -> DirectoryClient {
        let replicas = combined.endpoints().map(|e| combined.at_endpoint(e)).collect();
        let read = DirectoryStub::new(orb.clone(), combined);
        DirectoryClient { orb, read, replicas }
    }

    /// The replica references writes fan out to.
    pub fn replicas(&self) -> &[ObjectRef] {
        &self.replicas
    }

    /// Registers (or renews) `provider`'s lease under `name` on every
    /// reachable replica.
    ///
    /// # Errors
    ///
    /// Fails only when **no** replica accepted the write (the last
    /// error is returned); partial success is success — renewal repairs
    /// the rest.
    pub fn register(&self, name: &str, provider: &str, ttl_ms: i32) -> RmiResult<i64> {
        self.write_all(|stub| stub.register(name.to_owned(), provider.to_owned(), ttl_ms))
    }

    /// Drops `provider`'s lease under `name` on every reachable replica.
    ///
    /// # Errors
    ///
    /// Fails only when no replica accepted the write. A replica missed
    /// here converges when the lease expires.
    pub fn deregister(&self, name: &str, provider: &str) -> RmiResult<i64> {
        self.write_all(|stub| stub.deregister(name.to_owned(), provider.to_owned()))
    }

    fn write_all(&self, write: impl Fn(&DirectoryStub) -> RmiResult<i64>) -> RmiResult<i64> {
        let mut generation = None;
        let mut last_err = None;
        for replica in &self.replicas {
            let stub = DirectoryStub::new(self.orb.clone(), replica.clone());
            match write(&stub) {
                Ok(g) => generation = Some(generation.map_or(g, |prev: i64| prev.max(g))),
                Err(e) => last_err = Some(e),
            }
        }
        match (generation, last_err) {
            (Some(g), _) => Ok(g),
            (None, Some(e)) => Err(e),
            (None, None) => Err(RmiError::Protocol("directory has no replicas".to_owned())),
        }
    }

    /// Resolves `name` to its combined failover reference, failing over
    /// across replicas. `Ok(None)` when no provider holds a live lease.
    ///
    /// # Errors
    ///
    /// Transport-level failure of every replica.
    pub fn resolve(&self, name: &str) -> RmiResult<Option<ObjectRef>> {
        match self.read.resolve(name.to_owned()) {
            Ok(combined) => Ok(combined.parse().ok()),
            Err(ref e) if NotFound::matches(e) => Ok(None),
            Err(e) => Err(e),
        }
    }

    /// The current membership of `name` (see the IDL's `poll`).
    ///
    /// # Errors
    ///
    /// Transport-level failure of every replica.
    pub fn poll(&self, name: &str, known_generation: i64) -> RmiResult<Membership> {
        self.read.poll(name.to_owned(), known_generation)
    }
}

/// How stale a cached resolution may be before the next read re-polls.
const DEFAULT_CACHE_TTL: Duration = Duration::from_millis(500);

#[derive(Clone)]
struct Cached {
    objref: Option<ObjectRef>,
    generation: i64,
    at: Instant,
}

/// A caching resolver for one service name — the [`BackendSource`] a
/// router (or a direct client) plugs in.
///
/// Resolutions are cached for a TTL; within it, `backends()` costs a
/// mutex lock. The cache is dropped early in two cases: the source's
/// `invalidate()` hint (a forward found every candidate unusable), and —
/// the satellite fix this type exists for — a **breaker-open
/// notification** for any endpoint in the cached membership. Register
/// the resolver on the pool whose breakers guard the backends
/// (`router.pool().add_breaker_listener(...)`): the moment a leg trips
/// open, the cached ref is invalidated and the next call re-resolves,
/// instead of dialing a dead backend until the TTL runs out.
pub struct Resolver {
    client: DirectoryClient,
    name: String,
    ttl: Duration,
    cache: Mutex<Option<Cached>>,
}

impl Resolver {
    /// A resolver for `name` with the default cache TTL.
    pub fn new(client: DirectoryClient, name: impl Into<String>) -> Arc<Resolver> {
        Resolver::with_ttl(client, name, DEFAULT_CACHE_TTL)
    }

    /// A resolver for `name` caching resolutions for `ttl`.
    pub fn with_ttl(
        client: DirectoryClient,
        name: impl Into<String>,
        ttl: Duration,
    ) -> Arc<Resolver> {
        Arc::new(Resolver { client, name: name.into(), ttl, cache: Mutex::new(None) })
    }

    /// The service name this resolver tracks.
    pub fn service(&self) -> &str {
        &self.name
    }

    /// The resolved failover reference (cached), `None` when no provider
    /// is live or the directory is unreachable.
    pub fn resolved_ref(&self) -> Option<ObjectRef> {
        self.fresh().objref
    }

    /// Whether a resolution is currently cached (tests).
    pub fn is_cached(&self) -> bool {
        self.cache.lock().is_some()
    }

    fn fresh(&self) -> Cached {
        {
            let cache = self.cache.lock();
            if let Some(cached) = cache.as_ref() {
                if cached.at.elapsed() < self.ttl {
                    return cached.clone();
                }
            }
        }
        // Resolve outside the cache lock (a wire round trip may block on
        // failover timeouts); concurrent misses race harmlessly — last
        // writer wins with an equally-fresh answer.
        let known = self.cache.lock().as_ref().map_or(0, |c| c.generation);
        let polled = self.client.poll(&self.name, known);
        let cached = match polled {
            Ok(membership) => Cached {
                objref: if membership.providers > 0 {
                    membership.combined_ref.parse().ok()
                } else {
                    None
                },
                // Floor at what we already saw: a replica that predates
                // the server-side max-merge (mid-rollout) could still
                // answer behind the generation a failed-over peer gave
                // us, and `BackendSource::generation` must be monotonic.
                generation: membership.generation.max(known),
                at: Instant::now(),
            },
            // Directory unreachable: cache the miss briefly so a storm of
            // calls does not hammer a dead directory, but keep the old
            // generation so recovery is detected.
            Err(_) => Cached { objref: None, generation: known, at: Instant::now() },
        };
        *self.cache.lock() = Some(cached.clone());
        cached
    }
}

impl BackendSource for Resolver {
    fn generation(&self) -> u64 {
        self.fresh().generation.max(0) as u64
    }

    fn backends(&self) -> Vec<Endpoint> {
        match self.fresh().objref {
            Some(objref) => objref.endpoints().cloned().collect(),
            None => Vec::new(),
        }
    }

    fn invalidate(&self) {
        *self.cache.lock() = None;
    }
}

impl BreakerListener for Resolver {
    fn on_breaker_transition(&self, endpoint: &Endpoint, _from: BreakerState, to: BreakerState) {
        if to != BreakerState::Open {
            return;
        }
        // Only a leg of *our* cached membership invalidates the cache;
        // other endpoints' breakers (the pool is shared) are none of our
        // business.
        let in_membership = {
            let cache = self.cache.lock();
            cache.as_ref().is_some_and(|c| {
                c.objref.as_ref().is_some_and(|r| r.endpoints().any(|e| e == endpoint))
            })
        };
        if in_membership {
            self.invalidate();
        }
    }
}

impl std::fmt::Debug for Resolver {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Resolver")
            .field("service", &self.name)
            .field("cached", &self.is_cached())
            .finish()
    }
}
