//! # heidl-router — the multi-node tier: discovery + gateway
//!
//! The paper's thesis is that stubs stay fixed while the machinery
//! underneath them is swapped; RAFDA (PAPERS.md) pushes the separation one
//! level up — *where* an object lives and *which* replica serves it is
//! distribution policy, not application code. This crate supplies that
//! policy layer for HeidiRMI:
//!
//! * a **[`Directory`](discovery) service** defined in heidl IDL
//!   (`idl/discovery.idl`) and compiled by our own code generator at build
//!   time — registrations are TTL leases, membership changes bump a
//!   generation counter, and `subscribe` is poll-based;
//! * a **replicated in-process implementation** ([`DirectoryServer`],
//!   [`DirectoryCluster`]): N replicas, each its own ORB with its own
//!   lease-reaper thread (joined on shutdown — no thread outlives its
//!   server), written to with client-side write-all and read through a
//!   failover reference spanning all replicas;
//! * a **directory-backed [`Resolver`]** implementing the router's
//!   [`BackendSource`](heidl_rmi::BackendSource): resolve results are
//!   cached with a TTL *and* invalidated the moment a failover leg's
//!   circuit breaker trips open, so clients stop dialing a dead backend
//!   long before the TTL expires;
//! * the **`heidl-node` binary** — `directory`, `backend`, and `router`
//!   roles in one executable, enough to run a whole cluster from a few
//!   shells (see README, "Running a multi-node cluster over telnet").
//!
//! The gateway fabric itself ([`heidl_rmi::Router`]) lives in the runtime
//! crate: it forwards request bodies verbatim (tokens, trace contexts and
//! request ids survive the hop) and needs nothing from codegen.

#![warn(missing_docs)]

/// Code generated at build time by the `rust` backend from
/// `idl/discovery.idl` — the discovery tier's own IDL-defined surface.
#[allow(missing_docs, unused_imports, non_upper_case_globals, clippy::all)]
pub mod discovery {
    include!(concat!(env!("OUT_DIR"), "/discovery.rs"));
}

pub mod directory;
pub mod resolver;

pub use directory::{DirectoryCluster, DirectoryCore, DirectoryServer};
pub use resolver::{DirectoryClient, Resolver};
