//! The directory service: TTL-leased name registrations behind the
//! IDL-defined [`Directory`](crate::discovery) interface, replicated by
//! running N independent [`DirectoryServer`]s.
//!
//! Replication is deliberately coordination-free (write-all/read-any):
//! registrars write every replica they can reach, resolvers read any one
//! through a failover reference, and the TTL lease renewal loop repairs
//! replicas that missed a write — a replica that was partitioned during a
//! `register` converges on the next renewal, and one that missed a
//! `deregister` converges when the lease expires. Generations are
//! per-replica (they order one replica's answers, not the cluster's),
//! but `poll` max-merges the caller's known generation into the replica
//! it lands on — so across failover a client's observed generation is
//! monotonic even when it hops to a replica that missed writes.

use crate::discovery::{DirectorySkel, Directory_REPO_ID, Membership, NotFound};
use heidl_rmi::{DispatchKind, Endpoint, ObjectRef, Orb, RmiResult, ServerPolicy};
use parking_lot::{Condvar, Mutex};
use std::collections::HashMap;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// One name's lease table: provider ref string → lease expiry.
type Leases = HashMap<String, Instant>;

#[derive(Default)]
struct CoreState {
    names: HashMap<String, Leases>,
    generation: i64,
}

/// The directory's lease table and generation counter — the servant
/// state behind one replica, shared with its lease reaper.
#[derive(Default)]
pub struct DirectoryCore {
    state: Mutex<CoreState>,
}

impl DirectoryCore {
    /// An empty directory at generation 0.
    pub fn new() -> DirectoryCore {
        DirectoryCore::default()
    }

    /// Grants or renews `provider`'s lease under `name` for `ttl_ms`.
    /// Renewals do not bump the generation (membership did not change);
    /// new leases do. Returns the generation after the change.
    pub fn register(&self, name: &str, provider: &str, ttl_ms: i32) -> i64 {
        let ttl = Duration::from_millis(u64::from(ttl_ms.max(1).unsigned_abs()));
        let mut state = self.state.lock();
        let leases = state.names.entry(name.to_owned()).or_default();
        let fresh = leases.insert(provider.to_owned(), Instant::now() + ttl).is_none();
        if fresh {
            state.generation += 1;
        }
        state.generation
    }

    /// Drops `provider`'s lease under `name` (a no-op when absent).
    /// Returns the generation after the change.
    pub fn deregister(&self, name: &str, provider: &str) -> i64 {
        let mut state = self.state.lock();
        if let Some(leases) = state.names.get_mut(name) {
            if leases.remove(provider).is_some() {
                state.generation += 1;
            }
            if state.names.get(name).is_some_and(Leases::is_empty) {
                state.names.remove(name);
            }
        }
        state.generation
    }

    /// The membership of `name`: generation, combined failover ref (empty
    /// string when no live providers), and live provider count. Expired
    /// leases are purged first, so a crashed backend ages out of answers
    /// even between reaper ticks.
    pub fn membership(&self, name: &str) -> (i64, String, i32) {
        let mut state = self.state.lock();
        purge(&mut state, Instant::now());
        let Some(leases) = state.names.get(name) else {
            return (state.generation, String::new(), 0);
        };
        // Deterministic provider order (registration timestamps are not
        // reproducible) so every replica builds the same combined ref
        // from the same lease set.
        let mut providers: Vec<&String> = leases.keys().collect();
        providers.sort();
        let combined = combine_refs(&providers);
        (state.generation, combined, providers.len() as i32)
    }

    /// Current generation (expired leases purged first, so the counter
    /// reflects ages-outs promptly).
    pub fn generation(&self) -> i64 {
        let mut state = self.state.lock();
        purge(&mut state, Instant::now());
        state.generation
    }

    /// Max-merges a generation observed elsewhere into this replica's
    /// counter. Generations are natively per-replica; a client that
    /// failed over after seeing generation G on a partitioned peer
    /// gossips G here via `poll`'s `known_generation`, and this replica
    /// fast-forwards so its answers never appear to rewind history.
    /// Returns the (possibly advanced) generation.
    pub fn observe_generation(&self, known: i64) -> i64 {
        let mut state = self.state.lock();
        state.generation = state.generation.max(known);
        state.generation
    }

    /// Drops every expired lease; returns how many were reaped.
    pub fn reap(&self) -> usize {
        purge(&mut self.state.lock(), Instant::now())
    }

    /// Raw lease count for `name`, **without** purging expired entries —
    /// observes what the background reaper (as opposed to the read path,
    /// which purges inline) has actually done.
    pub fn lease_count(&self, name: &str) -> usize {
        self.state.lock().names.get(name).map_or(0, Leases::len)
    }
}

/// Lock-held purge of expired leases; bumps the generation when any go.
fn purge(state: &mut CoreState, now: Instant) -> usize {
    let mut reaped = 0;
    state.names.retain(|_, leases| {
        let before = leases.len();
        leases.retain(|_, expiry| *expiry > now);
        reaped += before - leases.len();
        !leases.is_empty()
    });
    if reaped > 0 {
        state.generation += 1;
    }
    reaped
}

/// Folds provider ref strings into one failover reference: the first
/// parsable provider contributes the primary endpoint, object id and
/// type; every further provider contributes its primary endpoint as a
/// fallback. Providers of one name must therefore export their servant
/// under the same object id — true by construction when each backend is
/// a fresh ORB exporting its service first (ids start at 1).
fn combine_refs(providers: &[&String]) -> String {
    let mut parsed = providers.iter().filter_map(|p| p.parse::<ObjectRef>().ok());
    let Some(first) = parsed.next() else { return String::new() };
    let fallbacks: Vec<Endpoint> =
        parsed.map(|r| r.endpoint).filter(|e| *e != first.endpoint).collect();
    ObjectRef::with_fallbacks(first.endpoint.clone(), fallbacks, first.object_id, first.type_id)
        .to_string()
}

/// The servant adapter: implements the *generated*
/// [`DirectoryServant`](crate::discovery::DirectoryServant) trait over a
/// [`DirectoryCore`] — the dogfooding seam where our own compiler's
/// output serves our own infrastructure.
struct CoreServant {
    core: Arc<DirectoryCore>,
}

impl heidl_rmi::RemoteObject for CoreServant {
    fn type_id(&self) -> &str {
        Directory_REPO_ID
    }
}

impl crate::discovery::DirectoryServant for CoreServant {
    fn register(&self, name: String, provider: String, ttl_ms: i32) -> RmiResult<i64> {
        Ok(self.core.register(&name, &provider, ttl_ms))
    }

    fn deregister(&self, name: String, provider: String) -> RmiResult<i64> {
        Ok(self.core.deregister(&name, &provider))
    }

    fn resolve(&self, name: String) -> RmiResult<String> {
        let (_, combined, providers) = self.core.membership(&name);
        if providers == 0 {
            return Err(NotFound { detail: name }.to_error());
        }
        Ok(combined)
    }

    fn poll(&self, name: String, known_generation: i64) -> RmiResult<Membership> {
        // A poller that failed over from a replica further ahead carries
        // that history in `known_generation`; merge it first so this
        // answer's generation can never rewind below what the client
        // already saw.
        self.core.observe_generation(known_generation);
        let (generation, combined_ref, providers) = self.core.membership(&name);
        Ok(Membership { generation, combined_ref, providers })
    }

    fn generation(&self) -> RmiResult<i64> {
        Ok(self.core.generation())
    }
}

/// How often a replica's reaper sweeps for expired leases.
const REAP_INTERVAL: Duration = Duration::from_millis(25);

/// One directory replica: its own ORB serving the generated
/// [`DirectorySkel`], plus a lease-reaper thread that ages out providers
/// which stopped renewing. The reaper is stop-signalled and **joined** on
/// [`DirectoryServer::shutdown`] and on drop — it can never outlive the
/// server (the same discipline as the ORB's heartbeat prober).
pub struct DirectoryServer {
    orb: Orb,
    core: Arc<DirectoryCore>,
    objref: ObjectRef,
    reaper: Mutex<Option<ReaperHandle>>,
}

struct ReaperHandle {
    stop: Arc<ReaperStop>,
    thread: JoinHandle<()>,
}

#[derive(Default)]
struct ReaperStop {
    stopped: Mutex<bool>,
    cv: Condvar,
}

impl ReaperStop {
    fn request(&self) {
        *self.stopped.lock() = true;
        self.cv.notify_all();
    }

    /// Waits up to `timeout`; `true` means stop was requested.
    fn wait(&self, timeout: Duration) -> bool {
        let mut stopped = self.stopped.lock();
        if !*stopped {
            self.cv.wait_for(&mut stopped, timeout);
        }
        *stopped
    }
}

impl DirectoryServer {
    /// Binds `addr` (e.g. `"127.0.0.1:0"`), exports the directory, and
    /// starts the lease reaper.
    ///
    /// # Errors
    ///
    /// Propagates bind/export failures from the ORB.
    pub fn start(addr: &str) -> RmiResult<DirectoryServer> {
        // Directories answer tiny requests and must stay responsive while
        // application traffic storms elsewhere; a short drain keeps
        // cluster teardown snappy.
        let policy = ServerPolicy::default().with_drain_timeout(Duration::from_secs(1));
        DirectoryServer::start_with_policy(addr, policy)
    }

    /// As [`DirectoryServer::start`] with an explicit server policy.
    ///
    /// # Errors
    ///
    /// Propagates bind/export failures from the ORB.
    pub fn start_with_policy(addr: &str, policy: ServerPolicy) -> RmiResult<DirectoryServer> {
        let orb = Orb::builder().server_policy(policy).build();
        orb.serve(addr)?;
        let core = Arc::new(DirectoryCore::new());
        let servant = Arc::new(CoreServant { core: Arc::clone(&core) });
        let skel = DirectorySkel::new(servant, orb.clone(), DispatchKind::Hash);
        let objref = orb.export(skel)?;
        let stop = Arc::new(ReaperStop::default());
        let reaper_core = Arc::clone(&core);
        let reaper_stop = Arc::clone(&stop);
        let thread = std::thread::Builder::new()
            .name("heidl-lease-reaper".to_owned())
            .spawn(move || {
                while !reaper_stop.wait(REAP_INTERVAL) {
                    reaper_core.reap();
                }
            })
            .map_err(heidl_rmi::RmiError::Io)?;
        Ok(DirectoryServer {
            orb,
            core,
            objref,
            reaper: Mutex::new(Some(ReaperHandle { stop, thread })),
        })
    }

    /// The reference clients talk to this replica with.
    pub fn object_ref(&self) -> &ObjectRef {
        &self.objref
    }

    /// This replica's bound endpoint.
    pub fn endpoint(&self) -> Endpoint {
        self.objref.endpoint.clone()
    }

    /// Direct access to the lease table (in-process observability).
    pub fn core(&self) -> &Arc<DirectoryCore> {
        &self.core
    }

    /// This replica's ORB (tests probe `_metrics` through it).
    pub fn orb(&self) -> &Orb {
        &self.orb
    }

    /// Stops the reaper (joining it) and drains the ORB. Idempotent.
    /// Returns `true` when in-flight requests finished within the drain
    /// budget.
    pub fn shutdown(&self) -> bool {
        if let Some(handle) = self.reaper.lock().take() {
            handle.stop.request();
            let _ = handle.thread.join();
        }
        self.orb.shutdown_and_drain()
    }
}

impl Drop for DirectoryServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl std::fmt::Debug for DirectoryServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DirectoryServer").field("objref", &self.objref.to_string()).finish()
    }
}

/// N directory replicas plus the failover reference spanning them —
/// what a client hands its [`DirectoryClient`](crate::DirectoryClient).
pub struct DirectoryCluster {
    replicas: Vec<DirectoryServer>,
}

impl DirectoryCluster {
    /// Starts `n` replicas on loopback ports.
    ///
    /// # Errors
    ///
    /// Propagates the first replica start failure (already-started
    /// replicas shut down on drop).
    pub fn start(n: usize) -> RmiResult<DirectoryCluster> {
        let mut replicas = Vec::with_capacity(n);
        for _ in 0..n {
            replicas.push(DirectoryServer::start("127.0.0.1:0")?);
        }
        Ok(DirectoryCluster { replicas })
    }

    /// The replicas, in start order.
    pub fn replicas(&self) -> &[DirectoryServer] {
        &self.replicas
    }

    /// A failover reference across every replica: reads try replica 0
    /// first and fail over down the list. Directory skeletons are each
    /// replica's first export, so the shared object id holds by
    /// construction.
    pub fn client_ref(&self) -> ObjectRef {
        let first = self.replicas[0].object_ref();
        let fallbacks =
            self.replicas[1..].iter().map(|r| r.object_ref().endpoint.clone()).collect();
        ObjectRef::with_fallbacks(
            first.endpoint.clone(),
            fallbacks,
            first.object_id,
            first.type_id.clone(),
        )
    }

    /// Every replica's individual reference (the write-all set).
    pub fn replica_refs(&self) -> Vec<ObjectRef> {
        self.replicas.iter().map(|r| r.object_ref().clone()).collect()
    }

    /// Shuts every replica down (reaper joined, ORB drained).
    pub fn shutdown(&self) {
        for replica in &self.replicas {
            replica.shutdown();
        }
    }
}

impl std::fmt::Debug for DirectoryCluster {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DirectoryCluster").field("replicas", &self.replicas.len()).finish()
    }
}
