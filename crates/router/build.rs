//! Build script: compiles `idl/discovery.idl` — the discovery tier's own
//! interface, written in heidl IDL — with the `rust` backend. The
//! directory service is defined by the same compiler it serves: its
//! stubs and skeletons are generated, not hand-written.

use std::path::PathBuf;

fn main() {
    let idl_path = "../../idl/discovery.idl";
    println!("cargo:rerun-if-changed={idl_path}");
    let idl = std::fs::read_to_string(idl_path).expect("read idl/discovery.idl");
    let files = heidl_codegen::compile("rust", &idl, "discovery")
        .unwrap_or_else(|e| panic!("heidlc failed on idl/discovery.idl: {e}"));
    let out_dir = PathBuf::from(std::env::var("OUT_DIR").expect("OUT_DIR"));
    files.write_to(&out_dir).expect("write generated code");
    assert!(
        files.file("discovery.rs").is_some(),
        "rust backend should emit discovery.rs, got {:?}",
        files.names()
    );
}
