//! Integration tests for the discovery tier: lease expiry, write-all
//! replication with read-side failover, generation counting, and the
//! breaker-driven invalidation of cached resolutions.

use heidl_rmi::breaker::BreakerConfig;
use heidl_rmi::{BackendSource, ConnectionPool, Endpoint, Orb};
use heidl_router::discovery::DirectoryStub;
use heidl_router::{DirectoryClient, DirectoryCluster, DirectoryServer, Resolver};
use std::time::{Duration, Instant};

fn provider(port: u16) -> String {
    format!("@tcp:127.0.0.1:{port}#1#IDL:heidl/Echo:1.0")
}

#[test]
fn register_resolve_deregister_round_trip() {
    let server = DirectoryServer::start("127.0.0.1:0").unwrap();
    let orb = Orb::new();
    let client = DirectoryClient::new(orb.clone(), server.object_ref().clone());

    assert_eq!(client.resolve("echo").unwrap(), None, "empty directory");

    let g1 = client.register("echo", &provider(9101), 5_000).unwrap();
    let resolved = client.resolve("echo").unwrap().expect("one provider");
    assert_eq!(resolved.endpoint.port, 9101);
    assert_eq!(resolved.type_id, "IDL:heidl/Echo:1.0");

    // A second provider joins: the combined ref gains a fallback profile
    // and the generation moves.
    let g2 = client.register("echo", &provider(9102), 5_000).unwrap();
    assert!(g2 > g1, "fresh lease bumps the generation ({g1} -> {g2})");
    let resolved = client.resolve("echo").unwrap().expect("two providers");
    assert_eq!(resolved.endpoints().count(), 2);

    // Renewal is not a membership change.
    let g3 = client.register("echo", &provider(9102), 5_000).unwrap();
    assert_eq!(g3, g2, "renewing an existing lease must not bump the generation");

    let g4 = client.deregister("echo", &provider(9101)).unwrap();
    assert!(g4 > g3);
    let resolved = client.resolve("echo").unwrap().expect("one provider left");
    assert_eq!(resolved.endpoint.port, 9102);
    assert_eq!(resolved.endpoints().count(), 1);

    orb.shutdown();
    server.shutdown();
}

#[test]
fn leases_age_out_crashed_providers() {
    let server = DirectoryServer::start("127.0.0.1:0").unwrap();
    let orb = Orb::new();
    let client = DirectoryClient::new(orb.clone(), server.object_ref().clone());

    client.register("echo", &provider(9111), 80).unwrap();
    assert!(client.resolve("echo").unwrap().is_some());

    // No renewal: the reaper (or the next read) must expire the lease.
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        if client.resolve("echo").unwrap().is_none() {
            break;
        }
        assert!(Instant::now() < deadline, "expired lease never aged out");
        std::thread::sleep(Duration::from_millis(20));
    }

    orb.shutdown();
    server.shutdown();
}

#[test]
fn write_all_replication_survives_replica_failure() {
    let cluster = DirectoryCluster::start(3).unwrap();
    let orb = Orb::new();
    let client = DirectoryClient::new(orb.clone(), cluster.client_ref());

    client.register("echo", &provider(9121), 10_000).unwrap();

    // Every replica holds the lease independently.
    for replica in cluster.replicas() {
        let (_, _, count) = replica.core().membership("echo");
        assert_eq!(count, 1, "write-all must reach every replica");
    }

    // The primary read replica goes down; the failover ref reads from the
    // survivors without the registration being replayed.
    cluster.replicas()[0].shutdown();
    let resolved = client.resolve("echo").unwrap().expect("survivors still answer");
    assert_eq!(resolved.endpoint.port, 9121);

    // Writes also keep working while a replica is down (partial success).
    client.register("echo", &provider(9122), 10_000).unwrap();
    let resolved = client.resolve("echo").unwrap().unwrap();
    assert_eq!(resolved.endpoints().count(), 2);

    orb.shutdown();
    cluster.shutdown();
}

#[test]
fn poll_reports_generation_and_membership() {
    let server = DirectoryServer::start("127.0.0.1:0").unwrap();
    let orb = Orb::new();
    let client = DirectoryClient::new(orb.clone(), server.object_ref().clone());

    let m0 = client.poll("echo", 0).unwrap();
    assert_eq!(m0.providers, 0);
    assert_eq!(m0.combined_ref, "");

    let gen = client.register("echo", &provider(9131), 5_000).unwrap();
    let m1 = client.poll("echo", m0.generation).unwrap();
    assert_eq!(m1.generation, gen);
    assert_eq!(m1.providers, 1);
    assert!(m1.combined_ref.contains("9131"), "combined ref carries the provider");

    orb.shutdown();
    server.shutdown();
}

#[test]
fn generated_stub_speaks_to_the_directory_directly() {
    // The directory is an ordinary heidl object: its generated stub works
    // like any other, including the raised NotFound exception.
    let server = DirectoryServer::start("127.0.0.1:0").unwrap();
    let orb = Orb::new();
    let stub = DirectoryStub::new(orb.clone(), server.object_ref().clone());

    let err = stub.resolve("missing".to_owned()).unwrap_err();
    assert!(
        heidl_router::discovery::NotFound::matches(&err),
        "resolve of an unknown name raises Discovery::NotFound, got {err:?}"
    );
    stub.register("echo".to_owned(), provider(9141), 5_000).unwrap();
    let combined = stub.resolve("echo".to_owned()).unwrap();
    assert!(combined.contains("9141"));
    assert!(stub.generation().unwrap() >= 1);

    orb.shutdown();
    server.shutdown();
}

#[test]
fn resolver_caches_within_ttl_and_refreshes_after() {
    let server = DirectoryServer::start("127.0.0.1:0").unwrap();
    let orb = Orb::new();
    let client = DirectoryClient::new(orb.clone(), server.object_ref().clone());
    client.register("echo", &provider(9151), 10_000).unwrap();

    let resolver = Resolver::with_ttl(
        DirectoryClient::new(orb.clone(), server.object_ref().clone()),
        "echo",
        Duration::from_millis(60),
    );
    assert_eq!(resolver.backends().len(), 1);
    assert!(resolver.is_cached());

    // A membership change within the TTL is invisible (cached)...
    client.register("echo", &provider(9152), 10_000).unwrap();
    assert_eq!(resolver.backends().len(), 1, "TTL cache hides the new provider");

    // ...and visible once the TTL lapses.
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        if resolver.backends().len() == 2 {
            break;
        }
        assert!(Instant::now() < deadline, "resolver never refreshed after TTL");
        std::thread::sleep(Duration::from_millis(20));
    }

    orb.shutdown();
    server.shutdown();
}

#[test]
fn breaker_open_invalidates_cached_resolution() {
    let server = DirectoryServer::start("127.0.0.1:0").unwrap();
    let orb = Orb::new();
    let client = DirectoryClient::new(orb.clone(), server.object_ref().clone());
    client.register("echo", &provider(9161), 10_000).unwrap();

    // A long TTL: without the breaker hook, the stale entry would be
    // served for an hour.
    let resolver = Resolver::with_ttl(
        DirectoryClient::new(orb.clone(), server.object_ref().clone()),
        "echo",
        Duration::from_secs(3600),
    );
    assert_eq!(resolver.backends().len(), 1);
    assert!(resolver.is_cached());

    // The pool the router would use: the resolver listens for breaker
    // transitions on it.
    let pool = ConnectionPool::new();
    pool.set_breaker_config(BreakerConfig {
        failure_threshold: 2,
        cooldown: Duration::from_secs(60),
        ..BreakerConfig::default()
    });
    pool.add_breaker_listener(resolver.clone());

    // Trip the breaker guarding the cached backend leg.
    let backend = Endpoint::new("tcp", "127.0.0.1", 9161);
    let breaker = pool.breaker(&backend);
    for _ in 0..2 {
        let token = breaker.try_admit().expect("closed breaker admits");
        breaker.record_outcome(token, false);
    }

    assert!(!resolver.is_cached(), "breaker tripping open must invalidate the cached resolution");

    // An unrelated endpoint's breaker must NOT invalidate the fresh cache.
    assert_eq!(resolver.backends().len(), 1, "re-resolve after invalidation");
    let stranger = Endpoint::new("tcp", "127.0.0.1", 9162);
    let other = pool.breaker(&stranger);
    for _ in 0..2 {
        let token = other.try_admit().expect("closed breaker admits");
        other.record_outcome(token, false);
    }
    assert!(resolver.is_cached(), "unrelated breaker must not evict the cache");

    orb.shutdown();
    server.shutdown();
}

#[test]
fn poll_generation_never_rewinds_across_failover() {
    // The failover-rewind regression: replica 0 races ahead of replica 1
    // during a partition; when replica 0 then dies, polls fail over to
    // replica 1 — whose native generation is *behind* what the client
    // already saw. `poll` must max-merge the caller's known generation so
    // the observed sequence stays monotonic.
    let cluster = DirectoryCluster::start(2).unwrap();
    let orb = Orb::new();
    let client = DirectoryClient::new(orb.clone(), cluster.client_ref());

    // A healthy write reaches both replicas.
    client.register("echo", &provider(9181), 10_000).unwrap();

    // Partition: writes land only on replica 0 (applied straight to its
    // core, as a registrar that can't reach replica 1 would), racing its
    // generation several steps ahead.
    let ahead = cluster.replicas()[0].core();
    ahead.register("echo", &provider(9182), 10_000);
    ahead.register("echo", &provider(9183), 10_000);
    ahead.deregister("echo", &provider(9183));

    // The client polls and observes replica 0's (higher) generation.
    let seen = client.poll("echo", 0).unwrap();
    let behind = cluster.replicas()[1].core().generation();
    assert!(
        seen.generation > behind,
        "precondition: replica 0 ({}) must be ahead of replica 1 ({behind})",
        seen.generation
    );

    // Heal-by-failover: replica 0 dies, the next poll lands on replica 1.
    cluster.replicas()[0].shutdown();
    let after = client.poll("echo", seen.generation).unwrap();
    assert!(
        after.generation >= seen.generation,
        "generation rewound across failover: {} -> {}",
        seen.generation,
        after.generation
    );

    // And replica 1 itself fast-forwarded: later polls with a stale
    // known generation still answer from the merged counter.
    let again = client.poll("echo", 0).unwrap();
    assert!(again.generation >= seen.generation, "merge did not stick on the survivor");

    orb.shutdown();
    cluster.shutdown();
}

#[test]
fn resolver_generation_is_monotonic_across_failover() {
    // Same scenario one layer up: the cached `Resolver` feeding a router
    // its `BackendSource::generation` must never report a lower value
    // after failing over to a lagging replica.
    let cluster = DirectoryCluster::start(2).unwrap();
    let orb = Orb::new();
    let client = DirectoryClient::new(orb.clone(), cluster.client_ref());
    client.register("echo", &provider(9191), 10_000).unwrap();

    let ahead = cluster.replicas()[0].core();
    ahead.register("echo", &provider(9192), 10_000);
    ahead.deregister("echo", &provider(9192));

    // TTL zero: every read re-polls, so the failover happens under us.
    let resolver = Resolver::with_ttl(
        DirectoryClient::new(orb.clone(), cluster.client_ref()),
        "echo",
        Duration::ZERO,
    );
    let seen = resolver.generation();
    cluster.replicas()[0].shutdown();
    let after = resolver.generation();
    assert!(after >= seen, "resolver generation rewound across failover: {seen} -> {after}");

    orb.shutdown();
    cluster.shutdown();
}

#[test]
fn reaper_thread_stops_with_the_server() {
    let server = DirectoryServer::start("127.0.0.1:0").unwrap();
    let core = server.core().clone();
    core.register("echo", &provider(9171), 40);

    // While the server runs, the background reaper expires the lease on
    // its own — observed through the non-purging lease_count, so the
    // read path cannot do the reaper's work for it.
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        if core.lease_count("echo") == 0 {
            break;
        }
        assert!(Instant::now() < deadline, "reaper never expired the lease");
        std::thread::sleep(Duration::from_millis(10));
    }

    // shutdown() joins the reaper. Register an already-doomed lease
    // directly on the core: with no reaper left alive (and no reads to
    // purge inline), it just sits there expired.
    assert!(server.shutdown(), "clean shutdown joins reaper and drains");
    core.register("echo", &provider(9172), 1);
    std::thread::sleep(Duration::from_millis(100));
    assert_eq!(core.lease_count("echo"), 1, "no reaper left running after shutdown");
}
