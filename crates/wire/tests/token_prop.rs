//! Property tests for the optional trailing **invocation-token section**
//! (`Protocol::encode_token` / `Protocol::extract_token`).
//!
//! Same contract as the context section (`context_prop.rs`): a body with
//! the section must look *byte-identical* to an old reader, and a body
//! without it must never produce a phantom token. On top of that, the two
//! suffixes must compose — token first, context last — with each extractor
//! recovering its own section.

use heidl_wire::{CdrProtocol, Decoder, Encoder, Protocol, TextProtocol, WireResult};
use proptest::prelude::*;

/// One marshal-able value; a reduced palette is enough to exercise every
/// alignment and token shape the tail parser can meet.
#[derive(Debug, Clone, PartialEq)]
enum Val {
    Bool(bool),
    Octet(u8),
    Long(i32),
    ULongLong(u64),
    Str(String),
    Group(Vec<Val>),
}

fn val_strategy() -> impl Strategy<Value = Val> {
    let leaf = prop_oneof![
        any::<bool>().prop_map(Val::Bool),
        any::<u8>().prop_map(Val::Octet),
        any::<i32>().prop_map(Val::Long),
        any::<u64>().prop_map(Val::ULongLong),
        // Arbitrary printable strings; the no-token property separately
        // filters marker look-alikes (see below).
        "\\PC{0,16}".prop_map(Val::Str),
    ];
    leaf.prop_recursive(2, 12, 3, |inner| {
        proptest::collection::vec(inner, 0..3).prop_map(Val::Group)
    })
}

fn put(v: &Val, enc: &mut dyn Encoder) {
    match v {
        Val::Bool(x) => enc.put_bool(*x),
        Val::Octet(x) => enc.put_octet(*x),
        Val::Long(x) => enc.put_long(*x),
        Val::ULongLong(x) => enc.put_ulonglong(*x),
        Val::Str(x) => enc.put_string(x),
        Val::Group(items) => {
            enc.begin();
            for i in items {
                put(i, enc);
            }
            enc.end();
        }
    }
}

fn get(template: &Val, dec: &mut dyn Decoder) -> WireResult<Val> {
    Ok(match template {
        Val::Bool(_) => Val::Bool(dec.get_bool()?),
        Val::Octet(_) => Val::Octet(dec.get_octet()?),
        Val::Long(_) => Val::Long(dec.get_long()?),
        Val::ULongLong(_) => Val::ULongLong(dec.get_ulonglong()?),
        Val::Str(_) => Val::Str(dec.get_string()?),
        Val::Group(items) => {
            dec.begin()?;
            let mut out = Vec::with_capacity(items.len());
            for i in items {
                out.push(get(i, dec)?);
            }
            dec.end()?;
            Val::Group(out)
        }
    })
}

fn protocols() -> Vec<Box<dyn Protocol>> {
    vec![Box::new(TextProtocol), Box::new(CdrProtocol)]
}

fn encode(
    p: &dyn Protocol,
    values: &[Val],
    tok: Option<(u64, u64)>,
    ctx: Option<(u64, u64)>,
) -> Vec<u8> {
    let mut enc = p.encoder();
    for v in values {
        put(v, enc.as_mut());
    }
    if let Some((session, seq)) = tok {
        assert!(p.encode_token(enc.as_mut(), session, seq), "{}", p.name());
    }
    if let Some((call, parent)) = ctx {
        assert!(p.encode_context(enc.as_mut(), call, parent), "{}", p.name());
    }
    enc.finish()
}

/// True when any string anywhere in `values` contains either text marker —
/// such an argument can legitimately look like a tail section to the
/// parser (a documented, benign ambiguity), so the no-phantom property
/// excludes it.
fn mentions_marker(values: &[Val]) -> bool {
    values.iter().any(|v| match v {
        Val::Str(s) => s.contains("~tok") || s.contains("~ctx"),
        Val::Group(items) => mentions_marker(items),
        _ => false,
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// The token section is a pure suffix: the tokened body begins with
    /// the exact bytes of the token-free body, so an old reader (which
    /// stops after the declared fields) sees an identical message.
    #[test]
    fn token_is_a_pure_suffix(
        values in proptest::collection::vec(val_strategy(), 0..8),
        session in any::<u64>(),
        seq in any::<u64>(),
    ) {
        for p in protocols() {
            let plain = encode(p.as_ref(), &values, None, None);
            let with_tok = encode(p.as_ref(), &values, Some((session, seq)), None);
            prop_assert!(with_tok.starts_with(&plain), "{}", p.name());
            prop_assert!(with_tok.len() > plain.len(), "{}", p.name());
        }
    }

    /// Old-reader round trip with BOTH suffixes stacked: every declared
    /// field decodes identically, and each extractor recovers exactly its
    /// own pair of ids.
    #[test]
    fn declared_fields_decode_identically_with_token_and_context(
        values in proptest::collection::vec(val_strategy(), 0..8),
        session in any::<u64>(),
        seq in any::<u64>(),
        call in any::<u64>(),
        parent in any::<u64>(),
    ) {
        for p in protocols() {
            let body = encode(p.as_ref(), &values, Some((session, seq)), Some((call, parent)));
            prop_assert_eq!(p.extract_token(&body), Some((session, seq)), "{}", p.name());
            prop_assert_eq!(p.extract_context(&body), Some((call, parent)), "{}", p.name());
            let mut dec = p.decoder(body).unwrap();
            for v in &values {
                let got = get(v, dec.as_mut())
                    .map_err(|e| TestCaseError::fail(format!("{}: {e} for {v:?}", p.name())))?;
                prop_assert_eq!(&got, v, "{}", p.name());
            }
        }
    }

    /// A token-free body never yields a phantom token — with or without a
    /// context section stacked on top (modulo the documented text
    /// ambiguity when an argument string contains a marker).
    #[test]
    fn no_phantom_token_on_plain_bodies(
        values in proptest::collection::vec(val_strategy(), 0..8)
            .prop_filter("args containing a marker are ambiguous by design", |vs| !mentions_marker(vs)),
        call in any::<u64>(),
        parent in any::<u64>(),
    ) {
        for p in protocols() {
            let plain = encode(p.as_ref(), &values, None, None);
            prop_assert_eq!(p.extract_token(&plain), None, "{}", p.name());
            let ctx_only = encode(p.as_ref(), &values, None, Some((call, parent)));
            prop_assert_eq!(p.extract_token(&ctx_only), None, "{}", p.name());
            prop_assert_eq!(p.extract_context(&ctx_only), Some((call, parent)), "{}", p.name());
        }
    }

    /// Token extraction never panics on arbitrary bytes.
    #[test]
    fn extract_token_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..128)) {
        for p in protocols() {
            let _ = p.extract_token(&bytes);
        }
    }
}
