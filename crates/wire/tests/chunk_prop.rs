//! Property tests for the trailing **chunk section**
//! (`Protocol::encode_chunk` / `Protocol::extract_chunk`) and the
//! [`ChunkAssembler`] that validates hostile chunk sequences.
//!
//! Same contract as the token and context sections: a chunked frame must
//! look *byte-identical* to an old reader on its declared fields, an
//! unchunked frame must never yield a phantom chunk tail, and all three
//! suffixes must layer — token, context, chunk — with each extractor
//! recovering its own section.

use heidl_wire::{
    CdrProtocol, ChunkAssembler, DecodeLimits, Decoder, Encoder, Protocol, TextProtocol, WireResult,
};
use proptest::prelude::*;

/// One marshal-able value; a reduced palette is enough to exercise every
/// alignment and token shape the tail parser can meet.
#[derive(Debug, Clone, PartialEq)]
enum Val {
    Bool(bool),
    Octet(u8),
    Long(i32),
    ULongLong(u64),
    Str(String),
    Group(Vec<Val>),
}

fn val_strategy() -> impl Strategy<Value = Val> {
    let leaf = prop_oneof![
        any::<bool>().prop_map(Val::Bool),
        any::<u8>().prop_map(Val::Octet),
        any::<i32>().prop_map(Val::Long),
        any::<u64>().prop_map(Val::ULongLong),
        "\\PC{0,16}".prop_map(Val::Str),
    ];
    leaf.prop_recursive(2, 12, 3, |inner| {
        proptest::collection::vec(inner, 0..3).prop_map(Val::Group)
    })
}

fn put(v: &Val, enc: &mut dyn Encoder) {
    match v {
        Val::Bool(x) => enc.put_bool(*x),
        Val::Octet(x) => enc.put_octet(*x),
        Val::Long(x) => enc.put_long(*x),
        Val::ULongLong(x) => enc.put_ulonglong(*x),
        Val::Str(x) => enc.put_string(x),
        Val::Group(items) => {
            enc.begin();
            for i in items {
                put(i, enc);
            }
            enc.end();
        }
    }
}

fn get(template: &Val, dec: &mut dyn Decoder) -> WireResult<Val> {
    Ok(match template {
        Val::Bool(_) => Val::Bool(dec.get_bool()?),
        Val::Octet(_) => Val::Octet(dec.get_octet()?),
        Val::Long(_) => Val::Long(dec.get_long()?),
        Val::ULongLong(_) => Val::ULongLong(dec.get_ulonglong()?),
        Val::Str(_) => Val::Str(dec.get_string()?),
        Val::Group(items) => {
            dec.begin()?;
            let mut out = Vec::with_capacity(items.len());
            for i in items {
                out.push(get(i, dec)?);
            }
            dec.end()?;
            Val::Group(out)
        }
    })
}

fn protocols() -> Vec<Box<dyn Protocol>> {
    vec![Box::new(TextProtocol), Box::new(CdrProtocol)]
}

#[allow(clippy::fn_params_excessive_bools)]
fn encode(
    p: &dyn Protocol,
    values: &[Val],
    tok: Option<(u64, u64)>,
    ctx: Option<(u64, u64)>,
    chunk: Option<(u64, bool)>,
) -> Vec<u8> {
    let mut enc = p.encoder();
    for v in values {
        put(v, enc.as_mut());
    }
    if let Some((session, seq)) = tok {
        assert!(p.encode_token(enc.as_mut(), session, seq), "{}", p.name());
    }
    if let Some((call, parent)) = ctx {
        assert!(p.encode_context(enc.as_mut(), call, parent), "{}", p.name());
    }
    if let Some((index, last)) = chunk {
        assert!(p.encode_chunk(enc.as_mut(), index, last), "{}", p.name());
    }
    enc.finish()
}

/// True when any string anywhere in `values` contains a tail marker —
/// such an argument can legitimately look like a tail section to the
/// parser (a documented, benign ambiguity), so the no-phantom property
/// excludes it.
fn mentions_marker(values: &[Val]) -> bool {
    values.iter().any(|v| match v {
        Val::Str(s) => s.contains("~tok") || s.contains("~ctx") || s.contains("~chunk"),
        Val::Group(items) => mentions_marker(items),
        _ => false,
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// The chunk section is a pure suffix: the chunked frame begins with
    /// the exact bytes of the unchunked frame, so an old reader (which
    /// stops after the declared fields) sees an identical message.
    #[test]
    fn chunk_is_a_pure_suffix(
        values in proptest::collection::vec(val_strategy(), 0..8),
        index in any::<u64>(),
        last in any::<bool>(),
    ) {
        for p in protocols() {
            let plain = encode(p.as_ref(), &values, None, None, None);
            let chunked = encode(p.as_ref(), &values, None, None, Some((index, last)));
            prop_assert!(chunked.starts_with(&plain), "{}", p.name());
            prop_assert!(chunked.len() > plain.len(), "{}", p.name());
            prop_assert_eq!(p.extract_chunk(&chunked), Some((index, last)), "{}", p.name());
        }
    }

    /// All three suffixes layered — token, then context, then chunk:
    /// every declared field decodes identically and each extractor
    /// recovers exactly its own section.
    #[test]
    fn declared_fields_decode_identically_with_all_suffixes(
        values in proptest::collection::vec(val_strategy(), 0..8),
        session in any::<u64>(),
        seq in any::<u64>(),
        call in any::<u64>(),
        parent in any::<u64>(),
        index in any::<u64>(),
        last in any::<bool>(),
    ) {
        for p in protocols() {
            let body = encode(
                p.as_ref(),
                &values,
                Some((session, seq)),
                Some((call, parent)),
                Some((index, last)),
            );
            prop_assert_eq!(p.extract_chunk(&body), Some((index, last)), "{}", p.name());
            prop_assert_eq!(p.extract_token(&body), Some((session, seq)), "{}", p.name());
            prop_assert_eq!(p.extract_context(&body), Some((call, parent)), "{}", p.name());
            let mut dec = p.decoder(body).unwrap();
            for v in &values {
                let got = get(v, dec.as_mut())
                    .map_err(|e| TestCaseError::fail(format!("{}: {e} for {v:?}", p.name())))?;
                prop_assert_eq!(&got, v, "{}", p.name());
            }
        }
    }

    /// An unchunked frame never yields a phantom chunk tail — with or
    /// without the other suffixes stacked (modulo the documented text
    /// ambiguity when an argument string contains a marker).
    #[test]
    fn no_phantom_chunk_on_unchunked_frames(
        values in proptest::collection::vec(val_strategy(), 0..8)
            .prop_filter("args containing a marker are ambiguous by design", |vs| !mentions_marker(vs)),
        session in any::<u64>(),
        seq in any::<u64>(),
        call in any::<u64>(),
        parent in any::<u64>(),
    ) {
        for p in protocols() {
            let plain = encode(p.as_ref(), &values, None, None, None);
            prop_assert_eq!(p.extract_chunk(&plain), None, "{}", p.name());
            let suffixed =
                encode(p.as_ref(), &values, Some((session, seq)), Some((call, parent)), None);
            prop_assert_eq!(p.extract_chunk(&suffixed), None, "{}", p.name());
            prop_assert_eq!(p.extract_token(&suffixed), Some((session, seq)), "{}", p.name());
        }
    }

    /// Chunk extraction never panics on arbitrary bytes.
    #[test]
    fn extract_chunk_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..128)) {
        for p in protocols() {
            let _ = p.extract_chunk(&bytes);
        }
    }

    /// Hostile chunk sequences die cleanly in the assembler before any
    /// buffering: the only accepted stream is the in-order prefix
    /// `0, 1, …` ending at the first `last = true`, bounded by
    /// `max_stream_chunks` — lying `last` flags, oversized or interleaved
    /// indices all fail.
    #[test]
    fn assembler_accepts_exactly_the_in_order_prefix(
        tails in proptest::collection::vec((0u64..16, any::<bool>()), 1..24),
        max_chunks in 1u32..16,
    ) {
        let limits = DecodeLimits::default().with_max_stream_chunks(max_chunks);
        let mut asm = ChunkAssembler::new(limits);
        let mut expected: u64 = 0;
        let mut done = false;
        for (index, last) in tails {
            let verdict = asm.accept(index, last);
            let legal = !done && index == expected && index < u64::from(max_chunks);
            if legal {
                prop_assert_eq!(verdict.unwrap(), last);
                expected += 1;
                done = last;
            } else {
                prop_assert!(verdict.is_err());
                // One bad tail poisons the stream: nothing is accepted after,
                // not even the index that would otherwise have been legal.
                prop_assert!(asm.accept(expected, true).is_err());
                break;
            }
        }
        prop_assert_eq!(asm.is_done(), done);
        prop_assert_eq!(asm.accepted(), expected);
    }
}
