//! Malformed-input hardening: arbitrary, truncated, and
//! oversized-length byte streams fed to both protocol decoders and both
//! deframers must produce errors, never panics — and allocations must
//! respect [`DecodeLimits`].
//!
//! These are the wire-level half of the server's overload protection: a
//! bootstrap port is reachable by `telnet`, so every byte sequence a peer
//! can type (or a fuzzer can emit) has to come back as a clean
//! `WireError`.

use heidl_wire::{
    CdrProtocol, DecodeLimits, Decoder, Protocol, TextProtocol, WireError, WireResult,
};
use proptest::prelude::*;

/// Tight limits so the properties exercise the bounds, not just UTF-8 and
/// framing validation.
fn tight() -> DecodeLimits {
    DecodeLimits::default()
        .with_max_frame_bytes(4 * 1024)
        .with_max_string_bytes(512)
        .with_max_sequence_len(256)
        .with_max_depth(8)
}

/// Pulls every getter once against the decoder; all we assert is
/// error-not-panic (and bounded allocation, checked separately).
fn drain_decoder(mut dec: Box<dyn Decoder>) {
    let _ = dec.get_bool();
    let _ = dec.get_octet();
    let _ = dec.get_char();
    let _ = dec.get_short();
    let _ = dec.get_ushort();
    let _ = dec.get_long();
    let _ = dec.get_ulong();
    let _ = dec.get_longlong();
    let _ = dec.get_ulonglong();
    let _ = dec.get_float();
    let _ = dec.get_double();
    let _ = dec.get_string();
    let _ = dec.get_len();
    let _ = dec.begin();
    let _ = dec.end();
    let _ = dec.at_end();
}

fn protocols() -> [Box<dyn Protocol>; 2] {
    [Box::new(TextProtocol), Box::new(CdrProtocol)]
}

/// Repeatedly deframes until the buffer yields nothing more; every
/// extracted body goes through the limited decoder.
fn pump(p: &dyn Protocol, mut buf: Vec<u8>, limits: &DecodeLimits) -> WireResult<()> {
    for _ in 0..64 {
        match p.deframe_limited(&mut buf, limits)? {
            Some(body) => drain_decoder(p.decoder_with_limits(body, limits)?),
            None => break,
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Arbitrary garbage bytes: both decoders fail cleanly, never panic.
    #[test]
    fn garbage_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        let limits = tight();
        for p in protocols() {
            if let Ok(dec) = p.decoder_with_limits(bytes.clone(), &limits) {
                drain_decoder(dec);
            }
            let _ = pump(p.as_ref(), bytes.clone(), &limits);
        }
    }

    /// Truncating a *valid* message at every prefix length still only
    /// produces errors (usually `UnexpectedEnd`), never panics.
    #[test]
    fn truncated_valid_messages_never_panic(cut in 0usize..64, n in any::<i64>(), s in ".{0,24}") {
        let limits = tight();
        for p in protocols() {
            let mut enc = p.encoder();
            enc.put_longlong(n);
            enc.put_string(&s);
            enc.begin();
            enc.put_len(3);
            enc.end();
            let body = enc.finish();
            let cut = cut.min(body.len());
            if let Ok(dec) = p.decoder_with_limits(body[..cut].to_vec(), &limits) {
                drain_decoder(dec);
            }
        }
    }

    /// A hostile CDR length prefix far beyond the limit is a `Bounds`
    /// error — the decoder must not allocate anywhere near that much.
    #[test]
    fn oversized_cdr_length_prefixes_are_bounded(len in 513u32..u32::MAX) {
        let limits = tight();
        let mut body = len.to_le_bytes().to_vec();
        body.extend_from_slice(&[0u8; 8]); // a few token body bytes
        let mut dec = CdrProtocol.decoder_with_limits(body, &limits).unwrap();
        let bounded = matches!(
            dec.get_string(),
            Err(WireError::Bounds { .. } | WireError::UnexpectedEnd { .. })
        );
        prop_assert!(bounded, "oversized string prefix not bounded");
        // get_len on the same prefix is bounded by max_sequence_len.
        let mut dec = CdrProtocol
            .decoder_with_limits(len.to_le_bytes().to_vec(), &limits)
            .unwrap();
        let bounded = matches!(dec.get_len(), Err(WireError::Bounds { .. }));
        prop_assert!(bounded, "oversized sequence prefix not bounded");
    }

    /// A GIOP header whose length field exceeds the frame bound is
    /// rejected from the header alone, before the body streams in.
    #[test]
    fn oversized_giop_frames_rejected_from_header(len in 4097u32..u32::MAX) {
        let limits = tight();
        let mut hdr = b"GIOP\x01\x00\x01\x00".to_vec();
        hdr.extend_from_slice(&len.to_le_bytes());
        let rejected = matches!(
            CdrProtocol.deframe_limited(&mut hdr, &limits),
            Err(WireError::Bounds { .. })
        );
        prop_assert!(rejected, "oversized GIOP header not rejected");
    }

    /// An endless text line stops being buffered once it passes the
    /// frame bound, so a peer cannot grow server memory newline-free.
    #[test]
    fn endless_text_lines_stop_buffering(extra in 1usize..2048) {
        let limits = tight();
        let mut buf = vec![b'a'; 4 * 1024 + extra];
        let stopped = matches!(
            TextProtocol.deframe_limited(&mut buf, &limits),
            Err(WireError::Bounds { what: "text frame", .. })
        );
        prop_assert!(stopped, "endless text line kept buffering");
    }

    /// Oversized text tokens are rejected during tokenization, so the
    /// decoder never materializes a string beyond the bound.
    #[test]
    fn oversized_text_tokens_are_bounded(extra in 1usize..1024, quoted in any::<bool>()) {
        let limits = tight();
        let inner = "x".repeat(512 + extra);
        let msg = if quoted { format!("\"{inner}\"") } else { inner };
        let bounded = matches!(
            TextProtocol.decoder_with_limits(msg.into_bytes(), &limits),
            Err(WireError::Bounds { what: "string", .. })
        );
        prop_assert!(bounded, "oversized text token not bounded");
    }

    /// Nesting bombs (`{{{{...`) hit the depth bound on both protocols.
    #[test]
    fn nesting_bombs_hit_the_depth_bound(depth in 9u32..64) {
        let limits = tight();
        for p in protocols() {
            let body = match p.name() {
                "tcp" => "{ ".repeat(depth as usize).into_bytes(),
                _ => Vec::new(), // CDR begins are virtual: drive the decoder directly
            };
            let mut dec = p.decoder_with_limits(body, &limits).unwrap();
            let mut hit = false;
            for _ in 0..depth {
                if matches!(dec.begin(), Err(WireError::Bounds { what: "nesting depth", .. })) {
                    hit = true;
                    break;
                }
            }
            prop_assert!(hit, "{}: depth bound never enforced", p.name());
        }
    }

    /// Valid frames interleaved with garbage framing still never panic,
    /// and valid in-bound messages round-trip through the limited path.
    #[test]
    fn valid_messages_survive_the_limited_path(n in any::<i32>(), s in "[a-z]{0,32}") {
        let limits = tight();
        for p in protocols() {
            let mut enc = p.encoder();
            enc.put_long(n);
            enc.put_string(&s);
            let body = enc.finish();
            let mut stream = Vec::new();
            p.frame(&body, &mut stream);
            let got = p.deframe_limited(&mut stream, &limits).unwrap().unwrap();
            let mut dec = p.decoder_with_limits(got, &limits).unwrap();
            prop_assert_eq!(dec.get_long().unwrap(), n);
            prop_assert_eq!(dec.get_string().unwrap(), s.clone());
        }
    }
}
