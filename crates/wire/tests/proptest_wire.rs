//! Property tests for the wire layer.
//!
//! The decoders and deframers consume bytes from the network; whatever
//! arrives, they must fail with `WireError`, never panic. And any value
//! sequence must round-trip identically on both protocols.

use heidl_wire::{CdrProtocol, Decoder, Encoder, Protocol, TextProtocol, WireResult};
use proptest::prelude::*;

/// One marshal-able value, used to drive encoder/decoder pairs generically.
#[derive(Debug, Clone, PartialEq)]
enum Val {
    Bool(bool),
    Octet(u8),
    Char(char),
    Short(i16),
    UShort(u16),
    Long(i32),
    ULong(u32),
    LongLong(i64),
    ULongLong(u64),
    Float(f32),
    Double(f64),
    Str(String),
    Len(u32),
    Group(Vec<Val>),
}

fn val_strategy() -> impl Strategy<Value = Val> {
    let leaf = prop_oneof![
        any::<bool>().prop_map(Val::Bool),
        any::<u8>().prop_map(Val::Octet),
        any::<char>().prop_map(Val::Char),
        any::<i16>().prop_map(Val::Short),
        any::<u16>().prop_map(Val::UShort),
        any::<i32>().prop_map(Val::Long),
        any::<u32>().prop_map(Val::ULong),
        any::<i64>().prop_map(Val::LongLong),
        any::<u64>().prop_map(Val::ULongLong),
        // Finite floats only: NaN breaks equality, and the text protocol
        // round-trips NaN by design (covered by a unit test).
        proptest::num::f32::NORMAL.prop_map(Val::Float),
        proptest::num::f64::NORMAL.prop_map(Val::Double),
        "\\PC{0,24}".prop_map(Val::Str),
        (0u32..100_000).prop_map(Val::Len),
    ];
    leaf.prop_recursive(3, 24, 4, |inner| {
        proptest::collection::vec(inner, 0..4).prop_map(Val::Group)
    })
}

fn put(v: &Val, enc: &mut dyn Encoder) {
    match v {
        Val::Bool(x) => enc.put_bool(*x),
        Val::Octet(x) => enc.put_octet(*x),
        Val::Char(x) => enc.put_char(*x),
        Val::Short(x) => enc.put_short(*x),
        Val::UShort(x) => enc.put_ushort(*x),
        Val::Long(x) => enc.put_long(*x),
        Val::ULong(x) => enc.put_ulong(*x),
        Val::LongLong(x) => enc.put_longlong(*x),
        Val::ULongLong(x) => enc.put_ulonglong(*x),
        Val::Float(x) => enc.put_float(*x),
        Val::Double(x) => enc.put_double(*x),
        Val::Str(x) => enc.put_string(x),
        Val::Len(x) => enc.put_len(*x),
        Val::Group(items) => {
            enc.begin();
            for i in items {
                put(i, enc);
            }
            enc.end();
        }
    }
}

fn get(template: &Val, dec: &mut dyn Decoder) -> WireResult<Val> {
    Ok(match template {
        Val::Bool(_) => Val::Bool(dec.get_bool()?),
        Val::Octet(_) => Val::Octet(dec.get_octet()?),
        Val::Char(_) => Val::Char(dec.get_char()?),
        Val::Short(_) => Val::Short(dec.get_short()?),
        Val::UShort(_) => Val::UShort(dec.get_ushort()?),
        Val::Long(_) => Val::Long(dec.get_long()?),
        Val::ULong(_) => Val::ULong(dec.get_ulong()?),
        Val::LongLong(_) => Val::LongLong(dec.get_longlong()?),
        Val::ULongLong(_) => Val::ULongLong(dec.get_ulonglong()?),
        Val::Float(_) => Val::Float(dec.get_float()?),
        Val::Double(_) => Val::Double(dec.get_double()?),
        Val::Str(_) => Val::Str(dec.get_string()?),
        Val::Len(_) => Val::Len(dec.get_len()?),
        Val::Group(items) => {
            dec.begin()?;
            let mut out = Vec::with_capacity(items.len());
            for i in items {
                out.push(get(i, dec)?);
            }
            dec.end()?;
            Val::Group(out)
        }
    })
}

fn protocols() -> Vec<Box<dyn Protocol>> {
    vec![Box::new(TextProtocol), Box::new(CdrProtocol)]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn values_roundtrip_on_both_protocols(values in proptest::collection::vec(val_strategy(), 0..12)) {
        for p in protocols() {
            let mut enc = p.encoder();
            for v in &values {
                put(v, enc.as_mut());
            }
            let body = enc.finish();
            let mut dec = p.decoder(body).unwrap();
            for v in &values {
                let got = get(v, dec.as_mut())
                    .map_err(|e| TestCaseError::fail(format!("{}: {e} for {v:?}", p.name())))?;
                prop_assert_eq!(&got, v, "{}", p.name());
            }
            prop_assert!(dec.at_end(), "{}", p.name());
        }
    }

    #[test]
    fn decoders_never_panic_on_arbitrary_bytes(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        for p in protocols() {
            if let Ok(mut dec) = p.decoder(bytes.clone()) {
                // Pull every getter; errors are fine, panics are not.
                let _ = dec.get_bool();
                let _ = dec.get_string();
                let _ = dec.get_long();
                let _ = dec.get_double();
                let _ = dec.get_len();
                let _ = dec.begin();
                let _ = dec.get_char();
                let _ = dec.end();
                while !dec.at_end() {
                    if dec.get_octet().is_err() {
                        break;
                    }
                }
            }
        }
    }

    #[test]
    fn deframers_never_panic_on_arbitrary_streams(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        for p in protocols() {
            let mut buf = bytes.clone();
            // Drain until error, empty, or no progress.
            loop {
                let before = buf.len();
                match p.deframe(&mut buf) {
                    Ok(Some(_)) if buf.len() < before => continue,
                    _ => break,
                }
            }
        }
    }

    #[test]
    fn framing_is_transparent_for_any_encoded_body(values in proptest::collection::vec(val_strategy(), 0..6)) {
        for p in protocols() {
            let mut enc = p.encoder();
            for v in &values {
                put(v, enc.as_mut());
            }
            let body = enc.finish();
            let mut stream = Vec::new();
            p.frame(&body, &mut stream);
            let got = p.deframe(&mut stream).unwrap().expect("one frame");
            prop_assert_eq!(got, body, "{}", p.name());
            prop_assert!(stream.is_empty());
        }
    }
}
