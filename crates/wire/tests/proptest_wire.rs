//! Property tests for the wire layer.
//!
//! The decoders and deframers consume bytes from the network; whatever
//! arrives, they must fail with `WireError`, never panic. And any value
//! sequence must round-trip identically on both protocols.

use heidl_wire::{
    CdrProtocol, DecodeLimits, Decoder, Encoder, FrameBuf, Protocol, TextProtocol, WireResult,
    MAX_FRAME_HEADER,
};
use proptest::prelude::*;

/// One marshal-able value, used to drive encoder/decoder pairs generically.
#[derive(Debug, Clone, PartialEq)]
enum Val {
    Bool(bool),
    Octet(u8),
    Char(char),
    Short(i16),
    UShort(u16),
    Long(i32),
    ULong(u32),
    LongLong(i64),
    ULongLong(u64),
    Float(f32),
    Double(f64),
    Str(String),
    Len(u32),
    Group(Vec<Val>),
}

fn val_strategy() -> impl Strategy<Value = Val> {
    let leaf = prop_oneof![
        any::<bool>().prop_map(Val::Bool),
        any::<u8>().prop_map(Val::Octet),
        any::<char>().prop_map(Val::Char),
        any::<i16>().prop_map(Val::Short),
        any::<u16>().prop_map(Val::UShort),
        any::<i32>().prop_map(Val::Long),
        any::<u32>().prop_map(Val::ULong),
        any::<i64>().prop_map(Val::LongLong),
        any::<u64>().prop_map(Val::ULongLong),
        // Finite floats only: NaN breaks equality, and the text protocol
        // round-trips NaN by design (covered by a unit test).
        proptest::num::f32::NORMAL.prop_map(Val::Float),
        proptest::num::f64::NORMAL.prop_map(Val::Double),
        "\\PC{0,24}".prop_map(Val::Str),
        (0u32..100_000).prop_map(Val::Len),
    ];
    leaf.prop_recursive(3, 24, 4, |inner| {
        proptest::collection::vec(inner, 0..4).prop_map(Val::Group)
    })
}

fn put(v: &Val, enc: &mut dyn Encoder) {
    match v {
        Val::Bool(x) => enc.put_bool(*x),
        Val::Octet(x) => enc.put_octet(*x),
        Val::Char(x) => enc.put_char(*x),
        Val::Short(x) => enc.put_short(*x),
        Val::UShort(x) => enc.put_ushort(*x),
        Val::Long(x) => enc.put_long(*x),
        Val::ULong(x) => enc.put_ulong(*x),
        Val::LongLong(x) => enc.put_longlong(*x),
        Val::ULongLong(x) => enc.put_ulonglong(*x),
        Val::Float(x) => enc.put_float(*x),
        Val::Double(x) => enc.put_double(*x),
        Val::Str(x) => enc.put_string(x),
        Val::Len(x) => enc.put_len(*x),
        Val::Group(items) => {
            enc.begin();
            for i in items {
                put(i, enc);
            }
            enc.end();
        }
    }
}

fn get(template: &Val, dec: &mut dyn Decoder) -> WireResult<Val> {
    Ok(match template {
        Val::Bool(_) => Val::Bool(dec.get_bool()?),
        Val::Octet(_) => Val::Octet(dec.get_octet()?),
        Val::Char(_) => Val::Char(dec.get_char()?),
        Val::Short(_) => Val::Short(dec.get_short()?),
        Val::UShort(_) => Val::UShort(dec.get_ushort()?),
        Val::Long(_) => Val::Long(dec.get_long()?),
        Val::ULong(_) => Val::ULong(dec.get_ulong()?),
        Val::LongLong(_) => Val::LongLong(dec.get_longlong()?),
        Val::ULongLong(_) => Val::ULongLong(dec.get_ulonglong()?),
        Val::Float(_) => Val::Float(dec.get_float()?),
        Val::Double(_) => Val::Double(dec.get_double()?),
        Val::Str(_) => Val::Str(dec.get_string()?),
        Val::Len(_) => Val::Len(dec.get_len()?),
        Val::Group(items) => {
            dec.begin()?;
            let mut out = Vec::with_capacity(items.len());
            for i in items {
                out.push(get(i, dec)?);
            }
            dec.end()?;
            Val::Group(out)
        }
    })
}

fn protocols() -> Vec<Box<dyn Protocol>> {
    vec![Box::new(TextProtocol), Box::new(CdrProtocol)]
}

/// Drains a byte stream with the legacy `Vec`-based deframer until it
/// yields nothing, errors, or stalls. Returns the bodies produced, the
/// first error (stringified), and the bytes left unconsumed.
fn drain_legacy(
    p: &dyn Protocol,
    bytes: &[u8],
    limits: &DecodeLimits,
) -> (Vec<Vec<u8>>, Option<String>, Vec<u8>) {
    let mut buf = bytes.to_vec();
    let mut out = Vec::new();
    loop {
        match p.deframe_limited(&mut buf, limits) {
            Ok(Some(b)) => out.push(b),
            Ok(None) => return (out, None, buf),
            Err(e) => return (out, Some(e.to_string()), buf),
        }
    }
}

/// Drains the same stream through the pooled zero-copy cursor.
fn drain_pooled(
    p: &dyn Protocol,
    bytes: &[u8],
    limits: &DecodeLimits,
) -> (Vec<Vec<u8>>, Option<String>, Vec<u8>) {
    let mut buf = FrameBuf::from_vec(bytes.to_vec());
    let mut out = Vec::new();
    loop {
        match p.deframe_pooled(&mut buf, limits) {
            Ok(Some(b)) => out.push(b.detach()),
            Ok(None) => return (out, None, buf.into_vec()),
            Err(e) => return (out, Some(e.to_string()), buf.into_vec()),
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn values_roundtrip_on_both_protocols(values in proptest::collection::vec(val_strategy(), 0..12)) {
        for p in protocols() {
            let mut enc = p.encoder();
            for v in &values {
                put(v, enc.as_mut());
            }
            let body = enc.finish();
            let mut dec = p.decoder(body).unwrap();
            for v in &values {
                let got = get(v, dec.as_mut())
                    .map_err(|e| TestCaseError::fail(format!("{}: {e} for {v:?}", p.name())))?;
                prop_assert_eq!(&got, v, "{}", p.name());
            }
            prop_assert!(dec.at_end(), "{}", p.name());
        }
    }

    #[test]
    fn decoders_never_panic_on_arbitrary_bytes(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        for p in protocols() {
            if let Ok(mut dec) = p.decoder(bytes.clone()) {
                // Pull every getter; errors are fine, panics are not.
                let _ = dec.get_bool();
                let _ = dec.get_string();
                let _ = dec.get_long();
                let _ = dec.get_double();
                let _ = dec.get_len();
                let _ = dec.begin();
                let _ = dec.get_char();
                let _ = dec.end();
                while !dec.at_end() {
                    if dec.get_octet().is_err() {
                        break;
                    }
                }
            }
        }
    }

    #[test]
    fn deframers_never_panic_on_arbitrary_streams(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        for p in protocols() {
            let mut buf = bytes.clone();
            // Drain until error, empty, or no progress.
            loop {
                let before = buf.len();
                match p.deframe(&mut buf) {
                    Ok(Some(_)) if buf.len() < before => continue,
                    _ => break,
                }
            }
        }
    }

    #[test]
    fn framing_is_transparent_for_any_encoded_body(values in proptest::collection::vec(val_strategy(), 0..6)) {
        for p in protocols() {
            let mut enc = p.encoder();
            for v in &values {
                put(v, enc.as_mut());
            }
            let body = enc.finish();
            let mut stream = Vec::new();
            p.frame(&body, &mut stream);
            let got = p.deframe(&mut stream).unwrap().expect("one frame");
            prop_assert_eq!(got, body, "{}", p.name());
            prop_assert!(stream.is_empty());
        }
    }

    /// The pooled cursor deframer is a drop-in for the legacy deframer on
    /// *any* byte stream — hostile or well-formed — under any frame bound:
    /// same bodies, same first error, same bytes left unconsumed.
    #[test]
    fn pooled_deframe_matches_legacy_on_arbitrary_streams(
        bytes in proptest::collection::vec(any::<u8>(), 0..512),
        limit in prop_oneof![Just(u64::MAX), 1u64..96],
    ) {
        for p in protocols() {
            let limits = DecodeLimits::default().with_max_frame_bytes(limit);
            let legacy = drain_legacy(p.as_ref(), &bytes, &limits);
            let pooled = drain_pooled(p.as_ref(), &bytes, &limits);
            prop_assert_eq!(&legacy, &pooled, "{} limit={}", p.name(), limit);
        }
    }

    /// Same equivalence on streams of well-formed frames, so the happy
    /// path is exercised deliberately rather than by luck of the fuzzer.
    #[test]
    fn pooled_deframe_matches_legacy_on_framed_payloads(
        payloads in proptest::collection::vec("\\PC{0,32}", 0..6),
    ) {
        for p in protocols() {
            let mut stream = Vec::new();
            for s in &payloads {
                let mut enc = p.encoder();
                enc.put_string(s);
                let body = enc.finish();
                p.frame(&body, &mut stream);
            }
            let limits = DecodeLimits::default();
            let legacy = drain_legacy(p.as_ref(), &stream, &limits);
            let pooled = drain_pooled(p.as_ref(), &stream, &limits);
            prop_assert_eq!(&legacy, &pooled, "{}", p.name());
            prop_assert!(legacy.1.is_none(), "{}: well-formed frames must drain cleanly", p.name());
            prop_assert_eq!(legacy.0.len(), payloads.len(), "{}", p.name());
        }
    }

    /// Frames arriving split across arbitrarily-sized reads reassemble
    /// byte-identically through the pooled cursor.
    #[test]
    fn pooled_deframe_reassembles_split_streams(
        payloads in proptest::collection::vec("\\PC{0,32}", 1..5),
        chunk in 1usize..9,
    ) {
        for p in protocols() {
            let mut stream = Vec::new();
            let mut bodies = Vec::new();
            for s in &payloads {
                let mut enc = p.encoder();
                enc.put_string(s);
                let body = enc.finish();
                p.frame(&body, &mut stream);
                bodies.push(body);
            }
            let limits = DecodeLimits::default();
            let mut fb = FrameBuf::new();
            let mut got = Vec::new();
            for piece in stream.chunks(chunk) {
                fb.extend_from_slice(piece);
                while let Some(b) = p.deframe_pooled(&mut fb, &limits).unwrap() {
                    got.push(b.detach());
                }
            }
            prop_assert_eq!(got, bodies, "{}", p.name());
            prop_assert!(fb.is_empty(), "{}", p.name());
        }
    }

    /// `frame_parts` (stack header + borrowed body + trailer) assembles to
    /// exactly the bytes `frame` would have produced.
    #[test]
    fn frame_parts_assembles_identically_to_frame(
        values in proptest::collection::vec(val_strategy(), 0..6),
    ) {
        for p in protocols() {
            let mut enc = p.encoder();
            for v in &values {
                put(v, enc.as_mut());
            }
            let body = enc.finish();
            let mut header = [0u8; MAX_FRAME_HEADER];
            let (header_len, trailer) =
                p.frame_parts(body.len(), &mut header).expect("both protocols support parts");
            let mut assembled = header[..header_len].to_vec();
            assembled.extend_from_slice(&body);
            assembled.extend_from_slice(trailer);
            let mut framed = Vec::new();
            p.frame(&body, &mut framed);
            prop_assert_eq!(assembled, framed, "{}", p.name());
        }
    }
}
