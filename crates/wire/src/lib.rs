//! # heidl-wire — wire protocols for HeidiRMI
//!
//! The protocol substrate from Welling & Ott (Middleware 2000): the
//! newline-terminated **text protocol** HeidiRMI actually used ("a newline
//! terminated string of ASCII characters", §3.1) and a **CDR/GIOP-lite
//! binary protocol** standing in for the general-purpose inter-ORB
//! protocols the paper compares against (§2).
//!
//! Both implement the same [`Encoder`]/[`Decoder`] pair — the marshaling
//! surface a `Call` object exposes to generated stubs — and the same
//! [`Protocol`] framing trait, so the ORB runtime is protocol-agnostic and
//! protocols are swappable per endpoint, which is the paper's whole point.
//!
//! ```
//! use heidl_wire::{Protocol, TextProtocol};
//!
//! let p = TextProtocol;
//! let mut enc = p.encoder();
//! enc.put_string("print");
//! enc.put_long(3);
//! let body = enc.finish();
//! assert_eq!(std::str::from_utf8(&body).unwrap(), r#""print" 3"#);
//!
//! let mut dec = p.decoder(body)?;
//! assert_eq!(dec.get_string()?, "print");
//! assert_eq!(dec.get_long()?, 3);
//! # Ok::<(), heidl_wire::WireError>(())
//! ```

#![warn(missing_docs)]

pub mod cdr;
pub mod chunk;
pub mod codec;
pub mod error;
pub mod limits;
pub mod plan;
pub mod pool;
pub mod protocol;
pub mod text;

pub use cdr::{CdrDecoder, CdrEncoder};
pub use chunk::ChunkAssembler;
pub use codec::{Decoder, Encoder};
pub use error::{WireError, WireResult};
pub use limits::DecodeLimits;
pub use plan::{CdrStructPlan, FieldKind, PlanValue};
pub use pool::{BufPool, FrameBuf, PooledBuf};
pub use protocol::{
    by_name, CdrProtocol, Protocol, TextProtocol, CDR_CHUNK_LEN, CDR_CHUNK_MAGIC, CDR_CONTEXT_LEN,
    CDR_CONTEXT_MAGIC, CDR_TOKEN_LEN, CDR_TOKEN_MAGIC, MAX_FRAME_HEADER, TEXT_CHUNK_MARKER,
    TEXT_CONTEXT_MARKER, TEXT_TOKEN_MARKER,
};
pub use text::{TextDecoder, TextEncoder};
