//! Reusable buffer management for the wire hot path.
//!
//! Every request and reply used to pay several transient heap
//! allocations: a body `Vec` from the encoder, a `framed` copy of header
//! plus body, and a deframed body copied back out of the read buffer.
//! This module removes the steady-state allocations without changing any
//! byte on the wire:
//!
//! * [`BufPool`] — a small sharded-mutex pool of `Vec<u8>`s. Buffers are
//!   cleared before they are retained and a capacity cap keeps a hostile
//!   jumbo frame from pinning memory in the pool forever.
//! * [`PooledBuf`] — an RAII handle that derefs to `Vec<u8>` and returns
//!   its storage to the pool on drop. Deframed bodies travel through the
//!   demux and decoder layers as `PooledBuf`s, so the storage recycles
//!   when the decode finishes.
//! * [`FrameBuf`] — a consume-from-front read cursor. `recv_into` appends
//!   at the tail, the deframer consumes from the head, and compaction is
//!   lazy and amortized — replacing the per-frame `drain(..).collect()`
//!   plus `to_vec()` double copy with a single copy into a pooled buffer.
//!
//! The pool interacts with [`DecodeLimits`](crate::DecodeLimits) only
//! indirectly: limits decide whether bytes are accepted at all; the pool
//! decides whether the backing storage is worth keeping afterwards.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;

/// Number of independently locked free-lists. Eight shards is plenty for
/// the worker-pool sizes this ORB runs (contention is per-push/pop, and
/// `try_lock` skips a busy shard rather than waiting).
const SHARD_COUNT: usize = 8;

/// Default cap on buffers retained per shard (64 buffers process-wide).
const DEFAULT_MAX_PER_SHARD: usize = 8;

/// Default capacity cap: buffers that grew beyond this are dropped on
/// recycle so one jumbo frame cannot pin megabytes in the pool.
const DEFAULT_MAX_RETAIN_CAPACITY: usize = 64 * 1024;

/// A sharded free-list of `Vec<u8>`s.
///
/// `new()` is `const`, so pools can live in statics — the process-wide
/// pool is [`global()`]. All operations use `try_lock` and fall back to
/// plain allocation, so the pool can never block the hot path.
#[derive(Debug)]
pub struct BufPool {
    shards: [Mutex<Vec<Vec<u8>>>; SHARD_COUNT],
    cursor: AtomicUsize,
    max_per_shard: usize,
    max_retain_capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    recycled: AtomicU64,
    discarded: AtomicU64,
}

/// Point-in-time counters for tests and diagnostics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolStats {
    /// `take_vec`/`get` calls served from the pool.
    pub hits: u64,
    /// `take_vec`/`get` calls that allocated fresh.
    pub misses: u64,
    /// Buffers accepted back into the pool.
    pub recycled: u64,
    /// Buffers dropped on recycle (over the capacity cap, shards full, or
    /// capacity zero).
    pub discarded: u64,
}

impl BufPool {
    /// Creates an empty pool with the default caps.
    pub const fn new() -> Self {
        BufPool::with_caps(DEFAULT_MAX_PER_SHARD, DEFAULT_MAX_RETAIN_CAPACITY)
    }

    /// Creates an empty pool retaining at most `max_per_shard` buffers per
    /// shard, each with capacity at most `max_retain_capacity`.
    pub const fn with_caps(max_per_shard: usize, max_retain_capacity: usize) -> Self {
        BufPool {
            shards: [const { Mutex::new(Vec::new()) }; SHARD_COUNT],
            cursor: AtomicUsize::new(0),
            max_per_shard,
            max_retain_capacity,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            recycled: AtomicU64::new(0),
            discarded: AtomicU64::new(0),
        }
    }

    /// Takes an empty buffer out of the pool, or allocates a fresh one.
    pub fn take_vec(&self) -> Vec<u8> {
        let start = self.cursor.fetch_add(1, Ordering::Relaxed);
        for i in 0..SHARD_COUNT {
            let Ok(mut shard) = self.shards[(start + i) % SHARD_COUNT].try_lock() else {
                continue;
            };
            if let Some(buf) = shard.pop() {
                drop(shard);
                self.hits.fetch_add(1, Ordering::Relaxed);
                debug_assert!(buf.is_empty(), "pooled buffers are stored cleared");
                return buf;
            }
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        Vec::new()
    }

    /// Clears `buf` and returns it to the pool, unless its capacity is
    /// zero, exceeds the retain cap, or every shard is full.
    pub fn recycle(&self, mut buf: Vec<u8>) {
        if buf.capacity() == 0 || buf.capacity() > self.max_retain_capacity {
            self.discarded.fetch_add(1, Ordering::Relaxed);
            return;
        }
        buf.clear();
        let start = self.cursor.fetch_add(1, Ordering::Relaxed);
        for i in 0..SHARD_COUNT {
            let Ok(mut shard) = self.shards[(start + i) % SHARD_COUNT].try_lock() else {
                continue;
            };
            if shard.len() < self.max_per_shard {
                shard.push(buf);
                self.recycled.fetch_add(1, Ordering::Relaxed);
                return;
            }
        }
        self.discarded.fetch_add(1, Ordering::Relaxed);
    }

    /// Takes a pooled buffer wrapped in an RAII handle that returns the
    /// storage here on drop.
    pub fn get(&'static self) -> PooledBuf {
        PooledBuf { buf: self.take_vec(), pool: Some(self) }
    }

    /// Wraps an existing buffer so its storage lands in this pool when the
    /// handle drops.
    pub fn adopt(&'static self, buf: Vec<u8>) -> PooledBuf {
        PooledBuf { buf, pool: Some(self) }
    }

    /// Snapshot of the pool counters.
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            recycled: self.recycled.load(Ordering::Relaxed),
            discarded: self.discarded.load(Ordering::Relaxed),
        }
    }

    /// Number of buffers currently idle in the pool.
    pub fn idle(&self) -> usize {
        self.shards.iter().map(|s| s.lock().map_or(0, |v| v.len())).sum()
    }
}

impl Default for BufPool {
    fn default() -> Self {
        BufPool::new()
    }
}

static GLOBAL: BufPool = BufPool::new();

/// The process-wide buffer pool used by the shipped codecs and framers.
pub fn global() -> &'static BufPool {
    &GLOBAL
}

/// Shorthand for [`global()`]`.recycle(buf)`.
pub fn recycle(buf: Vec<u8>) {
    GLOBAL.recycle(buf);
}

/// An owned byte buffer whose storage returns to a [`BufPool`] on drop.
///
/// Derefs to `Vec<u8>`; compares equal to anything byte-slice-like.
/// [`PooledBuf::detach`] (or `Vec::from`) takes the bytes out without
/// recycling them.
pub struct PooledBuf {
    buf: Vec<u8>,
    pool: Option<&'static BufPool>,
}

impl PooledBuf {
    /// Wraps a buffer with no backing pool: dropping it just frees it.
    pub fn unpooled(buf: Vec<u8>) -> Self {
        PooledBuf { buf, pool: None }
    }

    /// The buffer contents.
    pub fn as_slice(&self) -> &[u8] {
        &self.buf
    }

    /// Takes the bytes out; the storage is no longer returned to the pool.
    pub fn detach(mut self) -> Vec<u8> {
        self.pool = None;
        std::mem::take(&mut self.buf)
    }
}

impl Drop for PooledBuf {
    fn drop(&mut self) {
        if let Some(pool) = self.pool {
            pool.recycle(std::mem::take(&mut self.buf));
        }
    }
}

impl std::ops::Deref for PooledBuf {
    type Target = Vec<u8>;

    fn deref(&self) -> &Vec<u8> {
        &self.buf
    }
}

impl std::ops::DerefMut for PooledBuf {
    fn deref_mut(&mut self) -> &mut Vec<u8> {
        &mut self.buf
    }
}

impl AsRef<[u8]> for PooledBuf {
    fn as_ref(&self) -> &[u8] {
        &self.buf
    }
}

impl std::fmt::Debug for PooledBuf {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        std::fmt::Debug::fmt(&self.buf, f)
    }
}

impl<T: AsRef<[u8]> + ?Sized> PartialEq<T> for PooledBuf {
    fn eq(&self, other: &T) -> bool {
        self.buf.as_slice() == other.as_ref()
    }
}

impl Eq for PooledBuf {}

impl PartialEq<PooledBuf> for Vec<u8> {
    fn eq(&self, other: &PooledBuf) -> bool {
        self.as_slice() == other.as_slice()
    }
}

/// Adopts the buffer into the [`global()`] pool.
impl From<Vec<u8>> for PooledBuf {
    fn from(buf: Vec<u8>) -> Self {
        global().adopt(buf)
    }
}

impl From<PooledBuf> for Vec<u8> {
    fn from(buf: PooledBuf) -> Self {
        buf.detach()
    }
}

/// Minimum consumed prefix before [`FrameBuf`] considers compacting.
const COMPACT_MIN: usize = 4 * 1024;

/// When an idle `FrameBuf` holds more capacity than this, it shrinks back
/// to its initial capacity (a jumbo frame should not pin memory for the
/// connection's lifetime).
const SHRINK_TRIGGER: usize = 128 * 1024;

/// A consume-from-front read buffer for stream deframing.
///
/// The transport appends received bytes at the tail ([`FrameBuf::input`]);
/// the deframer reads [`FrameBuf::bytes`] and drops parsed prefixes with
/// [`FrameBuf::consume`]. Consuming just advances a read offset; the
/// consumed region is reclaimed lazily — when the buffer drains empty
/// (the common case: one frame per read) or when the dead prefix grows
/// past [`COMPACT_MIN`] and dominates the live bytes, keeping compaction
/// cost amortized O(1) per byte.
#[derive(Debug, Default)]
pub struct FrameBuf {
    buf: Vec<u8>,
    start: usize,
    initial_capacity: usize,
}

impl FrameBuf {
    /// Default initial capacity for per-connection read buffers: covers
    /// typical RMI requests without growth, small enough to be cheap per
    /// connection.
    pub const DEFAULT_CAPACITY: usize = 8 * 1024;

    /// Creates an empty buffer with [`FrameBuf::DEFAULT_CAPACITY`].
    pub fn new() -> Self {
        FrameBuf::with_capacity(FrameBuf::DEFAULT_CAPACITY)
    }

    /// Creates an empty buffer pre-sized to `capacity`.
    pub fn with_capacity(capacity: usize) -> Self {
        FrameBuf { buf: Vec::with_capacity(capacity), start: 0, initial_capacity: capacity }
    }

    /// Wraps existing bytes (read offset zero, no pre-sizing).
    pub fn from_vec(buf: Vec<u8>) -> Self {
        FrameBuf { buf, start: 0, initial_capacity: 0 }
    }

    /// The unconsumed bytes.
    pub fn bytes(&self) -> &[u8] {
        &self.buf[self.start..]
    }

    /// Number of unconsumed bytes.
    pub fn len(&self) -> usize {
        self.buf.len() - self.start
    }

    /// True when no unconsumed bytes remain.
    pub fn is_empty(&self) -> bool {
        self.start >= self.buf.len()
    }

    /// Total capacity of the backing storage.
    pub fn capacity(&self) -> usize {
        self.buf.capacity()
    }

    /// Drops `n` bytes from the front of [`FrameBuf::bytes`].
    ///
    /// # Panics
    ///
    /// Panics when `n` exceeds [`FrameBuf::len`].
    pub fn consume(&mut self, n: usize) {
        assert!(n <= self.len(), "consume({n}) beyond the {} buffered bytes", self.len());
        self.start += n;
        if self.start == self.buf.len() {
            self.buf.clear();
            self.start = 0;
        } else if self.start >= COMPACT_MIN && self.start >= self.buf.len() - self.start {
            self.compact();
        }
    }

    fn compact(&mut self) {
        let len = self.buf.len();
        self.buf.copy_within(self.start..len, 0);
        self.buf.truncate(len - self.start);
        self.start = 0;
    }

    /// Tail access for the transport read loop: received bytes must only
    /// be *appended* (`recv_into`-style); truncating below the already
    /// buffered length breaks the read offset.
    pub fn input(&mut self) -> &mut Vec<u8> {
        &mut self.buf
    }

    /// Appends bytes at the tail.
    pub fn extend_from_slice(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Releases excess capacity after a jumbo frame: when the buffer is
    /// empty and holds more than [`SHRINK_TRIGGER`] bytes of capacity, it
    /// shrinks back toward the initial capacity.
    pub fn maybe_shrink(&mut self) {
        if self.is_empty() && self.buf.capacity() > SHRINK_TRIGGER {
            self.buf.shrink_to(self.initial_capacity.max(FrameBuf::DEFAULT_CAPACITY));
        }
    }

    /// Unwraps into a plain `Vec` holding exactly the unconsumed bytes.
    pub fn into_vec(mut self) -> Vec<u8> {
        if self.start > 0 {
            self.compact();
        }
        self.buf
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    static TEST_POOL: BufPool = BufPool::with_caps(2, 1024);

    #[test]
    fn recycled_buffers_come_back_cleared() {
        static POOL: BufPool = BufPool::with_caps(4, 1024);
        let mut buf = POOL.take_vec();
        buf.extend_from_slice(b"dirty bytes");
        let cap = buf.capacity();
        POOL.recycle(buf);
        let again = POOL.take_vec();
        assert!(again.is_empty(), "pool must clear buffers before reuse");
        assert_eq!(again.capacity(), cap, "capacity is what the pool preserves");
    }

    #[test]
    fn capacity_cap_is_enforced() {
        static POOL: BufPool = BufPool::with_caps(4, 64);
        POOL.recycle(Vec::with_capacity(65));
        assert_eq!(POOL.idle(), 0, "an over-cap buffer must not be retained");
        assert_eq!(POOL.stats().discarded, 1);
        POOL.recycle(Vec::with_capacity(64));
        assert_eq!(POOL.idle(), 1);
    }

    #[test]
    fn per_shard_count_is_bounded() {
        static POOL: BufPool = BufPool::with_caps(1, 1024);
        for _ in 0..SHARD_COUNT * 3 {
            POOL.recycle(Vec::with_capacity(16));
        }
        assert!(POOL.idle() <= SHARD_COUNT, "at most max_per_shard per shard");
    }

    #[test]
    fn zero_capacity_buffers_are_not_pooled() {
        static POOL: BufPool = BufPool::with_caps(4, 1024);
        POOL.recycle(Vec::new());
        assert_eq!(POOL.idle(), 0);
    }

    #[test]
    fn pooled_buf_returns_on_drop_and_detach_opts_out() {
        let before = TEST_POOL.stats().recycled;
        let mut b = TEST_POOL.get();
        b.extend_from_slice(b"abc");
        drop(b);
        assert_eq!(TEST_POOL.stats().recycled, before + 1);

        let mut b = TEST_POOL.get();
        b.extend_from_slice(b"xyz");
        let v = b.detach();
        assert_eq!(v, b"xyz");
        assert_eq!(TEST_POOL.stats().recycled, before + 1, "detach must not recycle");
    }

    #[test]
    fn pooled_buf_equality_and_debug() {
        let mut b = PooledBuf::unpooled(Vec::new());
        b.extend_from_slice(b"hi");
        assert_eq!(b, b"hi");
        assert_eq!(b, vec![b'h', b'i']);
        assert_eq!(vec![b'h', b'i'], b);
        assert_eq!(format!("{b:?}"), format!("{:?}", b"hi"));
    }

    #[test]
    fn framebuf_consume_and_compact() {
        let mut fb = FrameBuf::with_capacity(16);
        fb.extend_from_slice(b"hello world");
        assert_eq!(fb.bytes(), b"hello world");
        fb.consume(6);
        assert_eq!(fb.bytes(), b"world");
        fb.consume(5);
        assert!(fb.is_empty());
        assert_eq!(fb.bytes(), b"");

        // Force the lazy-compaction path: a consumed prefix past
        // COMPACT_MIN that dominates the remainder.
        let mut fb = FrameBuf::new();
        fb.extend_from_slice(&vec![7u8; COMPACT_MIN + 100]);
        fb.consume(COMPACT_MIN + 50);
        assert_eq!(fb.bytes(), &[7u8; 50]);
        assert_eq!(fb.start, 0, "compaction reclaims the dead prefix");
    }

    #[test]
    #[should_panic(expected = "consume")]
    fn framebuf_overconsume_panics() {
        let mut fb = FrameBuf::from_vec(b"ab".to_vec());
        fb.consume(3);
    }

    #[test]
    fn framebuf_shrinks_after_jumbo() {
        let mut fb = FrameBuf::new();
        fb.extend_from_slice(&vec![0u8; SHRINK_TRIGGER + 1]);
        fb.consume(SHRINK_TRIGGER + 1);
        assert!(fb.capacity() > SHRINK_TRIGGER);
        fb.maybe_shrink();
        assert!(fb.capacity() <= SHRINK_TRIGGER, "jumbo capacity released");
        // Non-empty buffers never shrink (live bytes would be copied).
        let mut fb = FrameBuf::new();
        fb.extend_from_slice(&vec![0u8; SHRINK_TRIGGER + 1]);
        fb.maybe_shrink();
        assert!(fb.capacity() > SHRINK_TRIGGER);
    }

    #[test]
    fn framebuf_into_vec_keeps_unconsumed_tail() {
        let mut fb = FrameBuf::from_vec(b"abcdef".to_vec());
        fb.consume(2);
        assert_eq!(fb.into_vec(), b"cdef");
    }
}
