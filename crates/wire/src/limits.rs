//! Decode limits: the wire-level half of server overload protection.
//!
//! Length-prefixed protocols invite a classic attack: a frame whose
//! length field says "4 GB" costs the sender 12 bytes and the receiver an
//! allocation. [`DecodeLimits`] bounds everything a decoder allocates on
//! behalf of the peer — frame size, string bytes, sequence lengths, and
//! `begin`/`end` nesting depth — so hostile input is a clean
//! [`WireError`](crate::WireError), never an out-of-memory.
//!
//! Both codecs enforce the same limits uniformly: the CDR decoder checks
//! its binary length prefixes, the text decoder checks token sizes and
//! parsed lengths, and both framers check the frame bound before
//! buffering. The defaults reproduce the historical hard-coded 64 MiB
//! sanity bound, so existing deployments see no behavior change; servers
//! tighten them per deployment via `ServerPolicy` in `heidl-rmi`.

/// Upper bounds a decoder enforces against hostile or corrupt input.
///
/// ```
/// use heidl_wire::{CdrDecoder, Decoder, DecodeLimits, Encoder, CdrEncoder, WireError};
///
/// let mut enc = CdrEncoder::new();
/// enc.put_ulong(u32::MAX); // an absurd string length prefix
/// let limits = DecodeLimits::default().with_max_string_bytes(1024);
/// let mut dec = CdrDecoder::with_limits(enc.finish(), limits);
/// assert!(matches!(dec.get_string(), Err(WireError::Bounds { .. })));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DecodeLimits {
    /// Largest frame (message body plus framing) accepted off the stream.
    /// The deframers reject oversized length prefixes before buffering and
    /// cap how many bytes may be buffered while hunting for a delimiter.
    pub max_frame_bytes: u64,
    /// Largest decoded string, in bytes (including the CDR NUL).
    pub max_string_bytes: u32,
    /// Largest sequence length prefix [`get_len`](crate::Decoder::get_len)
    /// will hand back.
    pub max_sequence_len: u32,
    /// Deepest `begin`/`end` nesting a decoder will follow.
    pub max_depth: u32,
    /// Most chunk frames one chunked stream may carry. A lying peer can
    /// otherwise keep a stream open forever (never sending `last = 1`) or
    /// claim absurd chunk indices; reassembly rejects either before
    /// buffering. Each individual chunk is already bounded by
    /// `max_frame_bytes` at deframe time.
    pub max_stream_chunks: u32,
}

/// The historical hard sanity bound (64 MiB) both codecs shipped with.
const LEGACY_MAX: u32 = 64 * 1024 * 1024;

impl Default for DecodeLimits {
    /// Matches the pre-limits behavior: 64 MiB frames/strings/sequences,
    /// nesting bounded at 256 (effectively unbounded for real IDL types).
    fn default() -> Self {
        DecodeLimits {
            max_frame_bytes: LEGACY_MAX as u64,
            max_string_bytes: LEGACY_MAX,
            max_sequence_len: LEGACY_MAX,
            max_depth: 256,
            max_stream_chunks: 1 << 20,
        }
    }
}

impl DecodeLimits {
    /// Tight limits suitable for an internet-facing bootstrap port:
    /// 1 MiB frames, 256 KiB strings, 64 Ki sequence elements, depth 32.
    pub fn strict() -> DecodeLimits {
        DecodeLimits {
            max_frame_bytes: 1024 * 1024,
            max_string_bytes: 256 * 1024,
            max_sequence_len: 64 * 1024,
            max_depth: 32,
            max_stream_chunks: 4096,
        }
    }

    /// Sets the frame bound (clamped to ≥ 64 bytes so headers still fit).
    #[must_use]
    pub fn with_max_frame_bytes(mut self, max: u64) -> DecodeLimits {
        self.max_frame_bytes = max.max(64);
        self
    }

    /// Sets the string bound (clamped to ≥ 1).
    #[must_use]
    pub fn with_max_string_bytes(mut self, max: u32) -> DecodeLimits {
        self.max_string_bytes = max.max(1);
        self
    }

    /// Sets the sequence-length bound.
    #[must_use]
    pub fn with_max_sequence_len(mut self, max: u32) -> DecodeLimits {
        self.max_sequence_len = max;
        self
    }

    /// Sets the nesting-depth bound (clamped to ≥ 1).
    #[must_use]
    pub fn with_max_depth(mut self, max: u32) -> DecodeLimits {
        self.max_depth = max.max(1);
        self
    }

    /// Sets the per-stream chunk-count bound (clamped to ≥ 1).
    #[must_use]
    pub fn with_max_stream_chunks(mut self, max: u32) -> DecodeLimits {
        self.max_stream_chunks = max.max(1);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_reproduce_the_legacy_bound() {
        let d = DecodeLimits::default();
        assert_eq!(d.max_frame_bytes, 64 * 1024 * 1024);
        assert_eq!(d.max_string_bytes, 64 * 1024 * 1024);
        assert_eq!(d.max_sequence_len, 64 * 1024 * 1024);
        assert!(d.max_depth >= 64);
        assert_eq!(d.max_stream_chunks, 1 << 20);
    }

    #[test]
    fn builders_clamp_degenerate_values() {
        let d = DecodeLimits::default()
            .with_max_frame_bytes(0)
            .with_max_string_bytes(0)
            .with_max_depth(0)
            .with_max_stream_chunks(0);
        assert_eq!(d.max_frame_bytes, 64);
        assert_eq!(d.max_string_bytes, 1);
        assert_eq!(d.max_depth, 1);
        assert_eq!(d.max_stream_chunks, 1);
    }

    #[test]
    fn strict_is_tighter_than_default() {
        let s = DecodeLimits::strict();
        let d = DecodeLimits::default();
        assert!(s.max_frame_bytes < d.max_frame_bytes);
        assert!(s.max_string_bytes < d.max_string_bytes);
        assert!(s.max_sequence_len < d.max_sequence_len);
        assert!(s.max_depth < d.max_depth);
        assert!(s.max_stream_chunks < d.max_stream_chunks);
    }
}
