//! USC-style compiled marshal plans.
//!
//! Paper §2, citing O'Malley et al.'s Universal Stub Compiler: "a
//! user-level specification of the byte-level representations of data
//! types can be effectively utilized to optimize copying operations, and
//! therefore marshaling and unmarshaling code. It is clearly beneficial
//! to introduce such optimizations in generated stubs and skeletons."
//!
//! A [`CdrStructPlan`] is compiled once from a struct's field kinds: it
//! precomputes every CDR alignment pad and field offset, so encoding
//! becomes a single buffer reservation plus direct writes at known
//! offsets — no per-field alignment arithmetic or bounds growth. The
//! interpretive path (the plain [`CdrEncoder`](crate::CdrEncoder)) stays
//! available; experiment E10 measures the difference.
//!
//! Plans cover *fixed-size* field sequences (the USC sweet spot);
//! variable-size fields (strings, sequences) fall back to the
//! interpretive encoder.

use crate::error::{WireError, WireResult};

/// A fixed-size field kind within a planned struct.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FieldKind {
    /// 1-byte boolean.
    Bool,
    /// 1-byte octet.
    Octet,
    /// 4-byte char (our CDR's Unicode scalar).
    Char,
    /// 2-byte signed.
    Short,
    /// 2-byte unsigned.
    UShort,
    /// 4-byte signed.
    Long,
    /// 4-byte unsigned.
    ULong,
    /// 8-byte signed.
    LongLong,
    /// 8-byte unsigned.
    ULongLong,
    /// 4-byte float.
    Float,
    /// 8-byte float.
    Double,
}

impl FieldKind {
    fn size(self) -> usize {
        match self {
            FieldKind::Bool | FieldKind::Octet => 1,
            FieldKind::Short | FieldKind::UShort => 2,
            FieldKind::Char | FieldKind::Long | FieldKind::ULong | FieldKind::Float => 4,
            FieldKind::LongLong | FieldKind::ULongLong | FieldKind::Double => 8,
        }
    }

    fn align(self) -> usize {
        self.size()
    }
}

/// A runtime value matching a [`FieldKind`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PlanValue {
    /// Boolean value.
    Bool(bool),
    /// Octet value.
    Octet(u8),
    /// Char value.
    Char(char),
    /// Short value.
    Short(i16),
    /// Unsigned short value.
    UShort(u16),
    /// Long value.
    Long(i32),
    /// Unsigned long value.
    ULong(u32),
    /// Long long value.
    LongLong(i64),
    /// Unsigned long long value.
    ULongLong(u64),
    /// Float value.
    Float(f32),
    /// Double value.
    Double(f64),
}

impl PlanValue {
    /// The kind this value belongs to.
    pub fn kind(&self) -> FieldKind {
        match self {
            PlanValue::Bool(_) => FieldKind::Bool,
            PlanValue::Octet(_) => FieldKind::Octet,
            PlanValue::Char(_) => FieldKind::Char,
            PlanValue::Short(_) => FieldKind::Short,
            PlanValue::UShort(_) => FieldKind::UShort,
            PlanValue::Long(_) => FieldKind::Long,
            PlanValue::ULong(_) => FieldKind::ULong,
            PlanValue::LongLong(_) => FieldKind::LongLong,
            PlanValue::ULongLong(_) => FieldKind::ULongLong,
            PlanValue::Float(_) => FieldKind::Float,
            PlanValue::Double(_) => FieldKind::Double,
        }
    }
}

/// A compiled CDR layout for a fixed-size struct: per-field offsets and
/// the total (padded) size, computed once.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CdrStructPlan {
    kinds: Vec<FieldKind>,
    offsets: Vec<usize>,
    size: usize,
}

impl CdrStructPlan {
    /// Compiles the plan for the given field sequence.
    pub fn compile(kinds: &[FieldKind]) -> CdrStructPlan {
        let mut offsets = Vec::with_capacity(kinds.len());
        let mut at = 0usize;
        for k in kinds {
            let a = k.align();
            at = at.div_ceil(a) * a;
            offsets.push(at);
            at += k.size();
        }
        CdrStructPlan { kinds: kinds.to_vec(), offsets, size: at }
    }

    /// The encoded size of one struct, padding included.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Number of fields.
    pub fn field_count(&self) -> usize {
        self.kinds.len()
    }

    /// Encodes `values` (which must match the compiled kinds) directly at
    /// the precomputed offsets.
    ///
    /// # Panics
    ///
    /// Panics when `values` does not match the plan's field kinds — a
    /// generator bug, not a runtime condition.
    pub fn encode(&self, values: &[PlanValue], out: &mut Vec<u8>) {
        assert_eq!(values.len(), self.kinds.len(), "value count does not match plan");
        let base = out.len();
        out.resize(base + self.size, 0);
        let buf = &mut out[base..];
        for ((value, &offset), &kind) in values.iter().zip(&self.offsets).zip(&self.kinds) {
            assert_eq!(value.kind(), kind, "value kind does not match plan");
            match *value {
                PlanValue::Bool(v) => buf[offset] = u8::from(v),
                PlanValue::Octet(v) => buf[offset] = v,
                PlanValue::Char(v) => {
                    buf[offset..offset + 4].copy_from_slice(&(v as u32).to_le_bytes());
                }
                PlanValue::Short(v) => {
                    buf[offset..offset + 2].copy_from_slice(&v.to_le_bytes());
                }
                PlanValue::UShort(v) => {
                    buf[offset..offset + 2].copy_from_slice(&v.to_le_bytes());
                }
                PlanValue::Long(v) => {
                    buf[offset..offset + 4].copy_from_slice(&v.to_le_bytes());
                }
                PlanValue::ULong(v) => {
                    buf[offset..offset + 4].copy_from_slice(&v.to_le_bytes());
                }
                PlanValue::LongLong(v) => {
                    buf[offset..offset + 8].copy_from_slice(&v.to_le_bytes());
                }
                PlanValue::ULongLong(v) => {
                    buf[offset..offset + 8].copy_from_slice(&v.to_le_bytes());
                }
                PlanValue::Float(v) => {
                    buf[offset..offset + 4].copy_from_slice(&v.to_le_bytes());
                }
                PlanValue::Double(v) => {
                    buf[offset..offset + 8].copy_from_slice(&v.to_le_bytes());
                }
            }
        }
    }

    /// Decodes one struct from `bytes` at the precomputed offsets.
    ///
    /// # Errors
    ///
    /// Fails when `bytes` is shorter than the plan's size or a field is
    /// malformed.
    pub fn decode(&self, bytes: &[u8]) -> WireResult<Vec<PlanValue>> {
        if bytes.len() < self.size {
            return Err(WireError::UnexpectedEnd { what: "planned struct" });
        }
        let mut out = Vec::with_capacity(self.kinds.len());
        for (&kind, &offset) in self.kinds.iter().zip(&self.offsets) {
            let v = match kind {
                FieldKind::Bool => match bytes[offset] {
                    0 => PlanValue::Bool(false),
                    1 => PlanValue::Bool(true),
                    other => {
                        return Err(WireError::Malformed {
                            what: "boolean",
                            detail: format!("expected 0 or 1, got {other}"),
                        });
                    }
                },
                FieldKind::Octet => PlanValue::Octet(bytes[offset]),
                FieldKind::Char => {
                    let raw = u32::from_le_bytes(bytes[offset..offset + 4].try_into().expect("4B"));
                    PlanValue::Char(char::from_u32(raw).ok_or_else(|| WireError::Malformed {
                        what: "char",
                        detail: format!("invalid scalar value {raw:#x}"),
                    })?)
                }
                FieldKind::Short => PlanValue::Short(i16::from_le_bytes(
                    bytes[offset..offset + 2].try_into().expect("2B"),
                )),
                FieldKind::UShort => PlanValue::UShort(u16::from_le_bytes(
                    bytes[offset..offset + 2].try_into().expect("2B"),
                )),
                FieldKind::Long => PlanValue::Long(i32::from_le_bytes(
                    bytes[offset..offset + 4].try_into().expect("4B"),
                )),
                FieldKind::ULong => PlanValue::ULong(u32::from_le_bytes(
                    bytes[offset..offset + 4].try_into().expect("4B"),
                )),
                FieldKind::LongLong => PlanValue::LongLong(i64::from_le_bytes(
                    bytes[offset..offset + 8].try_into().expect("8B"),
                )),
                FieldKind::ULongLong => PlanValue::ULongLong(u64::from_le_bytes(
                    bytes[offset..offset + 8].try_into().expect("8B"),
                )),
                FieldKind::Float => PlanValue::Float(f32::from_le_bytes(
                    bytes[offset..offset + 4].try_into().expect("4B"),
                )),
                FieldKind::Double => PlanValue::Double(f64::from_le_bytes(
                    bytes[offset..offset + 8].try_into().expect("8B"),
                )),
            };
            out.push(v);
        }
        Ok(out)
    }
}

/// Encodes the same values through the interpretive
/// [`CdrEncoder`](crate::CdrEncoder) — the
/// baseline arm of experiment E10. Produces byte-identical output to the
/// plan for the same field sequence.
pub fn encode_interpretive(values: &[PlanValue], enc: &mut dyn crate::Encoder) {
    for v in values {
        match *v {
            PlanValue::Bool(v) => enc.put_bool(v),
            PlanValue::Octet(v) => enc.put_octet(v),
            PlanValue::Char(v) => enc.put_char(v),
            PlanValue::Short(v) => enc.put_short(v),
            PlanValue::UShort(v) => enc.put_ushort(v),
            PlanValue::Long(v) => enc.put_long(v),
            PlanValue::ULong(v) => enc.put_ulong(v),
            PlanValue::LongLong(v) => enc.put_longlong(v),
            PlanValue::ULongLong(v) => enc.put_ulonglong(v),
            PlanValue::Float(v) => enc.put_float(v),
            PlanValue::Double(v) => enc.put_double(v),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::Encoder as _;
    use crate::CdrEncoder;

    fn sample() -> (Vec<FieldKind>, Vec<PlanValue>) {
        (
            vec![
                FieldKind::Octet,
                FieldKind::Long,
                FieldKind::Bool,
                FieldKind::Double,
                FieldKind::Short,
                FieldKind::Char,
            ],
            vec![
                PlanValue::Octet(7),
                PlanValue::Long(-42),
                PlanValue::Bool(true),
                PlanValue::Double(2.5),
                PlanValue::Short(-3),
                PlanValue::Char('Z'),
            ],
        )
    }

    #[test]
    fn plan_layout_matches_cdr_alignment() {
        let (kinds, _) = sample();
        let plan = CdrStructPlan::compile(&kinds);
        // octet@0, pad to 4 for long@4, bool@8, pad to 16 for double@16,
        // short@24, pad to 28 for char@28 → size 32.
        assert_eq!(plan.field_count(), 6);
        assert_eq!(plan.size(), 32);
    }

    #[test]
    fn plan_output_is_byte_identical_to_interpretive() {
        let (kinds, values) = sample();
        let plan = CdrStructPlan::compile(&kinds);
        let mut planned = Vec::new();
        plan.encode(&values, &mut planned);

        let mut enc = CdrEncoder::new();
        encode_interpretive(&values, &mut enc);
        let interpretive = enc.finish();
        // The interpretive encoder does not pad the tail; the plan pads to
        // the struct size. The common prefix must be identical.
        assert_eq!(&planned[..interpretive.len()], &interpretive[..]);
        assert!(planned[interpretive.len()..].iter().all(|&b| b == 0));
    }

    #[test]
    fn plan_roundtrip() {
        let (kinds, values) = sample();
        let plan = CdrStructPlan::compile(&kinds);
        let mut bytes = Vec::new();
        plan.encode(&values, &mut bytes);
        let decoded = plan.decode(&bytes).unwrap();
        assert_eq!(decoded, values);
    }

    #[test]
    fn decode_rejects_truncation_and_bad_bool() {
        let plan = CdrStructPlan::compile(&[FieldKind::Bool, FieldKind::Long]);
        assert!(matches!(plan.decode(&[1, 0]), Err(WireError::UnexpectedEnd { .. })));
        let mut bytes = Vec::new();
        plan.encode(&[PlanValue::Bool(true), PlanValue::Long(1)], &mut bytes);
        bytes[0] = 9;
        assert!(matches!(plan.decode(&bytes), Err(WireError::Malformed { .. })));
    }

    #[test]
    #[should_panic(expected = "value kind does not match plan")]
    fn encode_panics_on_kind_mismatch() {
        let plan = CdrStructPlan::compile(&[FieldKind::Long]);
        let mut out = Vec::new();
        plan.encode(&[PlanValue::Double(1.0)], &mut out);
    }

    #[test]
    #[should_panic(expected = "value count does not match plan")]
    fn encode_panics_on_count_mismatch() {
        let plan = CdrStructPlan::compile(&[FieldKind::Long]);
        let mut out = Vec::new();
        plan.encode(&[], &mut out);
    }

    #[test]
    fn encode_appends_after_existing_bytes() {
        let plan = CdrStructPlan::compile(&[FieldKind::Octet]);
        let mut out = vec![0xAA, 0xBB];
        plan.encode(&[PlanValue::Octet(0xCC)], &mut out);
        assert_eq!(out, vec![0xAA, 0xBB, 0xCC]);
    }

    #[test]
    fn empty_plan_is_zero_sized() {
        let plan = CdrStructPlan::compile(&[]);
        assert_eq!(plan.size(), 0);
        let mut out = Vec::new();
        plan.encode(&[], &mut out);
        assert!(out.is_empty());
        assert_eq!(plan.decode(&[]).unwrap(), vec![]);
    }
}
