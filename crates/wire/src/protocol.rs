//! Protocol objects: codec factories plus stream framing.
//!
//! An [`ObjectCommunicator`](https://docs.rs/heidl-rmi) "provides the
//! abstraction of a communication channel on which individual requests can
//! be demarcated" (paper §3.1). The [`Protocol`] trait bundles the two
//! halves of that: how message bodies are encoded ([`Encoder`] /
//! [`Decoder`]) and how bodies are demarcated on a byte stream
//! ([`Protocol::frame`] / [`Protocol::deframe`]).
//!
//! Two protocols ship, mirroring the paper's design space:
//!
//! * [`TextProtocol`] — HeidiRMI's newline-terminated ASCII protocol;
//! * [`CdrProtocol`] — a GIOP-lite binary protocol (12-byte header with
//!   magic, version, flags and body length; CDR body).
//!
//! On both protocols the RMI layer leads every request and reply body
//! with a `ulonglong` request id, so replies can be correlated to calls
//! and one connection can carry many interleaved requests.

use crate::cdr::{CdrDecoder, CdrEncoder};
use crate::codec::{Decoder, Encoder};
use crate::error::{WireError, WireResult};
use crate::limits::DecodeLimits;
use crate::pool::{self, FrameBuf, PooledBuf};
use crate::text::{TextDecoder, TextEncoder};
use std::fmt;

/// Scratch space large enough for any shipped protocol's frame header
/// (GIOP-lite uses 12 bytes); see [`Protocol::frame_parts`].
pub const MAX_FRAME_HEADER: usize = 16;

/// Marker token opening the optional trailing call-context section on the
/// text protocol: a request line may end with `"~ctx" <call-id> <parent-id>`.
/// `~` cannot start any ordinary text token (tokens are quoted strings,
/// chars, numbers, booleans, or braces), so old readers — which stop after
/// the declared arguments anyway — never trip over it, and a human can type
/// it over telnet.
pub const TEXT_CONTEXT_MARKER: &str = "~ctx";

/// Magic closing the optional trailing call-context section on the CDR
/// protocol: the last 20 body bytes are `call-id (u64 LE) · parent-id
/// (u64 LE) · "HCX1"`. Old readers never look past the declared arguments,
/// so the section is invisible to them.
pub const CDR_CONTEXT_MAGIC: &[u8; 4] = b"HCX1";

/// Byte length of the CDR trailing context section (two `u64` ids plus the
/// closing magic).
pub const CDR_CONTEXT_LEN: usize = 20;

/// Marker token opening the optional trailing invocation-token section on
/// the text protocol: a request line may carry `"~tok" <session> <seq>`
/// after its declared arguments. Like [`TEXT_CONTEXT_MARKER`], `~` cannot
/// start any ordinary text token, so positional old readers never see it,
/// and a human can retype the same token over telnet to exercise the
/// server's exactly-once replay path.
pub const TEXT_TOKEN_MARKER: &str = "~tok";

/// Magic closing the optional trailing invocation-token section on the CDR
/// protocol: the section is `session (u64 LE) · seq (u64 LE) · pad (u32) ·
/// "HTK1"`. Old readers never look past the declared arguments, so the
/// section is invisible to them.
pub const CDR_TOKEN_MAGIC: &[u8; 4] = b"HTK1";

/// Byte length of the CDR trailing invocation-token section (two `u64`
/// ids, a `u32` pad, and the closing magic). The pad keeps the section end
/// 8-aligned, so a context section appended after it starts unpadded and
/// both sections sit at fixed offsets from the end of the body.
pub const CDR_TOKEN_LEN: usize = 24;

/// Marker token opening the optional trailing **chunk section** on the
/// text protocol: a frame belonging to a chunked stream ends with
/// `"~chunk" <n> <last>`, where `<n>` is the zero-based chunk index and
/// `<last>` is `0` or `1`. Like the `~tok`/`~ctx` markers, `~` cannot
/// start any ordinary text token, so positional old readers never see the
/// section, and a human can hand-type a chunked transfer over telnet.
pub const TEXT_CHUNK_MARKER: &str = "~chunk";

/// Magic closing the optional trailing chunk section on the CDR protocol:
/// the section is `index (u64 LE) · last (u32 LE, 0 or 1) · "HCH1"`. Old
/// readers never look past the declared fields, so the section is
/// invisible to them.
pub const CDR_CHUNK_MAGIC: &[u8; 4] = b"HCH1";

/// Byte length of the CDR trailing chunk section (a `u64` index, a `u32`
/// last-flag, and the closing magic). The section is written as raw
/// octets — never alignment-padded — so it is always exactly the last 16
/// bytes of the frame and strips away cleanly to expose the token and
/// context tails beneath it.
pub const CDR_CHUNK_LEN: usize = 16;

/// A wire protocol: codec factory + request demarcation.
pub trait Protocol: Send + Sync + fmt::Debug {
    /// Short protocol name used in stringified object references
    /// (`@tcp`, …) and diagnostics.
    fn name(&self) -> &'static str;

    /// Creates an encoder for one message body.
    fn encoder(&self) -> Box<dyn Encoder>;

    /// Creates a decoder over a received message body.
    ///
    /// # Errors
    ///
    /// Text bodies that are not valid UTF-8 fail here.
    fn decoder(&self, body: Vec<u8>) -> WireResult<Box<dyn Decoder>>;

    /// Appends `body`, framed for the stream, to `out`.
    fn frame(&self, body: &[u8], out: &mut Vec<u8>);

    /// Extracts the next complete message body from `buf`, removing its
    /// bytes, or returns `Ok(None)` when more input is needed.
    ///
    /// # Errors
    ///
    /// Fails on stream corruption (bad magic, oversized length, embedded
    /// framing bytes).
    fn deframe(&self, buf: &mut Vec<u8>) -> WireResult<Option<Vec<u8>>>;

    /// Creates a decoder enforcing explicit [`DecodeLimits`]. The default
    /// implementation ignores the limits (third-party protocols keep
    /// compiling); both shipped protocols override it.
    ///
    /// # Errors
    ///
    /// As [`Protocol::decoder`], plus limit violations surfaced while the
    /// body is tokenized (text protocol).
    fn decoder_with_limits(
        &self,
        body: Vec<u8>,
        limits: &DecodeLimits,
    ) -> WireResult<Box<dyn Decoder>> {
        let _ = limits;
        self.decoder(body)
    }

    /// Deframes under explicit [`DecodeLimits`]: an oversized length
    /// prefix (or a delimiter search that has already buffered more than
    /// `max_frame_bytes`) is a clean error before any allocation. The
    /// default implementation ignores the limits; both shipped protocols
    /// override it.
    ///
    /// # Errors
    ///
    /// As [`Protocol::deframe`], plus [`WireError::Bounds`] when a frame
    /// exceeds `limits.max_frame_bytes`.
    fn deframe_limited(
        &self,
        buf: &mut Vec<u8>,
        limits: &DecodeLimits,
    ) -> WireResult<Option<Vec<u8>>> {
        let _ = limits;
        self.deframe(buf)
    }

    /// Describes the frame layout as header + body + trailer so callers
    /// can write a frame without materializing it: the header (at most
    /// [`MAX_FRAME_HEADER`] bytes) is rendered into caller-provided stack
    /// scratch and `Some((header_len, trailer))` is returned. Protocols
    /// whose framing cannot be expressed this way return `None` (the
    /// default), and callers fall back to [`Protocol::frame`].
    fn frame_parts(
        &self,
        body_len: usize,
        header: &mut [u8; MAX_FRAME_HEADER],
    ) -> Option<(usize, &'static [u8])> {
        let _ = (body_len, header);
        None
    }

    /// Extracts the next complete message body from a [`FrameBuf`] read
    /// cursor, consuming its bytes, or returns `Ok(None)` when more input
    /// is needed. The body comes back in one pooled buffer — the shipped
    /// protocols copy each frame exactly once, instead of the
    /// drain-then-copy the `Vec`-based [`Protocol::deframe`] performs.
    ///
    /// The default implementation adapts [`Protocol::deframe_limited`]
    /// (third-party protocols keep compiling, with one extra copy); both
    /// shipped protocols override it with a single-copy cursor path whose
    /// accept/reject behavior is byte-identical to the legacy entry
    /// points.
    ///
    /// # Errors
    ///
    /// As [`Protocol::deframe_limited`].
    fn deframe_pooled(
        &self,
        buf: &mut FrameBuf,
        limits: &DecodeLimits,
    ) -> WireResult<Option<PooledBuf>> {
        let mut legacy: Vec<u8> = buf.bytes().to_vec();
        let before = legacy.len();
        let body = self.deframe_limited(&mut legacy, limits)?;
        buf.consume(before - legacy.len());
        Ok(body.map(PooledBuf::from))
    }

    /// Creates a decoder *borrowing* `body`, for peeking at routing fields
    /// (request id, target, status) without copying the whole message.
    /// The default copies (third-party protocols keep compiling); both
    /// shipped protocols override it with a zero-copy borrow.
    ///
    /// # Errors
    ///
    /// As [`Protocol::decoder_with_limits`].
    fn peek_decoder<'a>(
        &self,
        body: &'a [u8],
        limits: &DecodeLimits,
    ) -> WireResult<Box<dyn Decoder + 'a>> {
        let boxed: Box<dyn Decoder> = self.decoder_with_limits(body.to_vec(), limits)?;
        Ok(boxed)
    }

    /// Appends an optional **trailing call-context section** (call id +
    /// parent id) to a message being encoded. Must be called after every
    /// declared field has been put; readers that do not know about the
    /// section — including every pre-context peer — never look past the
    /// declared fields, so the section is backward compatible by
    /// construction. Returns `false` (and encodes nothing) for protocols
    /// without a context encoding — the default, so third-party protocols
    /// keep compiling.
    fn encode_context(&self, enc: &mut dyn Encoder, call_id: u64, parent_id: u64) -> bool {
        let _ = (enc, call_id, parent_id);
        false
    }

    /// Extracts the trailing call-context section from a received body, if
    /// present, as `(call_id, parent_id)`. `None` when the body carries no
    /// context (or the protocol has no context encoding — the default).
    ///
    /// Extraction is a tail inspection only: it never affects how the
    /// declared fields decode, and a body without the section is left
    /// byte-identical to a pre-context peer's view.
    fn extract_context(&self, body: &[u8]) -> Option<(u64, u64)> {
        let _ = body;
        None
    }

    /// Appends an optional **trailing invocation-token section** (session
    /// id + per-session sequence number) to a message being encoded. Same
    /// backward-compatibility contract as [`Protocol::encode_context`]:
    /// old readers are positional and never look past the declared fields.
    ///
    /// When a message carries both suffixes the token section comes
    /// *first* and the context section *last*, so each stays at a fixed
    /// position from the end of the body. Returns `false` (and encodes
    /// nothing) for protocols without a token encoding — the default.
    fn encode_token(&self, enc: &mut dyn Encoder, session: u64, seq: u64) -> bool {
        let _ = (enc, session, seq);
        false
    }

    /// Extracts the trailing invocation-token section from a received
    /// body, if present, as `(session, seq)`. `None` when the body carries
    /// no token (or the protocol has no token encoding — the default).
    ///
    /// Like [`Protocol::extract_context`] this is a tail inspection only;
    /// it tolerates a context section appended after the token.
    fn extract_token(&self, body: &[u8]) -> Option<(u64, u64)> {
        let _ = body;
        None
    }

    /// Appends an optional **trailing chunk section** (`index`, `last`)
    /// marking this frame as one piece of a chunked stream. Same
    /// backward-compatibility contract as the token and context sections:
    /// old positional readers never look past the declared fields. When a
    /// frame carries several suffixes the chunk section is the
    /// *outermost* — encode order is token, context, chunk. Returns
    /// `false` (and encodes nothing) for protocols without a chunk
    /// encoding — the default.
    fn encode_chunk(&self, enc: &mut dyn Encoder, index: u64, last: bool) -> bool {
        let _ = (enc, index, last);
        false
    }

    /// Extracts the trailing chunk section from a received body, if
    /// present, as `(index, last)`. `None` when the body carries no chunk
    /// section (or the protocol has no chunk encoding — the default).
    ///
    /// A tail inspection only, like [`Protocol::extract_context`]; the
    /// declared fields decode identically with or without the section.
    fn extract_chunk(&self, body: &[u8]) -> Option<(u64, bool)> {
        let _ = body;
        None
    }
}

/// Strips one trailing text chunk section (`"~chunk" <n> <last>`), if
/// present and well-formed, so the token/context extractors can inspect
/// the tail beneath it.
fn strip_text_chunk(s: &str) -> &str {
    let needle = "\"~chunk\"";
    let Some(idx) = s.rfind(needle) else {
        return s;
    };
    if idx > 0 && !s.as_bytes()[idx - 1].is_ascii_whitespace() {
        return s;
    }
    let mut tail = s[idx + needle.len()..].split_ascii_whitespace();
    let index_ok = tail.next().is_some_and(|t| t.parse::<u64>().is_ok());
    let last_ok = matches!(tail.next(), Some("0" | "1"));
    if index_ok && last_ok && tail.next().is_none() {
        s[..idx].trim_end()
    } else {
        s
    }
}

/// Strips one trailing CDR chunk section, if present, so the
/// token/context extractors can inspect the tail beneath it.
fn cdr_strip_chunk(body: &[u8]) -> &[u8] {
    let n = body.len();
    if n >= CDR_CHUNK_LEN && &body[n - 4..] == CDR_CHUNK_MAGIC {
        let last = u32::from_le_bytes(body[n - 8..n - 4].try_into().expect("4 bytes"));
        if last <= 1 {
            return &body[..n - CDR_CHUNK_LEN];
        }
    }
    body
}

/// The HeidiRMI text protocol: one newline-terminated line per message.
#[derive(Debug, Clone, Copy, Default)]
pub struct TextProtocol;

impl Protocol for TextProtocol {
    fn name(&self) -> &'static str {
        "tcp" // the paper's references spell the endpoint `@tcp:host:port`
    }

    fn encoder(&self) -> Box<dyn Encoder> {
        Box::new(TextEncoder::new())
    }

    fn decoder(&self, body: Vec<u8>) -> WireResult<Box<dyn Decoder>> {
        // The text decoder owns its tokens; the body storage recycles now.
        let dec = TextDecoder::new(&body);
        pool::recycle(body);
        Ok(Box::new(dec?))
    }

    fn frame(&self, body: &[u8], out: &mut Vec<u8>) {
        debug_assert!(
            !body.contains(&b'\n'),
            "text protocol bodies are single lines by construction"
        );
        out.extend_from_slice(body);
        out.push(b'\n');
    }

    fn deframe(&self, buf: &mut Vec<u8>) -> WireResult<Option<Vec<u8>>> {
        let Some(nl) = buf.iter().position(|&b| b == b'\n') else {
            return Ok(None);
        };
        let mut line: Vec<u8> = buf.drain(..=nl).collect();
        line.pop(); // the newline
                    // Tolerate CRLF from telnet clients.
        if line.last() == Some(&b'\r') {
            line.pop();
        }
        Ok(Some(line))
    }

    fn decoder_with_limits(
        &self,
        body: Vec<u8>,
        limits: &DecodeLimits,
    ) -> WireResult<Box<dyn Decoder>> {
        let dec = TextDecoder::with_limits(&body, *limits);
        pool::recycle(body);
        Ok(Box::new(dec?))
    }

    fn deframe_limited(
        &self,
        buf: &mut Vec<u8>,
        limits: &DecodeLimits,
    ) -> WireResult<Option<Vec<u8>>> {
        // A line with no terminator has no length prefix to check, so the
        // bound is on *buffered* bytes: a peer streaming gigabytes without
        // ever sending `\n` must not grow our buffer forever.
        let line = self.deframe(buf)?;
        let buffered = line.as_ref().map_or(buf.len(), Vec::len);
        if buffered as u64 > limits.max_frame_bytes {
            return Err(WireError::Bounds {
                what: "text frame",
                len: buffered as u64,
                max: limits.max_frame_bytes,
            });
        }
        Ok(line)
    }

    fn frame_parts(
        &self,
        _body_len: usize,
        _header: &mut [u8; MAX_FRAME_HEADER],
    ) -> Option<(usize, &'static [u8])> {
        Some((0, b"\n"))
    }

    fn deframe_pooled(
        &self,
        buf: &mut FrameBuf,
        limits: &DecodeLimits,
    ) -> WireResult<Option<PooledBuf>> {
        let (nl, end) = {
            let bytes = buf.bytes();
            let Some(nl) = bytes.iter().position(|&b| b == b'\n') else {
                // No terminator yet: the bound is on buffered bytes, as in
                // `deframe_limited`.
                if bytes.len() as u64 > limits.max_frame_bytes {
                    return Err(WireError::Bounds {
                        what: "text frame",
                        len: bytes.len() as u64,
                        max: limits.max_frame_bytes,
                    });
                }
                return Ok(None);
            };
            // Tolerate CRLF from telnet clients.
            let end = if nl > 0 && bytes[nl - 1] == b'\r' { nl - 1 } else { nl };
            (nl, end)
        };
        if end as u64 > limits.max_frame_bytes {
            // Match `deframe_limited`: the over-long line is consumed off
            // the stream, then rejected.
            buf.consume(nl + 1);
            return Err(WireError::Bounds {
                what: "text frame",
                len: end as u64,
                max: limits.max_frame_bytes,
            });
        }
        let mut body = pool::global().get();
        body.extend_from_slice(&buf.bytes()[..end]);
        buf.consume(nl + 1);
        Ok(Some(body))
    }

    fn peek_decoder<'a>(
        &self,
        body: &'a [u8],
        limits: &DecodeLimits,
    ) -> WireResult<Box<dyn Decoder + 'a>> {
        // The text decoder tokenizes up front and owns its tokens; the win
        // here is skipping the body copy `decoder_with_limits` requires.
        Ok(Box::new(TextDecoder::with_limits(body, *limits)?))
    }

    fn encode_context(&self, enc: &mut dyn Encoder, call_id: u64, parent_id: u64) -> bool {
        // Three ordinary tokens: the line stays printable and a telnet user
        // can append ` "~ctx" 42 7` to a hand-typed request.
        enc.put_string(TEXT_CONTEXT_MARKER);
        enc.put_ulonglong(call_id);
        enc.put_ulonglong(parent_id);
        true
    }

    fn extract_context(&self, body: &[u8]) -> Option<(u64, u64)> {
        // The chunk section is the outermost suffix; look beneath it.
        let s = strip_text_chunk(std::str::from_utf8(body).ok()?);
        // The marker is the *last* `"~ctx"` token: anything after it must be
        // exactly two unsigned integers running to end-of-line. A string
        // argument containing the marker bytes encodes with escaped quotes
        // (`\"~ctx\"`), so the token-boundary check below rejects it.
        let needle = "\"~ctx\"";
        let idx = s.rfind(needle)?;
        if idx > 0 && !s.as_bytes()[idx - 1].is_ascii_whitespace() {
            return None;
        }
        let mut tail = s[idx + needle.len()..].split_ascii_whitespace();
        let call_id = tail.next()?.parse().ok()?;
        let parent_id = tail.next()?.parse().ok()?;
        if tail.next().is_some() {
            return None;
        }
        Some((call_id, parent_id))
    }

    fn encode_token(&self, enc: &mut dyn Encoder, session: u64, seq: u64) -> bool {
        // Three ordinary tokens, just like the context section: the line
        // stays printable and a telnet user can append ` "~tok" 12345 1`
        // to a hand-typed request (and retype it to trigger a replay).
        enc.put_string(TEXT_TOKEN_MARKER);
        enc.put_ulonglong(session);
        enc.put_ulonglong(seq);
        true
    }

    fn extract_token(&self, body: &[u8]) -> Option<(u64, u64)> {
        // The chunk section is the outermost suffix; look beneath it.
        let s = strip_text_chunk(std::str::from_utf8(body).ok()?);
        // The marker is the *last* `"~tok"` token. After it come exactly
        // two unsigned integers, followed either by end-of-line or by a
        // complete context section (`"~ctx" <id> <id>`) — the one suffix
        // allowed after a token. A string argument containing the marker
        // bytes encodes with escaped quotes, so the token-boundary check
        // rejects it.
        let needle = "\"~tok\"";
        let idx = s.rfind(needle)?;
        if idx > 0 && !s.as_bytes()[idx - 1].is_ascii_whitespace() {
            return None;
        }
        let mut tail = s[idx + needle.len()..].split_ascii_whitespace();
        let session = tail.next()?.parse().ok()?;
        let seq = tail.next()?.parse().ok()?;
        match tail.next() {
            None => Some((session, seq)),
            Some(tok) if tok == format!("\"{TEXT_CONTEXT_MARKER}\"") => {
                let _: u64 = tail.next()?.parse().ok()?;
                let _: u64 = tail.next()?.parse().ok()?;
                tail.next().is_none().then_some((session, seq))
            }
            Some(_) => None,
        }
    }

    fn encode_chunk(&self, enc: &mut dyn Encoder, index: u64, last: bool) -> bool {
        // Three ordinary tokens: the line stays printable, so a telnet user
        // can hand-type a chunked transfer by ending each line with
        // ` "~chunk" <n> 0` and the final one with ` "~chunk" <n> 1`.
        enc.put_string(TEXT_CHUNK_MARKER);
        enc.put_ulonglong(index);
        enc.put_ulonglong(u64::from(last));
        true
    }

    fn extract_chunk(&self, body: &[u8]) -> Option<(u64, bool)> {
        let s = std::str::from_utf8(body).ok()?;
        // The marker is the *last* `"~chunk"` token, and the section is the
        // outermost suffix: exactly two integers run to end-of-line, with
        // the last-flag restricted to 0 or 1. A string argument containing
        // the marker bytes encodes with escaped quotes, so the
        // token-boundary check rejects it.
        let needle = "\"~chunk\"";
        let idx = s.rfind(needle)?;
        if idx > 0 && !s.as_bytes()[idx - 1].is_ascii_whitespace() {
            return None;
        }
        let mut tail = s[idx + needle.len()..].split_ascii_whitespace();
        let index = tail.next()?.parse().ok()?;
        let last = match tail.next()? {
            "0" => false,
            "1" => true,
            _ => return None,
        };
        if tail.next().is_some() {
            return None;
        }
        Some((index, last))
    }
}

/// GIOP-lite header: magic, version 1.0, flags (bit 0 = little-endian),
/// message type, and body length.
const GIOP_MAGIC: &[u8; 4] = b"GIOP";
const GIOP_HEADER_LEN: usize = 12;
/// Upper bound on a sane message body, mirroring the codec's limit.
const MAX_BODY: u32 = 64 * 1024 * 1024;

/// The binary protocol: GIOP-lite framing around CDR bodies.
#[derive(Debug, Clone, Copy, Default)]
pub struct CdrProtocol;

impl Protocol for CdrProtocol {
    fn name(&self) -> &'static str {
        "giop"
    }

    fn encoder(&self) -> Box<dyn Encoder> {
        Box::new(CdrEncoder::new())
    }

    fn decoder(&self, body: Vec<u8>) -> WireResult<Box<dyn Decoder>> {
        // Wrapping the body as a PooledBuf recycles its storage when the
        // decoder is dropped.
        Ok(Box::new(CdrDecoder::new(PooledBuf::from(body))))
    }

    fn frame(&self, body: &[u8], out: &mut Vec<u8>) {
        out.extend_from_slice(GIOP_MAGIC);
        out.push(1); // major
        out.push(0); // minor
        out.push(0x01); // flags: little-endian
        out.push(0); // message type (request/reply distinction lives in the body)
        out.extend_from_slice(&(body.len() as u32).to_le_bytes());
        out.extend_from_slice(body);
    }

    fn deframe(&self, buf: &mut Vec<u8>) -> WireResult<Option<Vec<u8>>> {
        if buf.len() < GIOP_HEADER_LEN {
            return Ok(None);
        }
        if &buf[..4] != GIOP_MAGIC {
            return Err(WireError::Malformed {
                what: "GIOP header",
                detail: format!("bad magic {:?}", &buf[..4]),
            });
        }
        if buf[4] != 1 {
            return Err(WireError::Malformed {
                what: "GIOP header",
                detail: format!("unsupported major version {}", buf[4]),
            });
        }
        let len = u32::from_le_bytes(buf[8..12].try_into().expect("4 bytes"));
        if len > MAX_BODY {
            return Err(WireError::Bounds {
                what: "GIOP body",
                len: len.into(),
                max: MAX_BODY.into(),
            });
        }
        let total = GIOP_HEADER_LEN + len as usize;
        if buf.len() < total {
            return Ok(None);
        }
        let frame: Vec<u8> = buf.drain(..total).collect();
        Ok(Some(frame[GIOP_HEADER_LEN..].to_vec()))
    }

    fn decoder_with_limits(
        &self,
        body: Vec<u8>,
        limits: &DecodeLimits,
    ) -> WireResult<Box<dyn Decoder>> {
        Ok(Box::new(CdrDecoder::with_limits(PooledBuf::from(body), *limits)))
    }

    fn deframe_limited(
        &self,
        buf: &mut Vec<u8>,
        limits: &DecodeLimits,
    ) -> WireResult<Option<Vec<u8>>> {
        // The declared body length is checked against the policy bound
        // *before* waiting for (or allocating room for) the body: a 4 GB
        // length prefix costs the attacker 12 bytes and us nothing.
        if buf.len() >= GIOP_HEADER_LEN && &buf[..4] == GIOP_MAGIC {
            let len = u32::from_le_bytes(buf[8..12].try_into().expect("4 bytes"));
            let max = limits.max_frame_bytes.min(u64::from(MAX_BODY));
            if u64::from(len) > max {
                return Err(WireError::Bounds { what: "GIOP body", len: len.into(), max });
            }
        }
        self.deframe(buf)
    }

    fn frame_parts(
        &self,
        body_len: usize,
        header: &mut [u8; MAX_FRAME_HEADER],
    ) -> Option<(usize, &'static [u8])> {
        header[..4].copy_from_slice(GIOP_MAGIC);
        header[4] = 1; // major
        header[5] = 0; // minor
        header[6] = 0x01; // flags: little-endian
        header[7] = 0; // message type
        header[8..GIOP_HEADER_LEN].copy_from_slice(&(body_len as u32).to_le_bytes());
        Some((GIOP_HEADER_LEN, b""))
    }

    fn deframe_pooled(
        &self,
        buf: &mut FrameBuf,
        limits: &DecodeLimits,
    ) -> WireResult<Option<PooledBuf>> {
        let total = {
            let bytes = buf.bytes();
            if bytes.len() < GIOP_HEADER_LEN {
                return Ok(None);
            }
            if &bytes[..4] != GIOP_MAGIC {
                return Err(WireError::Malformed {
                    what: "GIOP header",
                    detail: format!("bad magic {:?}", &bytes[..4]),
                });
            }
            if bytes[4] != 1 {
                return Err(WireError::Malformed {
                    what: "GIOP header",
                    detail: format!("unsupported major version {}", bytes[4]),
                });
            }
            // The declared length is checked against both the policy bound
            // and the protocol sanity bound before any allocation.
            let len = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes"));
            let max = limits.max_frame_bytes.min(u64::from(MAX_BODY));
            if u64::from(len) > max {
                return Err(WireError::Bounds { what: "GIOP body", len: len.into(), max });
            }
            let total = GIOP_HEADER_LEN + len as usize;
            if bytes.len() < total {
                return Ok(None);
            }
            total
        };
        let mut body = pool::global().get();
        body.extend_from_slice(&buf.bytes()[GIOP_HEADER_LEN..total]);
        buf.consume(total);
        Ok(Some(body))
    }

    fn peek_decoder<'a>(
        &self,
        body: &'a [u8],
        limits: &DecodeLimits,
    ) -> WireResult<Box<dyn Decoder + 'a>> {
        Ok(Box::new(CdrDecoder::with_limits(body, *limits)))
    }

    fn encode_context(&self, enc: &mut dyn Encoder, call_id: u64, parent_id: u64) -> bool {
        // Two aligned u64s then the u32 magic. After the first id the
        // position is 8-aligned, so the ids and the magic are contiguous:
        // the section always occupies exactly the last CDR_CONTEXT_LEN
        // bytes of the body, wherever the arguments left the cursor.
        enc.put_ulonglong(call_id);
        enc.put_ulonglong(parent_id);
        enc.put_ulong(u32::from_le_bytes(*CDR_CONTEXT_MAGIC));
        true
    }

    fn extract_context(&self, body: &[u8]) -> Option<(u64, u64)> {
        // The chunk section is the outermost suffix; look beneath it.
        let body = cdr_strip_chunk(body);
        let n = body.len();
        if n < CDR_CONTEXT_LEN || &body[n - 4..] != CDR_CONTEXT_MAGIC {
            return None;
        }
        let call_id = u64::from_le_bytes(body[n - 20..n - 12].try_into().expect("8 bytes"));
        let parent_id = u64::from_le_bytes(body[n - 12..n - 4].try_into().expect("8 bytes"));
        Some((call_id, parent_id))
    }

    fn encode_token(&self, enc: &mut dyn Encoder, session: u64, seq: u64) -> bool {
        // Two aligned u64s, a pad word, then the u32 magic. The first id
        // 8-aligns the cursor, so the section is 24 contiguous bytes
        // ending 8-aligned — a context section encoded after it needs no
        // alignment padding, keeping both tails at fixed offsets from the
        // end of the body.
        enc.put_ulonglong(session);
        enc.put_ulonglong(seq);
        enc.put_ulong(0);
        enc.put_ulong(u32::from_le_bytes(*CDR_TOKEN_MAGIC));
        true
    }

    fn extract_token(&self, body: &[u8]) -> Option<(u64, u64)> {
        // The chunk section is the outermost suffix; look beneath it.
        let body = cdr_strip_chunk(body);
        let n = body.len();
        // Token alone: the section is the last CDR_TOKEN_LEN bytes. Token
        // + context: the context section occupies the last CDR_CONTEXT_LEN
        // bytes and the token section sits immediately before it.
        let magic_end = if n >= CDR_TOKEN_LEN && &body[n - 4..] == CDR_TOKEN_MAGIC {
            n
        } else if n >= CDR_CONTEXT_LEN + CDR_TOKEN_LEN
            && &body[n - 4..] == CDR_CONTEXT_MAGIC
            && &body[n - CDR_CONTEXT_LEN - 4..n - CDR_CONTEXT_LEN] == CDR_TOKEN_MAGIC
        {
            n - CDR_CONTEXT_LEN
        } else {
            return None;
        };
        let start = magic_end - CDR_TOKEN_LEN;
        let session = u64::from_le_bytes(body[start..start + 8].try_into().expect("8 bytes"));
        let seq = u64::from_le_bytes(body[start + 8..start + 16].try_into().expect("8 bytes"));
        Some((session, seq))
    }

    fn encode_chunk(&self, enc: &mut dyn Encoder, index: u64, last: bool) -> bool {
        // Raw octets, not aligned primitives: the context section ends
        // 4 mod 8, so an aligned u64 here would pick up padding that
        // depends on what the section follows — and stripping the chunk
        // tail could no longer expose the token/context tails beneath it.
        // Sixteen unpadded bytes keep the section at a fixed offset from
        // the end no matter where the underlying body stopped.
        for b in index.to_le_bytes() {
            enc.put_octet(b);
        }
        for b in u32::from(last).to_le_bytes() {
            enc.put_octet(b);
        }
        for b in *CDR_CHUNK_MAGIC {
            enc.put_octet(b);
        }
        true
    }

    fn extract_chunk(&self, body: &[u8]) -> Option<(u64, bool)> {
        let n = body.len();
        if n < CDR_CHUNK_LEN || &body[n - 4..] != CDR_CHUNK_MAGIC {
            return None;
        }
        let last = u32::from_le_bytes(body[n - 8..n - 4].try_into().expect("4 bytes"));
        if last > 1 {
            return None;
        }
        let index = u64::from_le_bytes(body[n - 16..n - 8].try_into().expect("8 bytes"));
        Some((index, last == 1))
    }
}

/// Returns the protocol registered under `name` (`"tcp"`/`"text"` or
/// `"giop"`/`"cdr"`), or `None`.
pub fn by_name(name: &str) -> Option<Box<dyn Protocol>> {
    match name {
        "tcp" | "text" => Some(Box::new(TextProtocol)),
        "giop" | "cdr" => Some(Box::new(CdrProtocol)),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame_roundtrip(p: &dyn Protocol) {
        let mut enc = p.encoder();
        enc.put_string("hello");
        enc.put_long(7);
        let body = enc.finish();

        let mut stream = Vec::new();
        p.frame(&body, &mut stream);
        p.frame(&body, &mut stream); // two back-to-back messages

        // Feed the stream byte by byte: deframe must wait for completeness.
        let mut buf = Vec::new();
        let mut got = Vec::new();
        for b in stream {
            buf.push(b);
            while let Some(msg) = p.deframe(&mut buf).unwrap() {
                got.push(msg);
            }
        }
        assert_eq!(got.len(), 2);
        for msg in got {
            let mut dec = p.decoder(msg).unwrap();
            assert_eq!(dec.get_string().unwrap(), "hello");
            assert_eq!(dec.get_long().unwrap(), 7);
            assert!(dec.at_end());
        }
        assert!(buf.is_empty());
    }

    #[test]
    fn text_framing_roundtrip_incremental() {
        frame_roundtrip(&TextProtocol);
    }

    #[test]
    fn cdr_framing_roundtrip_incremental() {
        frame_roundtrip(&CdrProtocol);
    }

    #[test]
    fn text_deframe_tolerates_crlf() {
        let mut buf = b"\"print\" 1\r\n".to_vec();
        let msg = TextProtocol.deframe(&mut buf).unwrap().unwrap();
        assert_eq!(msg, b"\"print\" 1");
    }

    #[test]
    fn giop_rejects_bad_magic() {
        let mut buf = b"EVIL\x01\x00\x01\x00\x00\x00\x00\x00".to_vec();
        assert!(matches!(
            CdrProtocol.deframe(&mut buf),
            Err(WireError::Malformed { what: "GIOP header", .. })
        ));
    }

    #[test]
    fn giop_rejects_bad_version_and_huge_length() {
        let mut buf = b"GIOP\x02\x00\x01\x00\x00\x00\x00\x00".to_vec();
        assert!(CdrProtocol.deframe(&mut buf).is_err());
        let mut hdr = b"GIOP\x01\x00\x01\x00".to_vec();
        hdr.extend_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(CdrProtocol.deframe(&mut hdr), Err(WireError::Bounds { .. })));
    }

    #[test]
    fn giop_header_is_twelve_bytes() {
        let mut out = Vec::new();
        CdrProtocol.frame(b"xy", &mut out);
        assert_eq!(out.len(), 12 + 2);
        assert_eq!(&out[..4], b"GIOP");
        assert_eq!(out[6], 0x01, "little-endian flag");
    }

    #[test]
    fn partial_input_returns_none() {
        let mut buf = b"GIOP\x01\x00\x01\x00\x05\x00\x00\x00ab".to_vec();
        assert_eq!(CdrProtocol.deframe(&mut buf).unwrap(), None);
        let mut buf = b"no newline yet".to_vec();
        assert_eq!(TextProtocol.deframe(&mut buf).unwrap(), None);
    }

    #[test]
    fn by_name_lookup() {
        assert_eq!(by_name("tcp").unwrap().name(), "tcp");
        assert_eq!(by_name("text").unwrap().name(), "tcp");
        assert_eq!(by_name("giop").unwrap().name(), "giop");
        assert_eq!(by_name("cdr").unwrap().name(), "giop");
        assert!(by_name("smoke-signals").is_none());
    }

    #[test]
    fn protocol_names() {
        assert_eq!(TextProtocol.name(), "tcp");
        assert_eq!(CdrProtocol.name(), "giop");
    }

    #[test]
    fn limited_deframe_bounds_text_buffering() {
        let limits = DecodeLimits::default().with_max_frame_bytes(64);
        // Under the bound, behaves exactly like deframe.
        let mut buf = b"\"ping\" 1\n".to_vec();
        assert_eq!(
            TextProtocol.deframe_limited(&mut buf, &limits).unwrap().unwrap(),
            b"\"ping\" 1"
        );
        // A line that never ends stops being buffered at the bound.
        let mut buf = vec![b'x'; 65];
        assert!(matches!(
            TextProtocol.deframe_limited(&mut buf, &limits),
            Err(WireError::Bounds { what: "text frame", .. })
        ));
        // A complete line over the bound is rejected too.
        let mut buf = vec![b'1'; 65];
        buf.push(b'\n');
        assert!(TextProtocol.deframe_limited(&mut buf, &limits).is_err());
    }

    #[test]
    fn limited_deframe_bounds_giop_length_prefix() {
        let limits = DecodeLimits::default().with_max_frame_bytes(64);
        // A 1 GiB length prefix is rejected from the 12-byte header alone,
        // long before any body bytes arrive.
        let mut hdr = b"GIOP\x01\x00\x01\x00".to_vec();
        hdr.extend_from_slice(&(1u32 << 30).to_le_bytes());
        assert!(matches!(
            CdrProtocol.deframe_limited(&mut hdr, &limits),
            Err(WireError::Bounds { what: "GIOP body", .. })
        ));
        // In-bound frames pass through untouched.
        let mut framed = Vec::new();
        CdrProtocol.frame(b"ok", &mut framed);
        assert_eq!(CdrProtocol.deframe_limited(&mut framed, &limits).unwrap().unwrap(), b"ok");
    }

    #[test]
    fn decoder_with_limits_threads_through_both_protocols() {
        let limits = DecodeLimits::default().with_max_string_bytes(4);
        for p in [&TextProtocol as &dyn Protocol, &CdrProtocol] {
            let mut enc = p.encoder();
            enc.put_string("much too long");
            let body = enc.finish();
            let bounded =
                p.decoder_with_limits(body.clone(), &limits).and_then(|mut d| d.get_string());
            assert!(matches!(bounded, Err(WireError::Bounds { .. })), "{}", p.name());
            // The un-limited path still decodes it.
            assert_eq!(p.decoder(body).unwrap().get_string().unwrap(), "much too long");
        }
    }

    /// Byte-level golden frames: the wire formats are interop contracts —
    /// any change here breaks mixed-version deployments and must be
    /// deliberate.
    #[test]
    fn golden_text_frame() {
        let mut enc = TextProtocol.encoder();
        enc.put_string("ping");
        enc.put_long(-7);
        enc.put_bool(true);
        let body = enc.finish();
        let mut framed = Vec::new();
        TextProtocol.frame(&body, &mut framed);
        assert_eq!(framed, b"\"ping\" -7 T\n");
    }

    #[test]
    fn golden_giop_frame() {
        let mut enc = CdrProtocol.encoder();
        enc.put_octet(0xAB);
        enc.put_long(0x0102_0304);
        enc.put_string("hi");
        let body = enc.finish();
        let mut framed = Vec::new();
        CdrProtocol.frame(&body, &mut framed);
        let expected: Vec<u8> = [
            b"GIOP".as_slice(),        // magic
            &[1, 0],                   // version 1.0
            &[0x01],                   // flags: little-endian
            &[0],                      // message type
            &15u32.to_le_bytes(),      // body length
            &[0xAB],                   // octet
            &[0, 0, 0],                // pad to 4
            &[0x04, 0x03, 0x02, 0x01], // long, little-endian
            &3u32.to_le_bytes(),       // string byte count incl NUL
            b"hi\0",                   // string body
        ]
        .concat();
        assert_eq!(framed, expected);
    }

    /// A context-free body is byte-identical whether or not the peer knows
    /// about contexts — the encoding path is simply not taken.
    #[test]
    fn context_free_bodies_are_untouched() {
        for p in [&TextProtocol as &dyn Protocol, &CdrProtocol] {
            let mut enc = p.encoder();
            enc.put_string("ping");
            enc.put_long(-7);
            let body = enc.finish();
            assert_eq!(p.extract_context(&body), None, "{}", p.name());
        }
        assert_eq!(TextProtocol.extract_context(b""), None);
        assert_eq!(CdrProtocol.extract_context(b""), None);
    }

    /// The golden with-context text line: still one printable line a human
    /// could type over telnet.
    #[test]
    fn golden_text_frame_with_context() {
        let mut enc = TextProtocol.encoder();
        enc.put_string("ping");
        enc.put_long(-7);
        assert!(TextProtocol.encode_context(&mut *enc, 42, 7));
        let body = enc.finish();
        assert_eq!(body, b"\"ping\" -7 \"~ctx\" 42 7");
        assert_eq!(TextProtocol.extract_context(&body), Some((42, 7)));
    }

    /// The with-context body extends the plain body: an old reader decoding
    /// only the declared fields sees exactly the same bytes.
    #[test]
    fn context_section_is_a_pure_suffix_on_both_protocols() {
        for p in [&TextProtocol as &dyn Protocol, &CdrProtocol] {
            let plain = {
                let mut enc = p.encoder();
                enc.put_string("echo");
                enc.put_ulonglong(u64::MAX);
                enc.finish()
            };
            let with_ctx = {
                let mut enc = p.encoder();
                enc.put_string("echo");
                enc.put_ulonglong(u64::MAX);
                assert!(p.encode_context(&mut *enc, 1, u64::MAX));
                enc.finish()
            };
            assert!(with_ctx.starts_with(&plain), "{}", p.name());
            assert_eq!(p.extract_context(&with_ctx), Some((1, u64::MAX)), "{}", p.name());
            // Old-reader view: the declared fields decode identically.
            let mut dec = p.decoder(with_ctx).unwrap();
            assert_eq!(dec.get_string().unwrap(), "echo");
            assert_eq!(dec.get_ulonglong().unwrap(), u64::MAX);
        }
    }

    /// The CDR section is a fixed-size tail: ids at fixed offsets before the
    /// closing magic, regardless of argument alignment.
    #[test]
    fn cdr_context_tail_layout() {
        for misalign in 0..8usize {
            let mut enc = CdrProtocol.encoder();
            for _ in 0..misalign {
                enc.put_octet(0xEE);
            }
            assert!(CdrProtocol.encode_context(&mut *enc, 0x0102, 0x0304));
            let body = enc.finish();
            let n = body.len();
            assert_eq!(&body[n - 4..], CDR_CONTEXT_MAGIC);
            assert_eq!(CdrProtocol.extract_context(&body), Some((0x0102, 0x0304)));
        }
    }

    /// A hand-typed telnet line carries a context without any encoder help.
    #[test]
    fn text_context_is_hand_typable() {
        let line = b"7 \"@tcp:h:1#1#IDL:X:1.0\" \"echo\" T \"hi\" \"~ctx\" 42 7";
        assert_eq!(TextProtocol.extract_context(line), Some((42, 7)));
    }

    /// Malformed or mid-line marker bytes never parse as a context.
    #[test]
    fn text_context_rejects_lookalikes() {
        // Marker with trailing junk after the two ids.
        assert_eq!(TextProtocol.extract_context(b"1 \"~ctx\" 2 3 4"), None);
        // Marker with only one id.
        assert_eq!(TextProtocol.extract_context(b"1 \"~ctx\" 2"), None);
        // Marker glued to a preceding token (e.g. inside an escaped string).
        assert_eq!(TextProtocol.extract_context(b"1 \"a\\\"~ctx\" 2 3"), None);
        // Non-numeric ids.
        assert_eq!(TextProtocol.extract_context(b"1 \"~ctx\" x y"), None);
    }

    /// The golden with-token text line: printable and hand-typeable, with
    /// the token section before the context section when both are present.
    #[test]
    fn golden_text_frame_with_token() {
        let mut enc = TextProtocol.encoder();
        enc.put_string("ping");
        enc.put_long(-7);
        assert!(TextProtocol.encode_token(&mut *enc, 12345, 2));
        let body = enc.finish();
        assert_eq!(body, b"\"ping\" -7 \"~tok\" 12345 2");
        assert_eq!(TextProtocol.extract_token(&body), Some((12345, 2)));
        assert_eq!(TextProtocol.extract_context(&body), None);
    }

    /// Both suffixes compose: token first, context last, and each
    /// extractor finds its own section without disturbing the other.
    #[test]
    fn token_and_context_sections_compose_on_both_protocols() {
        for p in [&TextProtocol as &dyn Protocol, &CdrProtocol] {
            let plain = {
                let mut enc = p.encoder();
                enc.put_string("echo");
                enc.put_ulonglong(u64::MAX);
                enc.finish()
            };
            let both = {
                let mut enc = p.encoder();
                enc.put_string("echo");
                enc.put_ulonglong(u64::MAX);
                assert!(p.encode_token(&mut *enc, 0xABCD, 9));
                assert!(p.encode_context(&mut *enc, 1, u64::MAX));
                enc.finish()
            };
            assert!(both.starts_with(&plain), "{}", p.name());
            assert_eq!(p.extract_token(&both), Some((0xABCD, 9)), "{}", p.name());
            assert_eq!(p.extract_context(&both), Some((1, u64::MAX)), "{}", p.name());
            // Old-reader view: the declared fields decode identically.
            let mut dec = p.decoder(both).unwrap();
            assert_eq!(dec.get_string().unwrap(), "echo");
            assert_eq!(dec.get_ulonglong().unwrap(), u64::MAX);
        }
    }

    /// The CDR token section is a fixed-size tail regardless of argument
    /// alignment, alone or with a context section after it.
    #[test]
    fn cdr_token_tail_layout() {
        for misalign in 0..8usize {
            let mut enc = CdrProtocol.encoder();
            for _ in 0..misalign {
                enc.put_octet(0xEE);
            }
            assert!(CdrProtocol.encode_token(&mut *enc, 0x0A0B, 0x0C0D));
            let body = enc.finish();
            let n = body.len();
            assert_eq!(&body[n - 4..], CDR_TOKEN_MAGIC);
            assert_eq!(CdrProtocol.extract_token(&body), Some((0x0A0B, 0x0C0D)));

            let mut enc = CdrProtocol.encoder();
            for _ in 0..misalign {
                enc.put_octet(0xEE);
            }
            assert!(CdrProtocol.encode_token(&mut *enc, 0x0A0B, 0x0C0D));
            assert!(CdrProtocol.encode_context(&mut *enc, 42, 7));
            let body = enc.finish();
            let n = body.len();
            assert_eq!(&body[n - 4..], CDR_CONTEXT_MAGIC);
            assert_eq!(&body[n - CDR_CONTEXT_LEN - 4..n - CDR_CONTEXT_LEN], CDR_TOKEN_MAGIC);
            assert_eq!(CdrProtocol.extract_token(&body), Some((0x0A0B, 0x0C0D)));
            assert_eq!(CdrProtocol.extract_context(&body), Some((42, 7)));
        }
    }

    /// A hand-typed telnet line carries a token — retyping the same line is
    /// the manual replay experiment from the README.
    #[test]
    fn text_token_is_hand_typable() {
        let line = b"7 \"@tcp:h:1#1#IDL:X:1.0\" \"echo\" T \"hi\" \"~tok\" 12345 1";
        assert_eq!(TextProtocol.extract_token(line), Some((12345, 1)));
        let with_ctx =
            b"7 \"@tcp:h:1#1#IDL:X:1.0\" \"echo\" T \"hi\" \"~tok\" 12345 1 \"~ctx\" 42 7";
        assert_eq!(TextProtocol.extract_token(with_ctx), Some((12345, 1)));
        assert_eq!(TextProtocol.extract_context(with_ctx), Some((42, 7)));
    }

    /// Malformed or mid-line token marker bytes never parse as a token.
    #[test]
    fn text_token_rejects_lookalikes() {
        // Trailing junk that is not a complete context section.
        assert_eq!(TextProtocol.extract_token(b"1 \"~tok\" 2 3 4"), None);
        assert_eq!(TextProtocol.extract_token(b"1 \"~tok\" 2 3 \"~ctx\" 4"), None);
        assert_eq!(TextProtocol.extract_token(b"1 \"~tok\" 2 3 \"~ctx\" 4 5 6"), None);
        // Marker with only one id.
        assert_eq!(TextProtocol.extract_token(b"1 \"~tok\" 2"), None);
        // Marker glued to a preceding token (e.g. inside an escaped string).
        assert_eq!(TextProtocol.extract_token(b"1 \"a\\\"~tok\" 2 3"), None);
        // Non-numeric ids.
        assert_eq!(TextProtocol.extract_token(b"1 \"~tok\" x y"), None);
    }

    /// The golden chunked text line: printable, hand-typeable, and the
    /// chunk section is the outermost suffix.
    #[test]
    fn golden_text_frame_with_chunk() {
        let mut enc = TextProtocol.encoder();
        enc.put_string("part");
        enc.put_long(-7);
        assert!(TextProtocol.encode_chunk(&mut *enc, 3, false));
        let body = enc.finish();
        assert_eq!(body, b"\"part\" -7 \"~chunk\" 3 0");
        assert_eq!(TextProtocol.extract_chunk(&body), Some((3, false)));
        assert_eq!(TextProtocol.extract_token(&body), None);
        assert_eq!(TextProtocol.extract_context(&body), None);

        let mut enc = TextProtocol.encoder();
        enc.put_string("part");
        assert!(TextProtocol.encode_chunk(&mut *enc, 4, true));
        let body = enc.finish();
        assert_eq!(body, b"\"part\" \"~chunk\" 4 1");
        assert_eq!(TextProtocol.extract_chunk(&body), Some((4, true)));
    }

    /// All three suffixes compose — token, then context, then chunk — and
    /// each extractor recovers its own section; an old reader still sees
    /// the declared fields byte-identically.
    #[test]
    fn chunk_composes_with_token_and_context_on_both_protocols() {
        for p in [&TextProtocol as &dyn Protocol, &CdrProtocol] {
            let plain = {
                let mut enc = p.encoder();
                enc.put_string("echo");
                enc.put_ulonglong(u64::MAX);
                enc.finish()
            };
            let all = {
                let mut enc = p.encoder();
                enc.put_string("echo");
                enc.put_ulonglong(u64::MAX);
                assert!(p.encode_token(&mut *enc, 0xABCD, 9));
                assert!(p.encode_context(&mut *enc, 1, u64::MAX));
                assert!(p.encode_chunk(&mut *enc, 17, true));
                enc.finish()
            };
            assert!(all.starts_with(&plain), "{}", p.name());
            assert_eq!(p.extract_chunk(&all), Some((17, true)), "{}", p.name());
            assert_eq!(p.extract_token(&all), Some((0xABCD, 9)), "{}", p.name());
            assert_eq!(p.extract_context(&all), Some((1, u64::MAX)), "{}", p.name());
            let mut dec = p.decoder(all).unwrap();
            assert_eq!(dec.get_string().unwrap(), "echo");
            assert_eq!(dec.get_ulonglong().unwrap(), u64::MAX);
        }
    }

    /// The CDR chunk section is a fixed-size tail regardless of argument
    /// alignment, alone or stacked on the other suffixes.
    #[test]
    fn cdr_chunk_tail_layout() {
        for misalign in 0..8usize {
            let mut enc = CdrProtocol.encoder();
            for _ in 0..misalign {
                enc.put_octet(0xEE);
            }
            assert!(CdrProtocol.encode_chunk(&mut *enc, 0x0A0B, false));
            let body = enc.finish();
            let n = body.len();
            assert_eq!(&body[n - 4..], CDR_CHUNK_MAGIC);
            assert_eq!(CdrProtocol.extract_chunk(&body), Some((0x0A0B, false)));

            let mut enc = CdrProtocol.encoder();
            for _ in 0..misalign {
                enc.put_octet(0xEE);
            }
            assert!(CdrProtocol.encode_token(&mut *enc, 5, 6));
            assert!(CdrProtocol.encode_context(&mut *enc, 42, 7));
            assert!(CdrProtocol.encode_chunk(&mut *enc, 9, true));
            let body = enc.finish();
            let n = body.len();
            assert_eq!(&body[n - 4..], CDR_CHUNK_MAGIC);
            assert_eq!(CdrProtocol.extract_chunk(&body), Some((9, true)));
            assert_eq!(CdrProtocol.extract_token(&body), Some((5, 6)));
            assert_eq!(CdrProtocol.extract_context(&body), Some((42, 7)));
        }
    }

    /// A hand-typed telnet line carries a chunk suffix — the README's
    /// manual streaming walkthrough relies on this.
    #[test]
    fn text_chunk_is_hand_typable() {
        let line = b"7 \"@tcp:h:1#1#IDL:X:1.0\" \"put\" \"hello \" \"~chunk\" 0 0";
        assert_eq!(TextProtocol.extract_chunk(line), Some((0, false)));
        let with_tok = b"7 \"put\" \"bytes\" \"~tok\" 12345 1 \"~chunk\" 2 1";
        assert_eq!(TextProtocol.extract_chunk(with_tok), Some((2, true)));
        assert_eq!(TextProtocol.extract_token(with_tok), Some((12345, 1)));
    }

    /// Malformed chunk tails never parse — and never confuse the other
    /// tail extractors either.
    #[test]
    fn chunk_rejects_lookalikes() {
        // Trailing junk, bad last-flag, missing fields.
        assert_eq!(TextProtocol.extract_chunk(b"1 \"~chunk\" 2 0 9"), None);
        assert_eq!(TextProtocol.extract_chunk(b"1 \"~chunk\" 2 5"), None);
        assert_eq!(TextProtocol.extract_chunk(b"1 \"~chunk\" 2"), None);
        assert_eq!(TextProtocol.extract_chunk(b"1 \"a\\\"~chunk\" 2 0"), None);
        assert_eq!(TextProtocol.extract_chunk(b"1 \"~chunk\" x 1"), None);
        // A malformed chunk tail does not hide a genuine token beneath it,
        // but it is not stripped either (junk stays junk).
        assert_eq!(TextProtocol.extract_token(b"1 \"~tok\" 2 3 \"~chunk\" 2 5"), None);
        assert_eq!(TextProtocol.extract_token(b"1 \"~tok\" 2 3 \"~chunk\" 2 1"), Some((2, 3)));
        // CDR: a last-flag outside {0,1} is not a chunk section.
        let mut enc = CdrProtocol.encoder();
        enc.put_ulonglong(7);
        enc.put_ulong(2);
        enc.put_ulong(u32::from_le_bytes(*CDR_CHUNK_MAGIC));
        let body = enc.finish();
        assert_eq!(CdrProtocol.extract_chunk(&body), None);
        assert_eq!(CdrProtocol.extract_chunk(b""), None);
    }
}
