//! CDR-style binary codec: the "general-purpose inter-ORB protocol"
//! comparator.
//!
//! The paper contrasts HeidiRMI's simple text protocol with standard
//! protocols such as IIOP that are "designed for generality" (§2). This
//! module implements the CDR essentials that give IIOP its shape — natural
//! alignment, little-endian primitive layout with an endianness flag in the
//! message header, length-prefixed NUL-terminated strings — so benchmarks
//! (E2) compare against a faithful-in-shape stand-in rather than a straw
//! man.
//!
//! Deviations from full CDR, chosen deliberately: `char` is transmitted as
//! a 32-bit Unicode scalar (CDR's 1-byte char cannot carry the Rust `char`
//! range), and we always emit little-endian (the receiving decoder honours
//! only that flag value).
//!
//! Like GIOP's `request_id`, the RMI layer leads every request and reply
//! body with a `ulonglong` correlation id (see `heidl-rmi`'s `call`
//! module), letting many in-flight calls multiplex one connection with
//! replies arriving in any order.
//!
//! Object references are carried as CDR strings in their stringified
//! form, so the failover grammar with comma-separated fallback profiles
//! (`@tcp:h1:p1,tcp:h2:p2#id#type` — IIOP would use a multi-profile IOR
//! here) needs no wire-format change; `heidl-rmi` parses the profile
//! list and drives endpoint failover above this codec.

use crate::codec::{Decoder, Encoder};
use crate::error::{WireError, WireResult};
use crate::limits::DecodeLimits;

/// Encoder for the CDR binary protocol.
///
/// ```
/// use heidl_wire::{CdrEncoder, Encoder};
///
/// let mut enc = CdrEncoder::new();
/// enc.put_octet(1);
/// enc.put_long(2); // aligned to 4: three pad bytes inserted
/// assert_eq!(enc.finish(), vec![1, 0, 0, 0, 2, 0, 0, 0]);
/// ```
#[derive(Debug)]
pub struct CdrEncoder {
    buf: Vec<u8>,
    depth: u32,
}

impl CdrEncoder {
    /// Creates an empty encoder. The output buffer is drawn from the
    /// process-wide [`pool`](crate::pool), so steady-state encoding does
    /// not allocate.
    pub fn new() -> Self {
        CdrEncoder { buf: crate::pool::global().take_vec(), depth: 0 }
    }

    fn align(&mut self, n: usize) {
        let rem = self.buf.len() % n;
        if rem != 0 {
            self.buf.resize(self.buf.len() + (n - rem), 0);
        }
    }
}

impl Default for CdrEncoder {
    fn default() -> Self {
        CdrEncoder::new()
    }
}

impl Drop for CdrEncoder {
    fn drop(&mut self) {
        // Whatever capacity is left (a finished encoder holds none, an
        // abandoned one holds its scratch) goes back to the pool.
        crate::pool::recycle(std::mem::take(&mut self.buf));
    }
}

impl Encoder for CdrEncoder {
    fn put_bool(&mut self, v: bool) {
        self.buf.push(u8::from(v));
    }

    fn put_octet(&mut self, v: u8) {
        self.buf.push(v);
    }

    fn put_char(&mut self, v: char) {
        self.align(4);
        self.buf.extend_from_slice(&(v as u32).to_le_bytes());
    }

    fn put_short(&mut self, v: i16) {
        self.align(2);
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn put_ushort(&mut self, v: u16) {
        self.align(2);
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn put_long(&mut self, v: i32) {
        self.align(4);
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn put_ulong(&mut self, v: u32) {
        self.align(4);
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn put_longlong(&mut self, v: i64) {
        self.align(8);
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn put_ulonglong(&mut self, v: u64) {
        self.align(8);
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn put_float(&mut self, v: f32) {
        self.align(4);
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn put_double(&mut self, v: f64) {
        self.align(8);
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn put_string(&mut self, v: &str) {
        // CDR: ulong byte count including the terminating NUL, then bytes.
        let bytes = v.as_bytes();
        self.put_ulong(bytes.len() as u32 + 1);
        self.buf.extend_from_slice(bytes);
        self.buf.push(0);
    }

    fn put_len(&mut self, n: u32) {
        self.put_ulong(n);
    }

    fn begin(&mut self) {
        // CDR composites are self-delimiting; only nesting is tracked.
        self.depth += 1;
    }

    fn end(&mut self) {
        assert!(self.depth > 0, "end() without matching begin() — stub generator bug");
        self.depth -= 1;
    }

    fn finish(&mut self) -> Vec<u8> {
        assert_eq!(self.depth, 0, "finish() with {} unclosed begin()s", self.depth);
        std::mem::take(&mut self.buf)
    }

    fn position(&self) -> usize {
        self.buf.len()
    }
}

/// Decoder for the CDR binary protocol.
///
/// Generic over its backing storage `B`: an owned `Vec<u8>` (the
/// default), a [`PooledBuf`](crate::PooledBuf) whose storage recycles
/// when the decoder drops, or a borrowed `&[u8]` for zero-copy peeks at
/// routing fields (see [`Protocol::peek_decoder`](crate::Protocol)).
#[derive(Debug)]
pub struct CdrDecoder<B = Vec<u8>> {
    buf: B,
    pos: usize,
    depth: u32,
    limits: DecodeLimits,
}

impl<B: AsRef<[u8]>> CdrDecoder<B> {
    /// Wraps a message body for decoding with [`DecodeLimits::default`]
    /// (the historical 64 MiB sanity bound).
    pub fn new(buf: B) -> Self {
        CdrDecoder::with_limits(buf, DecodeLimits::default())
    }

    /// Wraps a message body for decoding under explicit [`DecodeLimits`]:
    /// a length prefix beyond the string/sequence bounds, or nesting past
    /// the depth bound, fails cleanly instead of allocating.
    pub fn with_limits(buf: B, limits: DecodeLimits) -> Self {
        CdrDecoder { buf, pos: 0, depth: 0, limits }
    }

    fn align(&mut self, n: usize) {
        let rem = self.pos % n;
        if rem != 0 {
            self.pos += n - rem;
        }
    }

    fn take(&mut self, n: usize, what: &'static str) -> WireResult<&[u8]> {
        let buf = self.buf.as_ref();
        if self.pos + n > buf.len() {
            return Err(WireError::UnexpectedEnd { what });
        }
        let s = &buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }
}

macro_rules! get_le {
    ($self:ident, $ty:ty, $align:expr, $what:expr) => {{
        $self.align($align);
        let bytes = $self.take(std::mem::size_of::<$ty>(), $what)?;
        Ok(<$ty>::from_le_bytes(bytes.try_into().expect("exact size slice")))
    }};
}

impl<B: AsRef<[u8]> + Send> Decoder for CdrDecoder<B> {
    fn get_bool(&mut self) -> WireResult<bool> {
        match self.take(1, "boolean")?[0] {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(WireError::Malformed {
                what: "boolean",
                detail: format!("expected 0 or 1, got {other}"),
            }),
        }
    }

    fn get_octet(&mut self) -> WireResult<u8> {
        Ok(self.take(1, "octet")?[0])
    }

    fn get_char(&mut self) -> WireResult<char> {
        self.align(4);
        let bytes = self.take(4, "char")?;
        let v = u32::from_le_bytes(bytes.try_into().expect("exact size slice"));
        char::from_u32(v).ok_or_else(|| WireError::Malformed {
            what: "char",
            detail: format!("invalid scalar value {v:#x}"),
        })
    }

    fn get_short(&mut self) -> WireResult<i16> {
        get_le!(self, i16, 2, "short")
    }

    fn get_ushort(&mut self) -> WireResult<u16> {
        get_le!(self, u16, 2, "unsigned short")
    }

    fn get_long(&mut self) -> WireResult<i32> {
        get_le!(self, i32, 4, "long")
    }

    fn get_ulong(&mut self) -> WireResult<u32> {
        get_le!(self, u32, 4, "unsigned long")
    }

    fn get_longlong(&mut self) -> WireResult<i64> {
        get_le!(self, i64, 8, "long long")
    }

    fn get_ulonglong(&mut self) -> WireResult<u64> {
        get_le!(self, u64, 8, "unsigned long long")
    }

    fn get_float(&mut self) -> WireResult<f32> {
        get_le!(self, f32, 4, "float")
    }

    fn get_double(&mut self) -> WireResult<f64> {
        get_le!(self, f64, 8, "double")
    }

    fn get_string(&mut self) -> WireResult<String> {
        let len = self.get_ulong()?;
        let max = self.limits.max_string_bytes;
        if len == 0 || len > max {
            return Err(WireError::Bounds { what: "string", len: len.into(), max: max.into() });
        }
        let bytes = self.take(len as usize, "string body")?;
        let (body, nul) = bytes.split_at(len as usize - 1);
        if nul != [0] {
            return Err(WireError::Malformed {
                what: "string",
                detail: "missing NUL terminator".into(),
            });
        }
        // Validate on the borrowed slice, then allocate the String once —
        // no intermediate Vec copy.
        std::str::from_utf8(body).map(str::to_owned).map_err(|e| WireError::Malformed {
            what: "string",
            detail: format!("not valid UTF-8: {e}"),
        })
    }

    fn skip_string(&mut self) -> WireResult<()> {
        // Length and bounds checks match `get_string`; the skipped content
        // itself (NUL terminator, UTF-8) is not validated — callers skip a
        // field precisely because they will not use it, and the full parse
        // revalidates.
        let len = self.get_ulong()?;
        let max = self.limits.max_string_bytes;
        if len == 0 || len > max {
            return Err(WireError::Bounds { what: "string", len: len.into(), max: max.into() });
        }
        self.take(len as usize, "string body")?;
        Ok(())
    }

    fn get_len(&mut self) -> WireResult<u32> {
        let n = self.get_ulong()?;
        let max = self.limits.max_sequence_len;
        if n > max {
            return Err(WireError::Bounds { what: "sequence", len: n.into(), max: max.into() });
        }
        Ok(n)
    }

    fn begin(&mut self) -> WireResult<()> {
        if self.depth >= self.limits.max_depth {
            return Err(WireError::Bounds {
                what: "nesting depth",
                len: u64::from(self.depth) + 1,
                max: self.limits.max_depth.into(),
            });
        }
        self.depth += 1;
        Ok(())
    }

    fn end(&mut self) -> WireResult<()> {
        if self.depth == 0 {
            return Err(WireError::Nesting { detail: "end without begin".into() });
        }
        self.depth -= 1;
        Ok(())
    }

    fn at_end(&self) -> bool {
        self.pos >= self.buf.as_ref().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conformance_roundtrip() {
        let mut enc = CdrEncoder::new();
        crate::codec::conformance::roundtrip_all(&mut enc, |bytes| {
            Box::new(CdrDecoder::new(bytes))
        });
    }

    #[test]
    fn alignment_matches_cdr_rules() {
        let mut enc = CdrEncoder::new();
        enc.put_octet(1);
        enc.put_short(2); // aligns to 2
        enc.put_octet(3);
        enc.put_double(4.0); // aligns to 8
        let bytes = enc.finish();
        assert_eq!(&bytes[..2], &[1, 0], "one pad byte before short");
        assert_eq!(bytes.len(), 2 + 2 + 1 + 3 + 8, "three pad bytes before double");
    }

    #[test]
    fn string_layout_is_len_body_nul() {
        let mut enc = CdrEncoder::new();
        enc.put_string("hi");
        let bytes = enc.finish();
        assert_eq!(bytes, vec![3, 0, 0, 0, b'h', b'i', 0]);
    }

    #[test]
    fn truncated_input_errors() {
        let mut dec = CdrDecoder::new(vec![1, 2]);
        assert!(matches!(dec.get_long(), Err(WireError::UnexpectedEnd { .. })));
    }

    #[test]
    fn bad_bool_byte_errors() {
        let mut dec = CdrDecoder::new(vec![7]);
        assert!(matches!(dec.get_bool(), Err(WireError::Malformed { what: "boolean", .. })));
    }

    #[test]
    fn corrupt_string_length_is_bounded() {
        let mut enc = CdrEncoder::new();
        enc.put_ulong(u32::MAX); // absurd length prefix
        let mut dec = CdrDecoder::new(enc.finish());
        assert!(matches!(dec.get_string(), Err(WireError::Bounds { .. })));
    }

    #[test]
    fn string_without_nul_is_malformed() {
        // length 3, body "abc" (no NUL)
        let mut dec = CdrDecoder::new(vec![3, 0, 0, 0, b'a', b'b', b'c']);
        assert!(matches!(dec.get_string(), Err(WireError::Malformed { .. })));
    }

    #[test]
    fn invalid_char_scalar_is_malformed() {
        let mut dec = CdrDecoder::new(0xD800u32.to_le_bytes().to_vec());
        assert!(dec.get_char().is_err());
    }

    #[test]
    fn decoder_end_without_begin_errors() {
        let mut dec = CdrDecoder::new(vec![]);
        assert!(dec.end().is_err());
        dec.begin().unwrap();
        assert!(dec.end().is_ok());
    }

    #[test]
    fn encoder_reusable_after_finish() {
        let mut enc = CdrEncoder::new();
        enc.put_octet(9);
        assert_eq!(enc.finish(), vec![9]);
        enc.put_octet(8);
        assert_eq!(enc.finish(), vec![8]);
    }

    #[test]
    fn custom_limits_bound_strings_sequences_and_depth() {
        let limits = DecodeLimits::default()
            .with_max_string_bytes(4)
            .with_max_sequence_len(2)
            .with_max_depth(1);
        // String longer than the bound: rejected before the body is read.
        let mut enc = CdrEncoder::new();
        enc.put_string("too long");
        let mut dec = CdrDecoder::with_limits(enc.finish(), limits);
        assert!(matches!(dec.get_string(), Err(WireError::Bounds { what: "string", .. })));
        // Sequence length beyond the bound.
        let mut enc = CdrEncoder::new();
        enc.put_len(3);
        let mut dec = CdrDecoder::with_limits(enc.finish(), limits);
        assert!(matches!(dec.get_len(), Err(WireError::Bounds { what: "sequence", .. })));
        // Nesting past the depth bound.
        let mut dec = CdrDecoder::with_limits(vec![], limits);
        dec.begin().unwrap();
        assert!(matches!(dec.begin(), Err(WireError::Bounds { what: "nesting depth", .. })));
    }

    #[test]
    fn within_limit_values_still_decode() {
        let limits = DecodeLimits::default().with_max_string_bytes(16).with_max_sequence_len(8);
        let mut enc = CdrEncoder::new();
        enc.put_string("ok");
        enc.put_len(8);
        let mut dec = CdrDecoder::with_limits(enc.finish(), limits);
        assert_eq!(dec.get_string().unwrap(), "ok");
        assert_eq!(dec.get_len().unwrap(), 8);
    }

    #[test]
    fn non_utf8_string_body_is_malformed() {
        let mut dec = CdrDecoder::new(vec![3, 0, 0, 0, 0xFF, 0xFE, 0]);
        assert!(matches!(dec.get_string(), Err(WireError::Malformed { what: "string", .. })));
    }
}
