//! Wire protocol errors.

use std::error::Error;
use std::fmt;

/// An error raised while encoding or decoding wire data.
#[derive(Debug, Clone, PartialEq)]
pub enum WireError {
    /// The decoder ran out of input.
    UnexpectedEnd {
        /// What was being decoded.
        what: &'static str,
    },
    /// A token or field had the wrong form.
    Malformed {
        /// What was being decoded.
        what: &'static str,
        /// Detail message.
        detail: String,
    },
    /// A `begin`/`end` structure nesting violation.
    Nesting {
        /// Detail message.
        detail: String,
    },
    /// A bounded value exceeded its bound, or a length prefix was absurd.
    /// Raised whenever a [`DecodeLimits`](crate::DecodeLimits) bound —
    /// frame bytes, string bytes, sequence length, nesting depth — is
    /// violated, always *before* the offending allocation happens.
    Bounds {
        /// What was being decoded.
        what: &'static str,
        /// The offending length.
        len: u64,
        /// The maximum allowed.
        max: u64,
    },
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::UnexpectedEnd { what } => {
                write!(f, "unexpected end of input while decoding {what}")
            }
            WireError::Malformed { what, detail } => write!(f, "malformed {what}: {detail}"),
            WireError::Nesting { detail } => write!(f, "structure nesting error: {detail}"),
            WireError::Bounds { what, len, max } => {
                write!(f, "{what} length {len} exceeds bound {max}")
            }
        }
    }
}

impl Error for WireError {}

/// Convenience alias for wire results.
pub type WireResult<T> = Result<T, WireError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = WireError::UnexpectedEnd { what: "long" };
        assert_eq!(e.to_string(), "unexpected end of input while decoding long");
        let e = WireError::Bounds { what: "string", len: 10, max: 4 };
        assert!(e.to_string().contains("exceeds bound"));
        let e = WireError::Malformed { what: "boolean", detail: "got `2`".into() };
        assert!(e.to_string().contains("boolean"));
        let e = WireError::Nesting { detail: "end without begin".into() };
        assert!(e.to_string().contains("nesting"));
    }
}
