//! The HeidiRMI **text protocol**: a newline-terminated string of ASCII
//! characters (paper §3.1).
//!
//! Messages are single lines of space-separated tokens:
//!
//! * booleans: `T` / `F`
//! * numbers: decimal text (`-7`, `1.5`)
//! * characters: `'x'` with `\n`, `\s` (space), `\'`, `\\` escapes
//! * strings: `"..."` with `\"`, `\\`, `\n` escapes
//! * composite begin/end: `{` and `}`
//!
//! Keeping everything printable is what let the paper's authors *"telnet
//! into the bootstrap port of a Heidi application and type in simple
//! HeidiRMI requests to debug the system"* — experiment E8 reproduces
//! exactly that against our server.
//!
//! The RMI layer puts a decimal **request id** first on every request and
//! reply line (see `heidl-rmi`'s `call` module), so concurrent calls can
//! share one connection and still be correlated. That stays telnet-friendly:
//! a human types `7 "objref" "print" T "hi"` and reads back `7 0`.
//!
//! Object references travel as plain strings too, including the failover
//! form with comma-separated fallback profiles —
//! `@tcp:primary:4700,tcp:backup:4701#1#IDL:Media/Player:1.0` — so a
//! multi-endpoint reference pasted into a telnet session is still just
//! one printable token (parsing and failover live in `heidl-rmi`).

use crate::codec::{Decoder, Encoder};
use crate::error::{WireError, WireResult};
use crate::limits::DecodeLimits;

/// Encoder for the text protocol.
///
/// ```
/// use heidl_wire::{Encoder, TextEncoder};
///
/// let mut enc = TextEncoder::new();
/// enc.put_string("print");
/// enc.put_long(42);
/// assert_eq!(String::from_utf8(enc.finish()).unwrap(), r#""print" 42"#);
/// ```
#[derive(Debug)]
pub struct TextEncoder {
    out: String,
    depth: u32,
}

impl TextEncoder {
    /// Creates an empty encoder. The output buffer is drawn from the
    /// process-wide [`pool`](crate::pool) (pooled buffers are stored
    /// cleared, so reusing one as a `String` is free).
    pub fn new() -> Self {
        let buf = crate::pool::global().take_vec();
        debug_assert!(buf.is_empty());
        TextEncoder { out: String::from_utf8(buf).unwrap_or_default(), depth: 0 }
    }

    fn token(&mut self, t: &str) {
        if !self.out.is_empty() {
            self.out.push(' ');
        }
        self.out.push_str(t);
    }
}

impl Default for TextEncoder {
    fn default() -> Self {
        TextEncoder::new()
    }
}

impl Drop for TextEncoder {
    fn drop(&mut self) {
        crate::pool::recycle(std::mem::take(&mut self.out).into_bytes());
    }
}

fn escape_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            _ => out.push(c),
        }
    }
    out.push('"');
    out
}

fn escape_char(c: char) -> String {
    match c {
        '\'' => "'\\''".to_owned(),
        '\\' => "'\\\\'".to_owned(),
        '\n' => "'\\n'".to_owned(),
        '\r' => "'\\r'".to_owned(),
        ' ' => "'\\s'".to_owned(),
        c => format!("'{c}'"),
    }
}

impl Encoder for TextEncoder {
    fn put_bool(&mut self, v: bool) {
        self.token(if v { "T" } else { "F" });
    }

    fn put_octet(&mut self, v: u8) {
        self.token(&v.to_string());
    }

    fn put_char(&mut self, v: char) {
        let t = escape_char(v);
        self.token(&t);
    }

    fn put_short(&mut self, v: i16) {
        self.token(&v.to_string());
    }

    fn put_ushort(&mut self, v: u16) {
        self.token(&v.to_string());
    }

    fn put_long(&mut self, v: i32) {
        self.token(&v.to_string());
    }

    fn put_ulong(&mut self, v: u32) {
        self.token(&v.to_string());
    }

    fn put_longlong(&mut self, v: i64) {
        self.token(&v.to_string());
    }

    fn put_ulonglong(&mut self, v: u64) {
        self.token(&v.to_string());
    }

    fn put_float(&mut self, v: f32) {
        // `{:?}` produces shortest round-trippable form.
        self.token(&format!("{v:?}"));
    }

    fn put_double(&mut self, v: f64) {
        self.token(&format!("{v:?}"));
    }

    fn put_string(&mut self, v: &str) {
        let t = escape_string(v);
        self.token(&t);
    }

    fn put_len(&mut self, n: u32) {
        self.token(&n.to_string());
    }

    fn begin(&mut self) {
        self.depth += 1;
        self.token("{");
    }

    fn end(&mut self) {
        assert!(self.depth > 0, "end() without matching begin() — stub generator bug");
        self.depth -= 1;
        self.token("}");
    }

    fn finish(&mut self) -> Vec<u8> {
        assert_eq!(self.depth, 0, "finish() with {} unclosed begin()s", self.depth);
        std::mem::take(&mut self.out).into_bytes()
    }

    fn position(&self) -> usize {
        self.out.len()
    }
}

/// One tokenized span into the decoder's normalized buffer. `quote`
/// records the token class — `0` for bare tokens, `b'"'` for string
/// tokens, `b'\''` for char tokens — which the getters check to detect
/// type confusion (a quoted `"42"` must not parse as a number).
#[derive(Debug, Clone, Copy)]
struct TokSpan {
    start: usize,
    end: usize,
    quote: u8,
}

/// Decoder for the text protocol.
///
/// Tokenization is span-based: escapes are normalized into one shared
/// buffer and each token is a `(start, end, quote-class)` triple into it,
/// so decoding a message costs two allocations (buffer + span table)
/// instead of one `String` per token.
#[derive(Debug)]
pub struct TextDecoder {
    buf: String,
    spans: Vec<TokSpan>,
    pos: usize,
    depth: u32,
    limits: DecodeLimits,
}

impl Drop for TextDecoder {
    fn drop(&mut self) {
        crate::pool::recycle(std::mem::take(&mut self.buf).into_bytes());
    }
}

impl TextDecoder {
    /// Tokenizes a text-protocol message with [`DecodeLimits::default`].
    ///
    /// # Errors
    ///
    /// Fails when the bytes are not UTF-8 or a quoted token is
    /// unterminated.
    pub fn new(bytes: &[u8]) -> WireResult<Self> {
        TextDecoder::with_limits(bytes, DecodeLimits::default())
    }

    /// Tokenizes a text-protocol message under explicit [`DecodeLimits`]:
    /// tokens longer than the string bound, sequence lengths beyond their
    /// bound, and `{`/`}` nesting past the depth bound all fail cleanly —
    /// the same contract the CDR decoder enforces on its length prefixes.
    ///
    /// # Errors
    ///
    /// As [`TextDecoder::new`], plus [`WireError::Bounds`] violations.
    pub fn with_limits(bytes: &[u8], limits: DecodeLimits) -> WireResult<Self> {
        let text = std::str::from_utf8(bytes).map_err(|e| WireError::Malformed {
            what: "text message",
            detail: format!("not valid UTF-8: {e}"),
        })?;
        let (buf, spans) = tokenize(text, &limits)?;
        Ok(TextDecoder { buf, spans, pos: 0, depth: 0, limits })
    }

    fn next(&mut self, what: &'static str) -> WireResult<(&str, u8)> {
        let sp = *self.spans.get(self.pos).ok_or(WireError::UnexpectedEnd { what })?;
        self.pos += 1;
        Ok((&self.buf[sp.start..sp.end], sp.quote))
    }

    fn parse_num<T: std::str::FromStr>(&mut self, what: &'static str) -> WireResult<T>
    where
        T::Err: std::fmt::Display,
    {
        let (t, quote) = self.next(what)?;
        if quote != 0 {
            return Err(WireError::Malformed {
                what,
                detail: format!("expected bare token, got quoted `{t}`"),
            });
        }
        t.parse().map_err(|e| WireError::Malformed { what, detail: format!("`{t}`: {e}") })
    }
}

fn tokenize(text: &str, limits: &DecodeLimits) -> WireResult<(String, Vec<TokSpan>)> {
    // The string bound is enforced here, while a token accumulates, so a
    // hostile message cannot grow the buffer by a giant token (`extra`
    // preserves the historical count: quoted tokens carried their opening
    // quote, and the `+ 1` mirrors CDR, whose string lengths include the
    // NUL byte).
    let max_tok = limits.max_string_bytes as usize;
    let over = |len: usize, extra: usize| -> WireResult<()> {
        if len + extra > max_tok {
            return Err(WireError::Bounds {
                what: "string",
                len: (len + extra) as u64,
                max: max_tok as u64,
            });
        }
        Ok(())
    };
    // Pooled buffers are stored cleared, so reusing one as a String is
    // free; the decoder's Drop recycles it.
    let mut buf = String::from_utf8(crate::pool::global().take_vec()).unwrap_or_default();
    debug_assert!(buf.is_empty());
    let mut spans = Vec::new();
    let mut chars = text.chars().peekable();
    while let Some(&c) = chars.peek() {
        match c {
            ' ' | '\t' | '\n' | '\r' => {
                chars.next();
            }
            '"' | '\'' => {
                let quote = c;
                chars.next();
                let start = buf.len();
                let mut closed = false;
                while let Some(c) = chars.next() {
                    match c {
                        '\\' => match chars.next() {
                            Some('n') => buf.push('\n'),
                            Some('r') => buf.push('\r'),
                            Some('s') => buf.push(' '),
                            Some(e) => buf.push(e),
                            None => {
                                return Err(WireError::Malformed {
                                    what: "quoted token",
                                    detail: "dangling escape".into(),
                                });
                            }
                        },
                        c if c == quote => {
                            closed = true;
                            break;
                        }
                        c => buf.push(c),
                    }
                    over(buf.len() - start, 2)?;
                }
                if !closed {
                    return Err(WireError::Malformed {
                        what: "quoted token",
                        detail: "unterminated quote".into(),
                    });
                }
                spans.push(TokSpan { start, end: buf.len(), quote: quote as u8 });
            }
            _ => {
                let start = buf.len();
                while let Some(&c) = chars.peek() {
                    if c.is_whitespace() {
                        break;
                    }
                    buf.push(c);
                    chars.next();
                    over(buf.len() - start, 1)?;
                }
                spans.push(TokSpan { start, end: buf.len(), quote: 0 });
            }
        }
    }
    Ok((buf, spans))
}

impl Decoder for TextDecoder {
    fn get_bool(&mut self) -> WireResult<bool> {
        match self.next("boolean")? {
            ("T", 0) => Ok(true),
            ("F", 0) => Ok(false),
            (other, _) => Err(WireError::Malformed {
                what: "boolean",
                detail: format!("expected T or F, got `{other}`"),
            }),
        }
    }

    fn get_octet(&mut self) -> WireResult<u8> {
        self.parse_num("octet")
    }

    fn get_char(&mut self) -> WireResult<char> {
        let (t, quote) = self.next("char")?;
        if quote != b'\'' {
            return Err(WireError::Malformed {
                what: "char",
                detail: format!("expected quoted char, got `{t}`"),
            });
        }
        let mut chars = t.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(WireError::Malformed {
                what: "char",
                detail: format!("expected exactly one character, got `{t}`"),
            }),
        }
    }

    fn get_short(&mut self) -> WireResult<i16> {
        self.parse_num("short")
    }

    fn get_ushort(&mut self) -> WireResult<u16> {
        self.parse_num("unsigned short")
    }

    fn get_long(&mut self) -> WireResult<i32> {
        self.parse_num("long")
    }

    fn get_ulong(&mut self) -> WireResult<u32> {
        self.parse_num("unsigned long")
    }

    fn get_longlong(&mut self) -> WireResult<i64> {
        self.parse_num("long long")
    }

    fn get_ulonglong(&mut self) -> WireResult<u64> {
        self.parse_num("unsigned long long")
    }

    fn get_float(&mut self) -> WireResult<f32> {
        self.parse_num("float")
    }

    fn get_double(&mut self) -> WireResult<f64> {
        self.parse_num("double")
    }

    fn get_string(&mut self) -> WireResult<String> {
        let (t, quote) = self.next("string")?;
        if quote == b'"' {
            Ok(t.to_owned())
        } else {
            Err(WireError::Malformed {
                what: "string",
                detail: format!("expected quoted string, got `{t}`"),
            })
        }
    }

    fn skip_string(&mut self) -> WireResult<()> {
        let (t, quote) = self.next("string")?;
        if quote == b'"' {
            Ok(())
        } else {
            Err(WireError::Malformed {
                what: "string",
                detail: format!("expected quoted string, got `{t}`"),
            })
        }
    }

    fn get_len(&mut self) -> WireResult<u32> {
        let n: u32 = self.parse_num("sequence length")?;
        let max = self.limits.max_sequence_len;
        if n > max {
            return Err(WireError::Bounds { what: "sequence", len: n.into(), max: max.into() });
        }
        Ok(n)
    }

    fn begin(&mut self) -> WireResult<()> {
        match self.next("begin marker")? {
            ("{", 0) => {}
            (other, _) => {
                return Err(WireError::Nesting { detail: format!("expected `{{`, got `{other}`") })
            }
        }
        if self.depth >= self.limits.max_depth {
            return Err(WireError::Bounds {
                what: "nesting depth",
                len: u64::from(self.depth) + 1,
                max: self.limits.max_depth.into(),
            });
        }
        self.depth += 1;
        Ok(())
    }

    fn end(&mut self) -> WireResult<()> {
        match self.next("end marker")? {
            ("}", 0) => {
                self.depth = self.depth.saturating_sub(1);
                Ok(())
            }
            (other, _) => {
                Err(WireError::Nesting { detail: format!("expected `}}`, got `{other}`") })
            }
        }
    }

    fn at_end(&self) -> bool {
        self.pos >= self.spans.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conformance_roundtrip() {
        let mut enc = TextEncoder::new();
        crate::codec::conformance::roundtrip_all(&mut enc, |bytes| {
            Box::new(TextDecoder::new(&bytes).unwrap())
        });
    }

    #[test]
    fn messages_are_human_readable_single_lines() {
        let mut enc = TextEncoder::new();
        enc.put_string("@tcp:galaxy.nec.com:1234#9876#IDL:Heidi/A:1.0");
        enc.put_string("p");
        enc.put_long(0);
        let bytes = enc.finish();
        let text = String::from_utf8(bytes).unwrap();
        assert_eq!(text, r#""@tcp:galaxy.nec.com:1234#9876#IDL:Heidi/A:1.0" "p" 0"#);
        assert!(!text.contains('\n'), "framing requires single-line messages");
    }

    #[test]
    fn strings_with_newlines_stay_on_one_line() {
        let mut enc = TextEncoder::new();
        enc.put_string("a\nb");
        let bytes = enc.finish();
        assert!(!bytes.contains(&b'\n'));
        let mut dec = TextDecoder::new(&bytes).unwrap();
        assert_eq!(dec.get_string().unwrap(), "a\nb");
    }

    #[test]
    fn a_human_can_type_a_request() {
        // What you'd type over telnet: bare tokens, quoted strings.
        let typed = br#""print" "hello there" 3 T"#;
        let mut dec = TextDecoder::new(typed).unwrap();
        assert_eq!(dec.get_string().unwrap(), "print");
        assert_eq!(dec.get_string().unwrap(), "hello there");
        assert_eq!(dec.get_long().unwrap(), 3);
        assert!(dec.get_bool().unwrap());
        assert!(dec.at_end());
    }

    #[test]
    fn type_confusion_is_detected() {
        let mut enc = TextEncoder::new();
        enc.put_long(42);
        let bytes = enc.finish();
        let mut dec = TextDecoder::new(&bytes).unwrap();
        assert!(matches!(dec.get_string(), Err(WireError::Malformed { what: "string", .. })));
        let mut dec = TextDecoder::new(&bytes).unwrap();
        assert!(dec.get_bool().is_err());
    }

    #[test]
    fn truncated_input_reports_unexpected_end() {
        let mut dec = TextDecoder::new(b"1").unwrap();
        assert_eq!(dec.get_long().unwrap(), 1);
        assert!(matches!(dec.get_long(), Err(WireError::UnexpectedEnd { .. })));
    }

    #[test]
    fn invalid_utf8_is_rejected() {
        assert!(TextDecoder::new(&[0xFF, 0xFE]).is_err());
    }

    #[test]
    fn unterminated_quote_is_rejected() {
        assert!(TextDecoder::new(b"\"abc").is_err());
        assert!(TextDecoder::new(b"\"abc\\").is_err());
    }

    #[test]
    fn nesting_mismatch_is_reported() {
        let mut enc = TextEncoder::new();
        enc.begin();
        enc.put_long(1);
        enc.end();
        let bytes = enc.finish();
        let mut dec = TextDecoder::new(&bytes).unwrap();
        dec.begin().unwrap();
        assert_eq!(dec.get_long().unwrap(), 1);
        assert!(dec.end().is_ok());
        // And a begin where a long sits:
        let mut enc = TextEncoder::new();
        enc.put_long(1);
        let bytes = enc.finish();
        let mut dec = TextDecoder::new(&bytes).unwrap();
        assert!(matches!(dec.begin(), Err(WireError::Nesting { .. })));
    }

    #[test]
    #[should_panic(expected = "unclosed begin")]
    fn finish_with_open_begin_panics() {
        let mut enc = TextEncoder::new();
        enc.begin();
        let _ = enc.finish();
    }

    #[test]
    #[should_panic(expected = "without matching begin")]
    fn end_without_begin_panics() {
        let mut enc = TextEncoder::new();
        enc.end();
    }

    #[test]
    fn special_floats_roundtrip() {
        let mut enc = TextEncoder::new();
        enc.put_double(f64::INFINITY);
        enc.put_double(f64::NEG_INFINITY);
        enc.put_float(f32::NAN);
        let bytes = enc.finish();
        let mut dec = TextDecoder::new(&bytes).unwrap();
        assert_eq!(dec.get_double().unwrap(), f64::INFINITY);
        assert_eq!(dec.get_double().unwrap(), f64::NEG_INFINITY);
        assert!(dec.get_float().unwrap().is_nan());
    }

    #[test]
    fn encoder_is_reusable_after_finish() {
        let mut enc = TextEncoder::new();
        enc.put_long(1);
        assert_eq!(enc.finish(), b"1");
        enc.put_long(2);
        assert_eq!(enc.finish(), b"2");
    }

    #[test]
    fn custom_limits_bound_tokens_sequences_and_depth() {
        let limits = DecodeLimits::default()
            .with_max_string_bytes(8)
            .with_max_sequence_len(2)
            .with_max_depth(1);
        // An oversized quoted token is rejected while tokenizing, so the
        // giant String is never materialized.
        let long = format!("\"{}\"", "x".repeat(64));
        assert!(matches!(
            TextDecoder::with_limits(long.as_bytes(), limits),
            Err(WireError::Bounds { what: "string", .. })
        ));
        // Bare tokens are bounded too (a number 10 km long is an attack).
        let bare = "1".repeat(64);
        assert!(TextDecoder::with_limits(bare.as_bytes(), limits).is_err());
        // Sequence length beyond the bound.
        let mut dec = TextDecoder::with_limits(b"3", limits).unwrap();
        assert!(matches!(dec.get_len(), Err(WireError::Bounds { what: "sequence", .. })));
        // Nesting past the depth bound.
        let mut dec = TextDecoder::with_limits(b"{ {", limits).unwrap();
        dec.begin().unwrap();
        assert!(matches!(dec.begin(), Err(WireError::Bounds { what: "nesting depth", .. })));
    }

    #[test]
    fn within_limit_text_still_decodes() {
        let limits = DecodeLimits::default().with_max_string_bytes(16).with_max_sequence_len(8);
        let mut enc = TextEncoder::new();
        enc.put_string("ok");
        enc.put_len(8);
        enc.begin();
        enc.end();
        let bytes = enc.finish();
        let mut dec = TextDecoder::with_limits(&bytes, limits).unwrap();
        assert_eq!(dec.get_string().unwrap(), "ok");
        assert_eq!(dec.get_len().unwrap(), 8);
        dec.begin().unwrap();
        dec.end().unwrap();
        assert!(dec.at_end());
    }

    #[test]
    fn char_escapes_roundtrip() {
        for c in ['a', ' ', '\n', '\'', '\\', '\r', '✓'] {
            let mut enc = TextEncoder::new();
            enc.put_char(c);
            let bytes = enc.finish();
            let mut dec = TextDecoder::new(&bytes).unwrap();
            assert_eq!(dec.get_char().unwrap(), c, "char {c:?}");
        }
    }
}
