//! Chunked-stream reassembly validation.
//!
//! A chunked transfer arrives as a sequence of ordinary frames, each
//! carrying a trailing chunk section (`index`, `last`) — see
//! [`Protocol::extract_chunk`](crate::Protocol::extract_chunk). The
//! receiver must not trust those tails: a hostile peer can lie about
//! `last` (stream never ends), claim absurd indices, or interleave two
//! streams' counters. [`ChunkAssembler`] is the single validation point —
//! it admits exactly the in-order prefix `0, 1, 2, …` up to
//! [`DecodeLimits::max_stream_chunks`] and fails cleanly on anything
//! else, *before* the caller buffers the chunk body.

use crate::error::{WireError, WireResult};
use crate::limits::DecodeLimits;

/// Validates the chunk tails of one stream as they arrive.
///
/// ```
/// use heidl_wire::{ChunkAssembler, DecodeLimits};
///
/// let mut asm = ChunkAssembler::new(DecodeLimits::default());
/// assert!(!asm.accept(0, false).unwrap());
/// assert!(asm.accept(1, true).unwrap()); // stream complete
/// assert!(asm.accept(2, true).is_err()); // chunks after `last` are hostile
/// ```
#[derive(Debug)]
pub struct ChunkAssembler {
    next_index: u64,
    done: bool,
    poisoned: bool,
    limits: DecodeLimits,
}

impl ChunkAssembler {
    /// Creates an assembler enforcing `limits.max_stream_chunks`.
    pub fn new(limits: DecodeLimits) -> Self {
        ChunkAssembler { next_index: 0, done: false, poisoned: false, limits }
    }

    /// Validates the next chunk tail. Returns `Ok(true)` when this chunk
    /// completes the stream, `Ok(false)` when more chunks are expected.
    ///
    /// One hostile tail poisons the stream: every subsequent `accept`
    /// fails too, so a caller cannot be tricked into resuming a stream
    /// that already lied once.
    ///
    /// # Errors
    ///
    /// [`WireError::Malformed`] on an out-of-order index (a lying or
    /// interleaved stream), a chunk arriving after `last`, or any chunk
    /// on a poisoned stream; [`WireError::Bounds`] when the stream
    /// exceeds [`DecodeLimits::max_stream_chunks`].
    pub fn accept(&mut self, index: u64, last: bool) -> WireResult<bool> {
        if self.poisoned {
            return Err(WireError::Malformed {
                what: "chunk stream",
                detail: "stream already failed validation".into(),
            });
        }
        if self.done {
            self.poisoned = true;
            return Err(WireError::Malformed {
                what: "chunk stream",
                detail: format!("chunk {index} after the final chunk"),
            });
        }
        if index != self.next_index {
            self.poisoned = true;
            return Err(WireError::Malformed {
                what: "chunk stream",
                detail: format!("chunk index {index}, expected {}", self.next_index),
            });
        }
        let count = index + 1;
        if count > u64::from(self.limits.max_stream_chunks) {
            self.poisoned = true;
            return Err(WireError::Bounds {
                what: "chunk stream",
                len: count,
                max: self.limits.max_stream_chunks.into(),
            });
        }
        self.next_index = count;
        self.done = last;
        Ok(last)
    }

    /// True once the final chunk has been accepted.
    pub fn is_done(&self) -> bool {
        self.done
    }

    /// Number of chunks accepted so far.
    pub fn accepted(&self) -> u64 {
        self.next_index
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn in_order_stream_completes() {
        let mut asm = ChunkAssembler::new(DecodeLimits::default());
        assert!(!asm.accept(0, false).unwrap());
        assert!(!asm.accept(1, false).unwrap());
        assert!(asm.accept(2, true).unwrap());
        assert!(asm.is_done());
        assert_eq!(asm.accepted(), 3);
    }

    #[test]
    fn single_chunk_stream_completes() {
        let mut asm = ChunkAssembler::new(DecodeLimits::default());
        assert!(asm.accept(0, true).unwrap());
    }

    #[test]
    fn out_of_order_and_oversized_indices_fail() {
        let mut asm = ChunkAssembler::new(DecodeLimits::default());
        assert!(matches!(asm.accept(1, false), Err(WireError::Malformed { .. })));
        let mut asm = ChunkAssembler::new(DecodeLimits::default());
        assert!(matches!(asm.accept(u64::MAX, true), Err(WireError::Malformed { .. })));
    }

    #[test]
    fn stream_longer_than_the_bound_fails() {
        let limits = DecodeLimits::default().with_max_stream_chunks(2);
        let mut asm = ChunkAssembler::new(limits);
        assert!(!asm.accept(0, false).unwrap());
        assert!(!asm.accept(1, false).unwrap());
        assert!(matches!(asm.accept(2, false), Err(WireError::Bounds { .. })));
    }

    #[test]
    fn chunks_after_last_fail() {
        let mut asm = ChunkAssembler::new(DecodeLimits::default());
        assert!(asm.accept(0, true).unwrap());
        assert!(asm.accept(1, false).is_err());
    }
}
