//! Codec traits: what a `Call` object uses to marshal and unmarshal.
//!
//! The paper (§3.1): *"The `Call` object provides the functions for
//! marshaling and unmarshaling all primitive data types, as well as
//! additional `begin` and `end` functions that permit structuring of the
//! call request so that such composite data types as structs or sequences
//! can be easily represented."*
//!
//! Both the text protocol and the CDR binary protocol implement
//! [`Encoder`]/[`Decoder`], so generated stubs and skeletons are protocol
//! independent — the paper's "abstract interface to the ORB".

use crate::error::WireResult;

/// Marshals primitive values and structure markers into a message body.
///
/// Implementations are append-only; [`Encoder::finish`] takes the bytes.
pub trait Encoder: Send {
    /// Appends a boolean.
    fn put_bool(&mut self, v: bool);
    /// Appends an octet (raw byte).
    fn put_octet(&mut self, v: u8);
    /// Appends a character.
    fn put_char(&mut self, v: char);
    /// Appends a 16-bit signed integer.
    fn put_short(&mut self, v: i16);
    /// Appends a 16-bit unsigned integer.
    fn put_ushort(&mut self, v: u16);
    /// Appends a 32-bit signed integer (IDL `long`).
    fn put_long(&mut self, v: i32);
    /// Appends a 32-bit unsigned integer.
    fn put_ulong(&mut self, v: u32);
    /// Appends a 64-bit signed integer.
    fn put_longlong(&mut self, v: i64);
    /// Appends a 64-bit unsigned integer.
    fn put_ulonglong(&mut self, v: u64);
    /// Appends a 32-bit float.
    fn put_float(&mut self, v: f32);
    /// Appends a 64-bit float.
    fn put_double(&mut self, v: f64);
    /// Appends a string.
    fn put_string(&mut self, v: &str);
    /// Appends a sequence length prefix.
    fn put_len(&mut self, n: u32);
    /// Opens a composite value (struct, sequence body, call arguments).
    fn begin(&mut self);
    /// Closes the innermost composite value.
    ///
    /// # Panics
    ///
    /// Implementations panic on `end` without matching `begin` — that is a
    /// stub-generator bug, not a runtime condition.
    fn end(&mut self);
    /// Completes the message and returns its bytes, leaving the encoder
    /// empty and reusable.
    fn finish(&mut self) -> Vec<u8>;
    /// Byte offset of the next append into the message produced by
    /// [`Encoder::finish`] — a stable marker callers can use to delimit a
    /// span of the encoded body (e.g. "the argument bytes of this call")
    /// without re-encoding.
    fn position(&self) -> usize;
}

/// Unmarshals values written by the matching [`Encoder`].
///
/// Every getter validates its input and fails with a
/// [`WireError`](crate::WireError) rather than panicking: bytes come from
/// the network.
pub trait Decoder: Send {
    /// Reads a boolean.
    ///
    /// # Errors
    ///
    /// Fails on truncated or malformed input (as do all getters).
    fn get_bool(&mut self) -> WireResult<bool>;
    /// Reads an octet.
    ///
    /// # Errors
    ///
    /// Fails on truncated or malformed input.
    fn get_octet(&mut self) -> WireResult<u8>;
    /// Reads a character.
    ///
    /// # Errors
    ///
    /// Fails on truncated or malformed input.
    fn get_char(&mut self) -> WireResult<char>;
    /// Reads a 16-bit signed integer.
    ///
    /// # Errors
    ///
    /// Fails on truncated or malformed input.
    fn get_short(&mut self) -> WireResult<i16>;
    /// Reads a 16-bit unsigned integer.
    ///
    /// # Errors
    ///
    /// Fails on truncated or malformed input.
    fn get_ushort(&mut self) -> WireResult<u16>;
    /// Reads a 32-bit signed integer.
    ///
    /// # Errors
    ///
    /// Fails on truncated or malformed input.
    fn get_long(&mut self) -> WireResult<i32>;
    /// Reads a 32-bit unsigned integer.
    ///
    /// # Errors
    ///
    /// Fails on truncated or malformed input.
    fn get_ulong(&mut self) -> WireResult<u32>;
    /// Reads a 64-bit signed integer.
    ///
    /// # Errors
    ///
    /// Fails on truncated or malformed input.
    fn get_longlong(&mut self) -> WireResult<i64>;
    /// Reads a 64-bit unsigned integer.
    ///
    /// # Errors
    ///
    /// Fails on truncated or malformed input.
    fn get_ulonglong(&mut self) -> WireResult<u64>;
    /// Reads a 32-bit float.
    ///
    /// # Errors
    ///
    /// Fails on truncated or malformed input.
    fn get_float(&mut self) -> WireResult<f32>;
    /// Reads a 64-bit float.
    ///
    /// # Errors
    ///
    /// Fails on truncated or malformed input.
    fn get_double(&mut self) -> WireResult<f64>;
    /// Reads a string.
    ///
    /// # Errors
    ///
    /// Fails on truncated or malformed input.
    fn get_string(&mut self) -> WireResult<String>;
    /// Skips over one string without materializing it — used when peeking
    /// at routing fields past a string the caller does not need. The
    /// default decodes and discards; codecs override to avoid the
    /// allocation.
    ///
    /// # Errors
    ///
    /// Fails on truncated or malformed input, as [`Decoder::get_string`]
    /// (implementations may skip content-level validation of the skipped
    /// bytes).
    fn skip_string(&mut self) -> WireResult<()> {
        self.get_string().map(|_| ())
    }
    /// Reads a sequence length prefix.
    ///
    /// # Errors
    ///
    /// Fails on truncated or malformed input.
    fn get_len(&mut self) -> WireResult<u32>;
    /// Consumes a composite-open marker.
    ///
    /// # Errors
    ///
    /// Fails when the next token is not a `begin`.
    fn begin(&mut self) -> WireResult<()>;
    /// Consumes a composite-close marker.
    ///
    /// # Errors
    ///
    /// Fails when the next token is not an `end`.
    fn end(&mut self) -> WireResult<()>;
    /// True when all input has been consumed.
    fn at_end(&self) -> bool;
}

#[cfg(test)]
pub(crate) mod conformance {
    //! A protocol-agnostic round-trip exercise shared by the text and CDR
    //! codec tests.
    use super::*;

    pub(crate) fn roundtrip_all(
        enc: &mut dyn Encoder,
        mk_dec: impl Fn(Vec<u8>) -> Box<dyn Decoder>,
    ) {
        enc.put_bool(true);
        enc.put_bool(false);
        enc.put_octet(0xAB);
        enc.put_char('x');
        enc.put_char('\n');
        enc.put_short(-12345);
        enc.put_ushort(54321);
        enc.put_long(-7);
        enc.put_ulong(4_000_000_000);
        enc.put_longlong(i64::MIN);
        enc.put_ulonglong(u64::MAX);
        enc.put_float(1.5);
        enc.put_double(-0.25);
        enc.put_string("hello world \"quoted\" \\ line\nbreak");
        enc.put_string("");
        enc.put_len(3);
        enc.begin();
        enc.put_long(1);
        enc.begin();
        enc.put_string("nested");
        enc.end();
        enc.end();
        let bytes = enc.finish();

        let mut dec = mk_dec(bytes);
        assert!(dec.get_bool().unwrap());
        assert!(!dec.get_bool().unwrap());
        assert_eq!(dec.get_octet().unwrap(), 0xAB);
        assert_eq!(dec.get_char().unwrap(), 'x');
        assert_eq!(dec.get_char().unwrap(), '\n');
        assert_eq!(dec.get_short().unwrap(), -12345);
        assert_eq!(dec.get_ushort().unwrap(), 54321);
        assert_eq!(dec.get_long().unwrap(), -7);
        assert_eq!(dec.get_ulong().unwrap(), 4_000_000_000);
        assert_eq!(dec.get_longlong().unwrap(), i64::MIN);
        assert_eq!(dec.get_ulonglong().unwrap(), u64::MAX);
        assert_eq!(dec.get_float().unwrap(), 1.5);
        assert_eq!(dec.get_double().unwrap(), -0.25);
        assert_eq!(dec.get_string().unwrap(), "hello world \"quoted\" \\ line\nbreak");
        assert_eq!(dec.get_string().unwrap(), "");
        assert_eq!(dec.get_len().unwrap(), 3);
        dec.begin().unwrap();
        assert_eq!(dec.get_long().unwrap(), 1);
        dec.begin().unwrap();
        assert_eq!(dec.get_string().unwrap(), "nested");
        dec.end().unwrap();
        dec.end().unwrap();
        assert!(dec.at_end());
    }
}
