//! Offline stand-in for the `parking_lot` crate, exposing the subset of its
//! API this workspace uses (`Mutex`, `RwLock`, `Condvar` and their guards)
//! implemented over `std::sync`. Poisoning is swallowed, matching
//! parking_lot's non-poisoning semantics.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::PoisonError;
use std::time::Duration;

pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

pub struct MutexGuard<'a, T: ?Sized>(std::sync::MutexGuard<'a, T>);

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(self.0.lock().unwrap_or_else(PoisonError::into_inner))
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(MutexGuard(g)),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(MutexGuard(p.into_inner())),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_tuple("Mutex").field(&&*g).finish(),
            None => f.write_str("Mutex(<locked>)"),
        }
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

pub struct RwLockReadGuard<'a, T: ?Sized>(std::sync::RwLockReadGuard<'a, T>);

pub struct RwLockWriteGuard<'a, T: ?Sized>(std::sync::RwLockWriteGuard<'a, T>);

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard(self.0.read().unwrap_or_else(PoisonError::into_inner))
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard(self.0.write().unwrap_or_else(PoisonError::into_inner))
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("RwLock").field(&&*self.read()).finish()
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

#[derive(Default)]
pub struct Condvar(std::sync::Condvar);

impl Condvar {
    pub const fn new() -> Self {
        Condvar(std::sync::Condvar::new())
    }

    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    pub fn notify_all(&self) {
        self.0.notify_all();
    }

    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        // Safety dance: std's Condvar needs the std guard. We temporarily
        // move it out and back in; the replace trick below relies on the
        // guard type being a transparent wrapper.
        take_guard(guard, |g| self.0.wait(g).unwrap_or_else(PoisonError::into_inner));
    }

    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let mut timed_out = false;
        take_guard(guard, |g| {
            let (g, res) = self.0.wait_timeout(g, timeout).unwrap_or_else(PoisonError::into_inner);
            timed_out = res.timed_out();
            g
        });
        WaitTimeoutResult(timed_out)
    }
}

#[derive(Clone, Copy, Debug)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// Temporarily moves the std guard out of the wrapper so std's `Condvar`
/// can consume and return it. `f` must not panic (our callers only call
/// `wait`/`wait_timeout` and swallow poisoning, which never panic here).
fn take_guard<'a, T>(
    guard: &mut MutexGuard<'a, T>,
    f: impl FnOnce(std::sync::MutexGuard<'a, T>) -> std::sync::MutexGuard<'a, T>,
) {
    unsafe {
        let inner = std::ptr::read(&guard.0);
        let inner = f(inner);
        std::ptr::write(&mut guard.0, inner);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(l.read().len(), 2);
    }

    #[test]
    fn condvar_wakes() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        thread::spawn(move || {
            *p2.0.lock() = true;
            p2.1.notify_one();
        });
        let mut guard = pair.0.lock();
        while !*guard {
            pair.1.wait(&mut guard);
        }
        assert!(*guard);
    }
}
