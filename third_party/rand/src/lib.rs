//! Offline stand-in for the `rand` crate covering the subset this workspace
//! uses: `rngs::StdRng`, `SeedableRng::seed_from_u64`, and `Rng::{gen,
//! gen_range}` over the primitive types the benches sample. Deterministic
//! splitmix64 core — not cryptographic, fine for workload generation.

use std::ops::{Range, RangeInclusive};

pub mod rngs {
    /// Deterministic splitmix64 generator.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        pub(crate) state: u64,
    }

    impl StdRng {
        pub(crate) fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

impl SeedableRng for rngs::StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        rngs::StdRng { state: seed ^ 0x5851_F42D_4C95_7F2D }
    }
}

/// Types samplable from the "standard" distribution.
pub trait Standard: Sized {
    fn sample(rng: &mut rngs::StdRng) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample(rng: &mut rngs::StdRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample(rng: &mut rngs::StdRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample(rng: &mut rngs::StdRng) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample(rng: &mut rngs::StdRng) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for char {
    fn sample(rng: &mut rngs::StdRng) -> Self {
        // Printable ASCII keeps workloads text-protocol safe.
        (b' ' + (rng.next_u64() % 95) as u8) as char
    }
}

/// Ranges usable with `Rng::gen_range`.
pub trait SampleRange<T> {
    fn sample_from(self, rng: &mut rngs::StdRng) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from(self, rng: &mut rngs::StdRng) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from(self, rng: &mut rngs::StdRng) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "empty range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full-width inclusive range.
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

pub trait Rng {
    fn gen<T: Standard>(&mut self) -> T;
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T;
}

impl Rng for rngs::StdRng {
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_from(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rngs::StdRng;

    #[test]
    fn deterministic() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..8 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn ranges_in_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v: u8 = r.gen_range(b' '..=b'~');
            assert!((b' '..=b'~').contains(&v));
            let w: usize = r.gen_range(3..10usize);
            assert!((3..10).contains(&w));
        }
    }

    #[test]
    fn f64_unit_interval() {
        let mut r = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            let v: f64 = r.gen();
            assert!((0.0..1.0).contains(&v));
        }
    }
}
