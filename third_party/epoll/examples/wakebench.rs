//! Wake-latency microbenchmark: blocking-recv wake vs epoll_wait wake on
//! a loopback ping-pong, interleaved to share scheduler noise. On the
//! kernels we target the two are equivalent (~5 µs a round trip on a
//! 1-vCPU VM), which is why the reactor engine can match the threaded
//! engine's latency — useful to re-check before blaming epoll for a
//! regression. Run with
//! `cargo run --release -p epoll-shim --example wakebench`.

use epoll_shim::{recv_nonblocking, Epoll, EPOLLIN};
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::time::Instant;

const ITERS: usize = 20_000;

fn pair() -> (TcpStream, TcpStream) {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let a = TcpStream::connect(addr).unwrap();
    let (b, _) = listener.accept().unwrap();
    a.set_nodelay(true).unwrap();
    b.set_nodelay(true).unwrap();
    (a, b)
}

fn bench_blocking() -> f64 {
    let (mut a, mut b) = pair();
    let echo = std::thread::spawn(move || {
        let mut buf = [0u8; 64];
        loop {
            let n = b.read(&mut buf).unwrap();
            if n == 0 {
                return;
            }
            b.write_all(&buf[..n]).unwrap();
        }
    });
    let mut buf = [0u8; 64];
    let start = Instant::now();
    for _ in 0..ITERS {
        a.write_all(b"ping").unwrap();
        let n = a.read(&mut buf).unwrap();
        assert_eq!(n, 4);
    }
    let per = start.elapsed().as_nanos() as f64 / ITERS as f64;
    drop(a);
    echo.join().unwrap();
    per
}

fn bench_epoll() -> f64 {
    let (mut a, b) = pair();
    let echo = std::thread::spawn(move || {
        let ep = Epoll::new().unwrap();
        ep.add(b.as_raw_fd(), EPOLLIN, 1).unwrap();
        let mut events = [epoll_shim::Event::default(); 16];
        let mut buf = [0u8; 64];
        let mut bw = &b;
        loop {
            let n = ep.wait(&mut events, -1).unwrap();
            for _ in 0..n {
                match recv_nonblocking(b.as_raw_fd(), &mut buf).unwrap() {
                    Some(0) => return,
                    Some(got) => bw.write_all(&buf[..got]).unwrap(),
                    None => {}
                }
            }
        }
    });
    let mut buf = [0u8; 64];
    let start = Instant::now();
    for _ in 0..ITERS {
        a.write_all(b"ping").unwrap();
        let n = a.read(&mut buf).unwrap();
        assert_eq!(n, 4);
    }
    let per = start.elapsed().as_nanos() as f64 / ITERS as f64;
    drop(a);
    echo.join().unwrap();
    per
}

fn main() {
    // Interleave to share noise.
    let mut blk = Vec::new();
    let mut epl = Vec::new();
    for _ in 0..3 {
        blk.push(bench_blocking());
        epl.push(bench_epoll());
    }
    println!("blocking recv wake: {blk:?} ns/rt");
    println!("epoll_wait wake:    {epl:?} ns/rt");
}
