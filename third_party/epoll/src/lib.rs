//! Minimal epoll + eventfd shim over raw syscalls.
//!
//! The build environment has no crates.io access, so instead of the `libc`
//! or `mio` crates this declares the half-dozen C entry points it needs as
//! `extern "C"` against the libc that `std` already links. Only the Linux
//! surface the heidl reactor uses is covered: `epoll_create1` / `epoll_ctl`
//! / `epoll_wait`, `eventfd` for cross-thread wakeups, and `MSG_DONTWAIT`
//! send/recv so sockets whose file description is shared with a blocking
//! writer (via `try_clone`) can still be read without blocking.
//!
//! On non-Linux targets [`available`] returns `false` and every call fails
//! with `Unsupported`; callers fall back to the threaded transport.

use std::io;

/// Readiness flags (Linux ABI values).
pub const EPOLLIN: u32 = 0x1;
pub const EPOLLOUT: u32 = 0x4;
pub const EPOLLERR: u32 = 0x8;
pub const EPOLLHUP: u32 = 0x10;
pub const EPOLLRDHUP: u32 = 0x2000;

/// One readiness event. On x86/x86-64 the kernel ABI packs this struct
/// (no padding between `events` and `data`); elsewhere it is naturally
/// aligned. Getting this wrong corrupts the token in `data`.
#[cfg_attr(
    all(target_os = "linux", any(target_arch = "x86_64", target_arch = "x86")),
    repr(C, packed)
)]
#[cfg_attr(
    not(all(target_os = "linux", any(target_arch = "x86_64", target_arch = "x86"))),
    repr(C)
)]
#[derive(Clone, Copy, Debug, Default)]
pub struct Event {
    pub events: u32,
    pub data: u64,
}

/// True when the current target supports this shim (Linux only).
pub const fn available() -> bool {
    cfg!(target_os = "linux")
}

#[cfg(target_os = "linux")]
mod sys {
    use super::Event;
    use std::io;
    use std::os::raw::{c_int, c_uint, c_void};

    const EPOLL_CLOEXEC: c_int = 0x80000;
    pub const EPOLL_CTL_ADD: c_int = 1;
    pub const EPOLL_CTL_DEL: c_int = 2;
    pub const EPOLL_CTL_MOD: c_int = 3;
    const EFD_CLOEXEC: c_int = 0x80000;
    const EFD_NONBLOCK: c_int = 0x800;
    const MSG_DONTWAIT: c_int = 0x40;
    const MSG_NOSIGNAL: c_int = 0x4000;

    extern "C" {
        fn epoll_create1(flags: c_int) -> c_int;
        fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut Event) -> c_int;
        fn epoll_wait(epfd: c_int, events: *mut Event, maxevents: c_int, timeout: c_int) -> c_int;
        fn eventfd(initval: c_uint, flags: c_int) -> c_int;
        fn close(fd: c_int) -> c_int;
        fn read(fd: c_int, buf: *mut c_void, count: usize) -> isize;
        fn write(fd: c_int, buf: *const c_void, count: usize) -> isize;
        fn recv(fd: c_int, buf: *mut c_void, len: usize, flags: c_int) -> isize;
        fn send(fd: c_int, buf: *const c_void, len: usize, flags: c_int) -> isize;
        fn sendmsg(fd: c_int, msg: *const MsgHdr, flags: c_int) -> isize;
    }

    /// `struct msghdr` as glibc and musl lay it out on 64-bit Linux:
    /// `msg_iovlen`/`msg_controllen` are `size_t` (the kernel truncates to
    /// what it needs), and `repr(C)` reproduces the padding after the
    /// 32-bit `msg_namelen`. `std::io::IoSlice` is documented to be
    /// ABI-compatible with `struct iovec`, so a slice of them can be
    /// passed as `msg_iov` directly.
    #[repr(C)]
    pub struct MsgHdr {
        msg_name: *mut c_void,
        msg_namelen: c_uint,
        msg_iov: *const c_void,
        msg_iovlen: usize,
        msg_control: *mut c_void,
        msg_controllen: usize,
        msg_flags: c_int,
    }

    pub fn create() -> io::Result<i32> {
        let fd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
        if fd < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(fd)
    }

    pub fn ctl(epfd: i32, op: c_int, fd: i32, mut ev: Event) -> io::Result<()> {
        let rc = unsafe { epoll_ctl(epfd, op, fd, &mut ev) };
        if rc < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(())
    }

    pub fn wait(epfd: i32, events: &mut [Event], timeout_ms: i32) -> io::Result<usize> {
        let n = unsafe { epoll_wait(epfd, events.as_mut_ptr(), events.len() as c_int, timeout_ms) };
        if n < 0 {
            let err = io::Error::last_os_error();
            if err.kind() == io::ErrorKind::Interrupted {
                return Ok(0);
            }
            return Err(err);
        }
        Ok(n as usize)
    }

    pub fn eventfd_new() -> io::Result<i32> {
        let fd = unsafe { eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK) };
        if fd < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(fd)
    }

    pub fn close_fd(fd: i32) {
        unsafe {
            close(fd);
        }
    }

    pub fn eventfd_signal(fd: i32) {
        let one: u64 = 1;
        unsafe {
            write(fd, (&one as *const u64).cast(), 8);
        }
    }

    pub fn eventfd_drain(fd: i32) {
        let mut buf = 0u64;
        unsafe {
            read(fd, (&mut buf as *mut u64).cast(), 8);
        }
    }

    pub fn recv_nb(fd: i32, buf: &mut [u8]) -> io::Result<usize> {
        let n = unsafe { recv(fd, buf.as_mut_ptr().cast(), buf.len(), MSG_DONTWAIT) };
        if n < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(n as usize)
    }

    pub fn send_nb(fd: i32, buf: &[u8]) -> io::Result<usize> {
        let n = unsafe { send(fd, buf.as_ptr().cast(), buf.len(), MSG_DONTWAIT | MSG_NOSIGNAL) };
        if n < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(n as usize)
    }

    pub fn sendmsg_nb(fd: i32, bufs: &[io::IoSlice<'_>]) -> io::Result<usize> {
        let msg = MsgHdr {
            msg_name: std::ptr::null_mut(),
            msg_namelen: 0,
            msg_iov: bufs.as_ptr().cast(),
            msg_iovlen: bufs.len(),
            msg_control: std::ptr::null_mut(),
            msg_controllen: 0,
            msg_flags: 0,
        };
        let n = unsafe { sendmsg(fd, &msg, MSG_DONTWAIT | MSG_NOSIGNAL) };
        if n < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(n as usize)
    }
}

#[cfg_attr(target_os = "linux", allow(dead_code))]
fn unsupported() -> io::Error {
    io::Error::new(io::ErrorKind::Unsupported, "epoll shim: not supported on this target")
}

/// Owned epoll instance. All registration ops are level-triggered unless
/// the caller passes edge flags explicitly in `events`.
#[derive(Debug)]
pub struct Epoll {
    #[cfg_attr(not(target_os = "linux"), allow(dead_code))]
    fd: i32,
}

impl Epoll {
    pub fn new() -> io::Result<Epoll> {
        #[cfg(target_os = "linux")]
        {
            Ok(Epoll { fd: sys::create()? })
        }
        #[cfg(not(target_os = "linux"))]
        {
            Err(unsupported())
        }
    }

    pub fn add(&self, fd: i32, events: u32, token: u64) -> io::Result<()> {
        #[cfg(target_os = "linux")]
        {
            sys::ctl(self.fd, sys::EPOLL_CTL_ADD, fd, Event { events, data: token })
        }
        #[cfg(not(target_os = "linux"))]
        {
            let _ = (fd, events, token);
            Err(unsupported())
        }
    }

    pub fn modify(&self, fd: i32, events: u32, token: u64) -> io::Result<()> {
        #[cfg(target_os = "linux")]
        {
            sys::ctl(self.fd, sys::EPOLL_CTL_MOD, fd, Event { events, data: token })
        }
        #[cfg(not(target_os = "linux"))]
        {
            let _ = (fd, events, token);
            Err(unsupported())
        }
    }

    pub fn del(&self, fd: i32) -> io::Result<()> {
        #[cfg(target_os = "linux")]
        {
            sys::ctl(self.fd, sys::EPOLL_CTL_DEL, fd, Event::default())
        }
        #[cfg(not(target_os = "linux"))]
        {
            let _ = fd;
            Err(unsupported())
        }
    }

    /// Blocks up to `timeout_ms` (-1 = forever) and fills `events`.
    /// EINTR is swallowed and reported as zero events.
    pub fn wait(&self, events: &mut [Event], timeout_ms: i32) -> io::Result<usize> {
        #[cfg(target_os = "linux")]
        {
            sys::wait(self.fd, events, timeout_ms)
        }
        #[cfg(not(target_os = "linux"))]
        {
            let _ = (events, timeout_ms);
            Err(unsupported())
        }
    }
}

impl Drop for Epoll {
    fn drop(&mut self) {
        #[cfg(target_os = "linux")]
        sys::close_fd(self.fd);
    }
}

/// Nonblocking eventfd used to wake an `Epoll::wait` from another thread.
#[derive(Debug)]
pub struct EventFd {
    fd: i32,
}

impl EventFd {
    pub fn new() -> io::Result<EventFd> {
        #[cfg(target_os = "linux")]
        {
            Ok(EventFd { fd: sys::eventfd_new()? })
        }
        #[cfg(not(target_os = "linux"))]
        {
            Err(unsupported())
        }
    }

    pub fn raw_fd(&self) -> i32 {
        self.fd
    }

    /// Wake any waiter; safe to call from any thread, never blocks.
    pub fn signal(&self) {
        #[cfg(target_os = "linux")]
        sys::eventfd_signal(self.fd);
    }

    /// Reset the counter so the fd stops reading as ready.
    pub fn drain(&self) {
        #[cfg(target_os = "linux")]
        sys::eventfd_drain(self.fd);
    }
}

impl Drop for EventFd {
    fn drop(&mut self) {
        #[cfg(target_os = "linux")]
        sys::close_fd(self.fd);
    }
}

/// `recv(MSG_DONTWAIT)`: `Ok(None)` when the socket has no bytes ready,
/// `Ok(Some(0))` on orderly EOF. Leaves the socket's file-status flags
/// untouched, so a blocking writer sharing the description keeps working.
pub fn recv_nonblocking(fd: i32, buf: &mut [u8]) -> io::Result<Option<usize>> {
    #[cfg(target_os = "linux")]
    {
        match sys::recv_nb(fd, buf) {
            Ok(n) => Ok(Some(n)),
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => Ok(None),
            Err(e) if e.kind() == io::ErrorKind::Interrupted => Ok(None),
            Err(e) => Err(e),
        }
    }
    #[cfg(not(target_os = "linux"))]
    {
        let _ = (fd, buf);
        Err(unsupported())
    }
}

/// `send(MSG_DONTWAIT | MSG_NOSIGNAL)`: `Ok(None)` when the socket buffer
/// is full and the caller should wait for writability.
pub fn send_nonblocking(fd: i32, buf: &[u8]) -> io::Result<Option<usize>> {
    #[cfg(target_os = "linux")]
    {
        match sys::send_nb(fd, buf) {
            Ok(n) => Ok(Some(n)),
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => Ok(None),
            Err(e) if e.kind() == io::ErrorKind::Interrupted => Ok(None),
            Err(e) => Err(e),
        }
    }
    #[cfg(not(target_os = "linux"))]
    {
        let _ = (fd, buf);
        Err(unsupported())
    }
}

/// `sendmsg(MSG_DONTWAIT | MSG_NOSIGNAL)`: writes the slices as one
/// gathered send so a framed message hits the wire (and wakes the peer's
/// epoll) once instead of per part. `Ok(None)` when the socket buffer is
/// full and the caller should wait for writability.
pub fn send_vectored_nonblocking(fd: i32, bufs: &[io::IoSlice<'_>]) -> io::Result<Option<usize>> {
    #[cfg(target_os = "linux")]
    {
        match sys::sendmsg_nb(fd, bufs) {
            Ok(n) => Ok(Some(n)),
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => Ok(None),
            Err(e) if e.kind() == io::ErrorKind::Interrupted => Ok(None),
            Err(e) => Err(e),
        }
    }
    #[cfg(not(target_os = "linux"))]
    {
        let _ = (fd, bufs);
        Err(unsupported())
    }
}

#[cfg(all(test, target_os = "linux"))]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};
    use std::os::fd::AsRawFd;

    #[test]
    fn eventfd_wakes_epoll_wait() {
        let ep = Epoll::new().unwrap();
        let efd = EventFd::new().unwrap();
        ep.add(efd.raw_fd(), EPOLLIN, 7).unwrap();

        let mut events = [Event::default(); 4];
        // Nothing signalled yet: a zero-timeout wait sees no events.
        assert_eq!(ep.wait(&mut events, 0).unwrap(), 0);

        efd.signal();
        let n = ep.wait(&mut events, 1000).unwrap();
        assert_eq!(n, 1);
        let data = events[0].data;
        assert_eq!(data, 7);

        efd.drain();
        assert_eq!(ep.wait(&mut events, 0).unwrap(), 0);
    }

    #[test]
    fn socket_readiness_and_nonblocking_io() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();

        let ep = Epoll::new().unwrap();
        ep.add(server.as_raw_fd(), EPOLLIN | EPOLLRDHUP, 42).unwrap();

        // Not readable yet.
        let mut buf = [0u8; 64];
        assert_eq!(recv_nonblocking(server.as_raw_fd(), &mut buf).unwrap(), None);

        client.write_all(b"ping").unwrap();
        let mut events = [Event::default(); 4];
        let n = ep.wait(&mut events, 1000).unwrap();
        assert_eq!(n, 1);
        let data = events[0].data;
        assert_eq!(data, 42);

        let got = recv_nonblocking(server.as_raw_fd(), &mut buf).unwrap();
        assert_eq!(got, Some(4));
        assert_eq!(&buf[..4], b"ping");

        // Nonblocking send on the server side reaches the client.
        let sent = send_nonblocking(server.as_raw_fd(), b"pong").unwrap();
        assert_eq!(sent, Some(4));
        let mut reply = [0u8; 4];
        client.read_exact(&mut reply).unwrap();
        assert_eq!(&reply, b"pong");

        // Peer close shows up as readable EOF.
        drop(client);
        let n = ep.wait(&mut events, 1000).unwrap();
        assert!(n >= 1);
        assert_eq!(recv_nonblocking(server.as_raw_fd(), &mut buf).unwrap(), Some(0));

        ep.del(server.as_raw_fd()).unwrap();
    }

    #[test]
    fn vectored_send_gathers_parts_into_one_message() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();

        let parts =
            [io::IoSlice::new(b"hea"), io::IoSlice::new(b"der+"), io::IoSlice::new(b"body")];
        let sent = send_vectored_nonblocking(server.as_raw_fd(), &parts).unwrap();
        assert_eq!(sent, Some(11));
        let mut got = [0u8; 11];
        client.read_exact(&mut got).unwrap();
        assert_eq!(&got, b"header+body");
    }

    #[test]
    fn modify_switches_interest_to_writable() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).unwrap();
        let (_server, _) = listener.accept().unwrap();

        let ep = Epoll::new().unwrap();
        ep.add(client.as_raw_fd(), EPOLLIN, 1).unwrap();
        let mut events = [Event::default(); 4];
        assert_eq!(ep.wait(&mut events, 0).unwrap(), 0);

        // An idle socket with buffer space is immediately writable.
        ep.modify(client.as_raw_fd(), EPOLLOUT, 2).unwrap();
        let n = ep.wait(&mut events, 1000).unwrap();
        assert_eq!(n, 1);
        let data = events[0].data;
        assert_eq!(data, 2);
        let flags = events[0].events;
        assert_ne!(flags & EPOLLOUT, 0);
    }
}
