//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset of the proptest API this workspace uses:
//! `proptest!`, `prop_oneof!`, `prop_assert*`, `Strategy` with
//! `prop_map`/`prop_filter`/`prop_recursive`/`boxed`, `any::<T>()`,
//! ranges and tuples as strategies, `&'static str` regex-literal
//! strategies, and the `collection`/`option`/`char`/`num`/`string`
//! helper modules. Sampling is deterministic (splitmix64 seeded per
//! case index); there is no shrinking — a failing case reports its
//! input via the normal panic message instead.

pub mod test_runner {
    use std::fmt;

    /// Deterministic generator state for one test case.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        pub fn new(seed: u64) -> Self {
            TestRng { state: seed ^ 0x5851_F42D_4C95_7F2D }
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform value in `0..n` (n > 0).
        pub fn below(&mut self, n: u64) -> u64 {
            debug_assert!(n > 0);
            self.next_u64() % n
        }

        /// True with probability `num/den`.
        pub fn chance(&mut self, num: u64, den: u64) -> bool {
            self.below(den) < num
        }
    }

    /// Per-`proptest!` block configuration.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    /// Why a single test case did not pass.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// The case is invalid input and should be skipped, not failed.
        Reject(String),
        /// The property does not hold.
        Fail(String),
    }

    impl TestCaseError {
        pub fn fail(reason: impl Into<String>) -> Self {
            TestCaseError::Fail(reason.into())
        }

        pub fn reject(reason: impl Into<String>) -> Self {
            TestCaseError::Reject(reason.into())
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TestCaseError::Reject(r) => write!(f, "rejected: {r}"),
                TestCaseError::Fail(r) => write!(f, "failed: {r}"),
            }
        }
    }

    impl std::error::Error for TestCaseError {}
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;
    use std::ops::{Range, RangeInclusive};
    use std::sync::Arc;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        type Value;

        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        fn prop_filter<F>(self, reason: impl Into<String>, f: F) -> Filter<Self, F>
        where
            Self: Sized,
            F: Fn(&Self::Value) -> bool,
        {
            Filter { inner: self, reason: reason.into(), f }
        }

        /// Recursion: each level is a coin flip between the base strategy
        /// and one application of `f`, nested at most `depth` deep.
        fn prop_recursive<R, F>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch_size: u32,
            f: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
            R: Strategy<Value = Self::Value> + 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> R + 'static,
        {
            let base = self.boxed();
            let mut current = base.clone();
            for _ in 0..depth {
                let recursed = f(current).boxed();
                current = Union::new(vec![base.clone(), recursed]).boxed();
            }
            current
        }

        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Arc::new(self))
        }
    }

    trait DynStrategy<V> {
        fn sample_dyn(&self, rng: &mut TestRng) -> V;
    }

    impl<S: Strategy> DynStrategy<S::Value> for S {
        fn sample_dyn(&self, rng: &mut TestRng) -> S::Value {
            self.sample(rng)
        }
    }

    /// Type-erased, cheaply clonable strategy.
    pub struct BoxedStrategy<V>(Arc<dyn DynStrategy<V>>);

    impl<V> Clone for BoxedStrategy<V> {
        fn clone(&self) -> Self {
            BoxedStrategy(Arc::clone(&self.0))
        }
    }

    impl<V> Strategy for BoxedStrategy<V> {
        type Value = V;
        fn sample(&self, rng: &mut TestRng) -> V {
            self.0.sample_dyn(rng)
        }
    }

    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn sample(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.sample(rng))
        }
    }

    pub struct Filter<S, F> {
        inner: S,
        reason: String,
        f: F,
    }

    impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
        type Value = S::Value;
        fn sample(&self, rng: &mut TestRng) -> S::Value {
            for _ in 0..1000 {
                let v = self.inner.sample(rng);
                if (self.f)(&v) {
                    return v;
                }
            }
            panic!("prop_filter rejected 1000 consecutive samples: {}", self.reason)
        }
    }

    /// Always yields a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Uniform choice between same-valued strategies (`prop_oneof!`).
    pub struct Union<V> {
        arms: Vec<BoxedStrategy<V>>,
    }

    impl<V> Union<V> {
        pub fn new(arms: Vec<BoxedStrategy<V>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;
        fn sample(&self, rng: &mut TestRng) -> V {
            let pick = rng.below(self.arms.len() as u64) as usize;
            self.arms[pick].sample(rng)
        }
    }

    /// `any::<T>()` support marker.
    pub struct Any<T>(pub(crate) PhantomData<T>);

    macro_rules! int_range_strategies {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as u64).wrapping_sub(self.start as u64);
                    self.start.wrapping_add(rng.below(span) as $t)
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                    if span == 0 {
                        return rng.next_u64() as $t;
                    }
                    lo.wrapping_add(rng.below(span) as $t)
                }
            }
        )*};
    }

    int_range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! tuple_strategies {
        ($(($($name:ident),+);)*) => {$(
            #[allow(non_snake_case)]
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.sample(rng),)+)
                }
            }
        )*};
    }

    tuple_strategies! {
        (A);
        (A, B);
        (A, B, C);
        (A, B, C, D);
        (A, B, C, D, E);
        (A, B, C, D, E, F);
    }

    /// String literals are regex-subset strategies producing `String`.
    impl Strategy for &'static str {
        type Value = String;
        fn sample(&self, rng: &mut TestRng) -> String {
            crate::string::compile(self)
                .unwrap_or_else(|e| panic!("bad regex strategy {self:?}: {e}"))
                .generate(rng)
        }
    }
}

pub mod arbitrary {
    use crate::strategy::{Any, Strategy};
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical "anything goes" strategy.
    pub trait Arbitrary: Sized {
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    macro_rules! arbitrary_ints {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    // Uniform over the full width, matching upstream
                    // proptest's default integer distribution closely
                    // enough that boundary values stay rare.
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    arbitrary_ints!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for char {
        fn arbitrary(rng: &mut TestRng) -> Self {
            if rng.chance(3, 4) {
                (b' ' + rng.below(95) as u8) as char
            } else {
                char::from_u32(rng.below(0x11_0000) as u32).unwrap_or('\u{FFFD}')
            }
        }
    }

    impl Arbitrary for () {
        fn arbitrary(_rng: &mut TestRng) -> Self {}
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::collections::BTreeSet;
    use std::ops::{Range, RangeInclusive};

    /// Size bounds for a generated collection.
    pub trait SizeRange {
        /// Inclusive (lo, hi) size bounds.
        fn bounds(&self) -> (usize, usize);
    }

    impl SizeRange for Range<usize> {
        fn bounds(&self) -> (usize, usize) {
            assert!(self.start < self.end, "empty size range");
            (self.start, self.end - 1)
        }
    }

    impl SizeRange for RangeInclusive<usize> {
        fn bounds(&self) -> (usize, usize) {
            (*self.start(), *self.end())
        }
    }

    impl SizeRange for usize {
        fn bounds(&self) -> (usize, usize) {
            (*self, *self)
        }
    }

    fn pick_len(rng: &mut TestRng, size: &impl SizeRange) -> usize {
        let (lo, hi) = size.bounds();
        lo + rng.below((hi - lo + 1) as u64) as usize
    }

    pub struct VecStrategy<S, R> {
        element: S,
        size: R,
    }

    pub fn vec<S: Strategy, R: SizeRange>(element: S, size: R) -> VecStrategy<S, R> {
        VecStrategy { element, size }
    }

    impl<S: Strategy, R: SizeRange> Strategy for VecStrategy<S, R> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let len = pick_len(rng, &self.size);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }

    pub struct BTreeSetStrategy<S, R> {
        element: S,
        size: R,
    }

    pub fn btree_set<S, R>(element: S, size: R) -> BTreeSetStrategy<S, R>
    where
        S: Strategy,
        S::Value: Ord,
        R: SizeRange,
    {
        BTreeSetStrategy { element, size }
    }

    impl<S, R> Strategy for BTreeSetStrategy<S, R>
    where
        S: Strategy,
        S::Value: Ord,
        R: SizeRange,
    {
        type Value = BTreeSet<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let target = pick_len(rng, &self.size);
            let mut set = BTreeSet::new();
            // Duplicates shrink the set; retry a bounded number of times.
            for _ in 0..target.saturating_mul(8).max(8) {
                if set.len() >= target {
                    break;
                }
                set.insert(self.element.sample(rng));
            }
            set
        }
    }
}

pub mod option {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    pub struct OptionStrategy<S>(S);

    /// `Option<T>` with a 25% chance of `None`.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy(inner)
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            if rng.chance(1, 4) {
                None
            } else {
                Some(self.0.sample(rng))
            }
        }
    }
}

pub mod char {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    #[derive(Debug, Clone, Copy)]
    pub struct CharRange {
        lo: char,
        hi: char,
    }

    /// Uniform choice over an inclusive scalar-value range.
    pub fn range(lo: char, hi: char) -> CharRange {
        assert!(lo <= hi, "empty char range");
        CharRange { lo, hi }
    }

    impl Strategy for CharRange {
        type Value = char;
        fn sample(&self, rng: &mut TestRng) -> char {
            let (lo, hi) = (self.lo as u32, self.hi as u32);
            loop {
                let v = lo + rng.below((hi - lo + 1) as u64) as u32;
                if let Some(c) = char::from_u32(v) {
                    return c;
                }
            }
        }
    }
}

pub mod num {
    macro_rules! normal_float {
        ($mod_name:ident, $ty:ty, $bits:ty, $mant_bits:expr, $exp_lo:expr, $exp_hi:expr) => {
            pub mod $mod_name {
                use crate::strategy::Strategy;
                use crate::test_runner::TestRng;

                /// Normal (finite, non-zero, non-subnormal) floats with
                /// moderate exponents so decimal round-trips stay sane.
                #[derive(Debug, Clone, Copy)]
                pub struct Normal;

                pub const NORMAL: Normal = Normal;

                impl Strategy for Normal {
                    type Value = $ty;
                    fn sample(&self, rng: &mut TestRng) -> $ty {
                        let sign = (rng.next_u64() & 1) as $bits;
                        let exp = ($exp_lo + rng.below($exp_hi - $exp_lo)) as $bits;
                        let mant = (rng.next_u64() as $bits) & ((1 << $mant_bits) - 1);
                        let bits = (sign << (8 * std::mem::size_of::<$ty>() as $bits - 1))
                            | (exp << $mant_bits)
                            | mant;
                        let v = <$ty>::from_bits(bits as _);
                        debug_assert!(v.is_normal());
                        v
                    }
                }
            }
        };
    }

    normal_float!(f32, f32, u32, 23, 90, 165);
    normal_float!(f64, f64, u64, 52, 850, 1200);
}

pub mod string {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Printable characters used for `.`/`\PC` and exotic-class sampling.
    const EXOTIC: &[char] = &['«', '»', 'é', 'ñ', 'ß', '✓', 'α', 'Ω', '漢', '字', '€', '…'];

    #[derive(Debug, Clone)]
    enum Piece {
        Lit(char),
        Class(Vec<(char, char)>),
        AnyPrintable,
    }

    #[derive(Debug, Clone)]
    struct Rep {
        piece: Piece,
        min: u32,
        max: u32,
    }

    /// A compiled generator for the regex subset we support: literal
    /// characters, escapes, character classes with ranges, `\PC`/`.` as
    /// "any printable", and `{m}`/`{m,n}`/`?`/`*`/`+` quantifiers. No
    /// groups or alternation.
    #[derive(Debug, Clone)]
    pub struct RegexGeneratorStrategy {
        reps: Vec<Rep>,
    }

    /// Compiles `pattern`; used both by `string_regex` and `&str` strategies.
    pub(crate) fn compile(pattern: &str) -> Result<RegexGeneratorStrategy, String> {
        let mut chars = pattern.chars().peekable();
        let mut reps = Vec::new();
        while let Some(c) = chars.next() {
            let piece = match c {
                '\\' => parse_escape(&mut chars)?,
                '[' => parse_class(&mut chars)?,
                '.' => Piece::AnyPrintable,
                '(' | ')' | '|' => {
                    return Err(format!("unsupported regex construct {c:?} in {pattern:?}"))
                }
                '{' | '}' | '?' | '*' | '+' => {
                    return Err(format!("dangling quantifier {c:?} in {pattern:?}"))
                }
                other => Piece::Lit(other),
            };
            let (min, max) = parse_quantifier(&mut chars)?;
            reps.push(Rep { piece, min, max });
        }
        Ok(RegexGeneratorStrategy { reps })
    }

    fn parse_escape(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) -> Result<Piece, String> {
        let e = chars.next().ok_or("trailing backslash")?;
        Ok(match e {
            'n' => Piece::Lit('\n'),
            'r' => Piece::Lit('\r'),
            't' => Piece::Lit('\t'),
            'P' => {
                // `\PC` = "not Other" — approximate with printables.
                match chars.next() {
                    Some('C') => Piece::AnyPrintable,
                    other => return Err(format!("unsupported \\P{other:?}")),
                }
            }
            c => Piece::Lit(c),
        })
    }

    fn parse_class(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) -> Result<Piece, String> {
        let mut ranges = Vec::new();
        loop {
            let c = chars.next().ok_or("unterminated character class")?;
            if c == ']' {
                break;
            }
            let lo = if c == '\\' {
                match parse_escape(chars)? {
                    Piece::Lit(l) => l,
                    _ => return Err("class escape must be a literal".into()),
                }
            } else {
                c
            };
            // `a-z` range, unless `-` is the final literal before `]`.
            if chars.peek() == Some(&'-') {
                let mut ahead = chars.clone();
                ahead.next();
                match ahead.peek() {
                    Some(&']') | None => ranges.push((lo, lo)),
                    Some(_) => {
                        chars.next();
                        let h = chars.next().unwrap();
                        let hi = if h == '\\' {
                            match parse_escape(chars)? {
                                Piece::Lit(l) => l,
                                _ => return Err("class escape must be a literal".into()),
                            }
                        } else {
                            h
                        };
                        if hi < lo {
                            return Err(format!("inverted class range {lo:?}-{hi:?}"));
                        }
                        ranges.push((lo, hi));
                    }
                }
            } else {
                ranges.push((lo, lo));
            }
        }
        if ranges.is_empty() {
            return Err("empty character class".into());
        }
        Ok(Piece::Class(ranges))
    }

    fn parse_quantifier(
        chars: &mut std::iter::Peekable<std::str::Chars<'_>>,
    ) -> Result<(u32, u32), String> {
        Ok(match chars.peek() {
            Some('?') => {
                chars.next();
                (0, 1)
            }
            Some('*') => {
                chars.next();
                (0, 8)
            }
            Some('+') => {
                chars.next();
                (1, 8)
            }
            Some('{') => {
                chars.next();
                let mut spec = String::new();
                loop {
                    match chars.next() {
                        Some('}') => break,
                        Some(c) => spec.push(c),
                        None => return Err("unterminated {} quantifier".into()),
                    }
                }
                let parse = |s: &str| {
                    s.trim().parse::<u32>().map_err(|_| format!("bad repeat count {s:?}"))
                };
                match spec.split_once(',') {
                    Some((m, n)) => (parse(m)?, parse(n)?),
                    None => {
                        let n = parse(&spec)?;
                        (n, n)
                    }
                }
            }
            _ => (1, 1),
        })
    }

    impl RegexGeneratorStrategy {
        pub(crate) fn generate(&self, rng: &mut TestRng) -> String {
            let mut out = String::new();
            for rep in &self.reps {
                let count = rep.min + rng.below((rep.max - rep.min + 1) as u64) as u32;
                for _ in 0..count {
                    out.push(sample_piece(&rep.piece, rng));
                }
            }
            out
        }
    }

    fn sample_piece(piece: &Piece, rng: &mut TestRng) -> char {
        match piece {
            Piece::Lit(c) => *c,
            Piece::Class(ranges) => {
                let total: u64 =
                    ranges.iter().map(|(lo, hi)| (*hi as u64) - (*lo as u64) + 1).sum();
                let mut pick = rng.below(total);
                for (lo, hi) in ranges {
                    let size = (*hi as u64) - (*lo as u64) + 1;
                    if pick < size {
                        // Skip the surrogate gap if a range straddles it.
                        return char::from_u32(*lo as u32 + pick as u32).unwrap_or(*lo);
                    }
                    pick -= size;
                }
                unreachable!()
            }
            Piece::AnyPrintable => {
                if rng.chance(1, 8) {
                    EXOTIC[rng.below(EXOTIC.len() as u64) as usize]
                } else {
                    (b' ' + rng.below(95) as u8) as char
                }
            }
        }
    }

    impl Strategy for RegexGeneratorStrategy {
        type Value = String;
        fn sample(&self, rng: &mut TestRng) -> String {
            self.generate(rng)
        }
    }

    /// Public entry point matching proptest's `string_regex`.
    pub fn string_regex(pattern: &str) -> Result<RegexGeneratorStrategy, String> {
        compile(pattern)
    }
}

pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! {
            cfg = ($crate::test_runner::ProptestConfig::default());
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (cfg = ($cfg:expr); $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config = $cfg;
            for case in 0u64..(config.cases as u64) {
                // Per-case deterministic seed, varied across cases and fns.
                let seed = 0xA076_1D64_78BD_642Fu64
                    .wrapping_mul(case.wrapping_add(1))
                    ^ (stringify!($name).len() as u64).wrapping_mul(0x9E37_79B9);
                let mut __rng = $crate::test_runner::TestRng::new(seed);
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $(
                            let $pat = $crate::strategy::Strategy::sample(
                                &($strat),
                                &mut __rng,
                            );
                        )+
                        $body
                        ::std::result::Result::Ok(())
                    })();
                match outcome {
                    ::std::result::Result::Ok(()) => {}
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(_)) => {}
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                        panic!(
                            "proptest case {case} of {} failed: {msg}",
                            stringify!($name),
                        );
                    }
                }
            }
        }
    )*};
}

#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{:?}` == `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{:?}` == `{:?}`: {}",
            left,
            right,
            format!($($fmt)*)
        );
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left != right,
            "assertion failed: `{:?}` != `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left != right,
            "assertion failed: `{:?}` != `{:?}`: {}",
            left,
            right,
            format!($($fmt)*)
        );
    }};
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn regex_subset_generates_within_spec() {
        let strat = crate::string::string_regex("IDL:[A-Za-z0-9/_]{1,30}:[0-9]\\.[0-9]").unwrap();
        let mut rng = TestRng::new(3);
        for _ in 0..200 {
            let s = crate::strategy::Strategy::sample(&strat, &mut rng);
            assert!(s.starts_with("IDL:"), "{s}");
            let rest = &s[4..];
            let (body, ver) = rest.rsplit_once(':').unwrap();
            assert!((1..=30).contains(&body.chars().count()), "{s}");
            assert_eq!(ver.len(), 3);
            assert_eq!(ver.as_bytes()[1], b'.');
        }
    }

    #[test]
    fn class_with_trailing_dash_and_escapes() {
        let strat = crate::string::string_regex("[ -~\\n\"\\\\,«é✓]{0,16}").unwrap();
        let mut rng = TestRng::new(9);
        for _ in 0..200 {
            let s = crate::strategy::Strategy::sample(&strat, &mut rng);
            assert!(s.chars().count() <= 16);
            for c in s.chars() {
                assert!((' '..='~').contains(&c) || "\n\"\\,«é✓".contains(c), "unexpected {c:?}");
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_plumbing_works(
            n in 0u32..100,
            flag in any::<bool>(),
            s in "[a-z]{1,4}",
        ) {
            prop_assert!(n < 100);
            prop_assert_eq!(flag, flag);
            prop_assert!((1..=4).contains(&s.len()), "{}", s);
        }

        #[test]
        fn recursive_strategies_terminate(v in nested()) {
            prop_assert!(depth(&v) <= 4);
        }
    }

    #[derive(Debug, Clone)]
    enum Tree {
        #[allow(dead_code)] // the payload only proves leaves carry generated data
        Leaf(u8),
        Node(Vec<Tree>),
    }

    fn nested() -> impl Strategy<Value = Tree> {
        let leaf = (0u8..10).prop_map(Tree::Leaf);
        leaf.prop_recursive(3, 12, 3, |inner| {
            crate::collection::vec(inner, 0..3).prop_map(Tree::Node)
        })
    }

    fn depth(t: &Tree) -> usize {
        match t {
            Tree::Leaf(_) => 1,
            Tree::Node(kids) => 1 + kids.iter().map(depth).max().unwrap_or(0),
        }
    }
}
