//! Offline stand-in for the `crossbeam` crate covering the subset this
//! workspace uses: `crossbeam::channel::{unbounded, Sender, Receiver}` with
//! clonable receivers, built on a `Mutex<VecDeque>` + `Condvar`.
//!
//! A blocked `recv` waits on the condvar — releasing the queue lock — so
//! any number of consumers can sleep concurrently and a `send` wakes
//! exactly one of them. (An earlier version wrapped `std::sync::mpsc`
//! behind a mutex, which serialized consumers: one receiver blocked
//! *inside* the lock while the rest queued on the mutex itself.)

pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex, PoisonError};
    use std::time::{Duration, Instant};

    struct State<T> {
        queue: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    struct Shared<T> {
        state: Mutex<State<T>>,
        cv: Condvar,
    }

    impl<T> Shared<T> {
        fn lock(&self) -> std::sync::MutexGuard<'_, State<T>> {
            self.state.lock().unwrap_or_else(PoisonError::into_inner)
        }
    }

    pub struct Sender<T>(Arc<Shared<T>>);

    pub struct Receiver<T>(Arc<Shared<T>>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.0.lock().senders += 1;
            Sender(Arc::clone(&self.0))
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut state = self.0.lock();
            state.senders -= 1;
            if state.senders == 0 {
                // Receivers blocked on an empty queue must observe the
                // disconnect, and there may be several of them.
                drop(state);
                self.0.cv.notify_all();
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.0.lock().receivers += 1;
            Receiver(Arc::clone(&self.0))
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.0.lock().receivers -= 1;
        }
    }

    impl<T> fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Sender(..)")
        }
    }

    impl<T> fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Receiver(..)")
        }
    }

    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    impl<T: Send + fmt::Debug> std::error::Error for SendError<T> {}

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("receiving on an empty and disconnected channel")
        }
    }

    impl std::error::Error for RecvError {}

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        Empty,
        Disconnected,
    }

    impl fmt::Display for TryRecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TryRecvError::Empty => f.write_str("receiving on an empty channel"),
                TryRecvError::Disconnected => {
                    f.write_str("receiving on an empty and disconnected channel")
                }
            }
        }
    }

    impl std::error::Error for TryRecvError {}

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        Timeout,
        Disconnected,
    }

    impl fmt::Display for RecvTimeoutError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                RecvTimeoutError::Timeout => f.write_str("timed out waiting on channel"),
                RecvTimeoutError::Disconnected => f.write_str("channel is empty and disconnected"),
            }
        }
    }

    impl std::error::Error for RecvTimeoutError {}

    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            state: Mutex::new(State { queue: VecDeque::new(), senders: 1, receivers: 1 }),
            cv: Condvar::new(),
        });
        (Sender(Arc::clone(&shared)), Receiver(shared))
    }

    impl<T> Sender<T> {
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut state = self.0.lock();
            if state.receivers == 0 {
                return Err(SendError(value));
            }
            state.queue.push_back(value);
            drop(state);
            self.0.cv.notify_one();
            Ok(())
        }
    }

    impl<T> Receiver<T> {
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut state = self.0.lock();
            loop {
                if let Some(value) = state.queue.pop_front() {
                    return Ok(value);
                }
                if state.senders == 0 {
                    return Err(RecvError);
                }
                state = self.0.cv.wait(state).unwrap_or_else(PoisonError::into_inner);
            }
        }

        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut state = self.0.lock();
            match state.queue.pop_front() {
                Some(value) => Ok(value),
                None if state.senders == 0 => Err(TryRecvError::Disconnected),
                None => Err(TryRecvError::Empty),
            }
        }

        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut state = self.0.lock();
            loop {
                if let Some(value) = state.queue.pop_front() {
                    return Ok(value);
                }
                if state.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, _timed_out) = self
                    .0
                    .cv
                    .wait_timeout(state, deadline - now)
                    .unwrap_or_else(PoisonError::into_inner);
                state = guard;
            }
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn send_recv() {
            let (tx, rx) = unbounded();
            tx.send(7).unwrap();
            assert_eq!(rx.recv(), Ok(7));
        }

        #[test]
        fn disconnect_errors() {
            let (tx, rx) = unbounded::<i32>();
            drop(tx);
            assert_eq!(rx.recv(), Err(RecvError));
            let (tx, rx) = unbounded::<i32>();
            drop(rx);
            assert_eq!(tx.send(1), Err(SendError(1)));
        }

        #[test]
        fn timeout() {
            let (_tx, rx) = unbounded::<i32>();
            assert_eq!(rx.recv_timeout(Duration::from_millis(5)), Err(RecvTimeoutError::Timeout));
        }
    }
}
