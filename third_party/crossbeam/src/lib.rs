//! Offline stand-in for the `crossbeam` crate covering the subset this
//! workspace uses: `crossbeam::channel::{unbounded, Sender, Receiver}` with
//! clonable receivers, built on `std::sync::mpsc` behind a mutex.

pub mod channel {
    use std::fmt;
    use std::sync::{mpsc, Arc, Mutex, PoisonError};
    use std::time::Duration;

    pub struct Sender<T>(mpsc::Sender<T>);

    pub struct Receiver<T>(Arc<Mutex<mpsc::Receiver<T>>>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(self.0.clone())
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            Receiver(Arc::clone(&self.0))
        }
    }

    impl<T> fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Sender(..)")
        }
    }

    impl<T> fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Receiver(..)")
        }
    }

    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    impl<T: Send + fmt::Debug> std::error::Error for SendError<T> {}

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("receiving on an empty and disconnected channel")
        }
    }

    impl std::error::Error for RecvError {}

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        Empty,
        Disconnected,
    }

    impl fmt::Display for TryRecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TryRecvError::Empty => f.write_str("receiving on an empty channel"),
                TryRecvError::Disconnected => {
                    f.write_str("receiving on an empty and disconnected channel")
                }
            }
        }
    }

    impl std::error::Error for TryRecvError {}

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        Timeout,
        Disconnected,
    }

    impl fmt::Display for RecvTimeoutError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                RecvTimeoutError::Timeout => f.write_str("timed out waiting on channel"),
                RecvTimeoutError::Disconnected => f.write_str("channel is empty and disconnected"),
            }
        }
    }

    impl std::error::Error for RecvTimeoutError {}

    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender(tx), Receiver(Arc::new(Mutex::new(rx))))
    }

    impl<T> Sender<T> {
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.0.send(value).map_err(|mpsc::SendError(v)| SendError(v))
        }
    }

    impl<T> Receiver<T> {
        pub fn recv(&self) -> Result<T, RecvError> {
            let rx = self.0.lock().unwrap_or_else(PoisonError::into_inner);
            rx.recv().map_err(|_| RecvError)
        }

        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let rx = self.0.lock().unwrap_or_else(PoisonError::into_inner);
            rx.try_recv().map_err(|e| match e {
                mpsc::TryRecvError::Empty => TryRecvError::Empty,
                mpsc::TryRecvError::Disconnected => TryRecvError::Disconnected,
            })
        }

        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let rx = self.0.lock().unwrap_or_else(PoisonError::into_inner);
            rx.recv_timeout(timeout).map_err(|e| match e {
                mpsc::RecvTimeoutError::Timeout => RecvTimeoutError::Timeout,
                mpsc::RecvTimeoutError::Disconnected => RecvTimeoutError::Disconnected,
            })
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn send_recv() {
            let (tx, rx) = unbounded();
            tx.send(7).unwrap();
            assert_eq!(rx.recv(), Ok(7));
        }

        #[test]
        fn disconnect_errors() {
            let (tx, rx) = unbounded::<i32>();
            drop(tx);
            assert_eq!(rx.recv(), Err(RecvError));
            let (tx, rx) = unbounded::<i32>();
            drop(rx);
            assert_eq!(tx.send(1), Err(SendError(1)));
        }

        #[test]
        fn timeout() {
            let (_tx, rx) = unbounded::<i32>();
            assert_eq!(rx.recv_timeout(Duration::from_millis(5)), Err(RecvTimeoutError::Timeout));
        }
    }
}
