//! Offline stand-in for the `criterion` crate: same macro/builder surface
//! (`criterion_group!`, `criterion_main!`, `Criterion::benchmark_group`,
//! `BenchmarkId`, `black_box`) with a deliberately small measurement loop —
//! enough to run every bench end-to-end and print rough per-iteration
//! timings, without statistics, plotting, or CLI parsing.

use std::fmt::{self, Display};
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level harness handle created by `criterion_group!`.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            _parent: std::marker::PhantomData,
        }
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let n = self.sample_size;
        run_one("", &id.into(), n, f);
    }

    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: std::marker::PhantomData<&'a mut Criterion>,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&self.name, &id.into(), self.sample_size, f);
        self
    }

    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        run_one(&self.name, &id.into(), self.sample_size, |b| f(b, input));
        self
    }

    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(group: &str, id: &BenchmarkId, samples: usize, mut f: F) {
    let mut bencher = Bencher { elapsed: Duration::ZERO, iters: 0 };
    // Warm-up pass, then the measured samples.
    f(&mut bencher);
    bencher.elapsed = Duration::ZERO;
    bencher.iters = 0;
    for _ in 0..samples.max(1) {
        f(&mut bencher);
    }
    let per_iter =
        if bencher.iters == 0 { Duration::ZERO } else { bencher.elapsed / bencher.iters as u32 };
    let label = if group.is_empty() { id.to_string() } else { format!("{group}/{id}") };
    println!("bench {label:<60} {per_iter:>12.2?}/iter ({} iters)", bencher.iters);
}

/// Passed to bench closures; `iter` times the supplied routine.
pub struct Bencher {
    elapsed: Duration,
    iters: u64,
}

impl Bencher {
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // A handful of iterations per sample keeps total runtime bounded
        // while still exercising the code path for real.
        const ITERS_PER_SAMPLE: u64 = 3;
        let start = Instant::now();
        for _ in 0..ITERS_PER_SAMPLE {
            black_box(routine());
        }
        self.elapsed += start.elapsed();
        self.iters += ITERS_PER_SAMPLE;
    }
}

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId { text: format!("{}/{}", function_name.into(), parameter) }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId { text: parameter.to_string() }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.text)
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { text: s.to_owned() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { text: s }
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("g");
        group.sample_size(2);
        group.bench_function(BenchmarkId::new("f", 1), |b| b.iter(|| 1 + 1));
        group.bench_function("plain", |b| b.iter(|| black_box(2) * 2));
        group.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn group_runs() {
        benches();
    }
}
