//! Build script: runs the template-driven IDL compiler over
//! `idl/media.idl` with the `rust` backend, proving end-to-end that
//! generated code compiles and runs (the integration tests include the
//! output from `OUT_DIR`).

use std::path::PathBuf;

fn main() {
    println!("cargo:rerun-if-changed=idl/media.idl");
    let idl = std::fs::read_to_string("idl/media.idl").expect("read idl/media.idl");
    let files = heidl_codegen::compile("rust", &idl, "media")
        .unwrap_or_else(|e| panic!("heidlc failed on idl/media.idl: {e}"));
    let out_dir = PathBuf::from(std::env::var("OUT_DIR").expect("OUT_DIR"));
    files.write_to(&out_dir).expect("write generated code");
    assert!(
        files.file("media.rs").is_some(),
        "rust backend should emit media.rs, got {:?}",
        files.names()
    );
}
