//! End-to-end tests of the **generated** Rust mapping: `idl/media.idl` is
//! compiled by the `rust` backend at build time (see `build.rs`), and
//! these tests drive the generated stubs and skeletons over real TCP —
//! the strongest form of F3/F4/F5 evidence: the template-driven compiler
//! emits code that actually runs against the HeidiRMI runtime.

use heidl::media::*;
use heidl::rmi::{DispatchKind, IncopyArg, Orb, RemoteObject, RmiError, RmiResult, ValueSerialize};
use heidl::wire::CdrProtocol;
use parking_lot_shim::Mutex;
use std::sync::atomic::{AtomicI32, AtomicUsize, Ordering};
use std::sync::Arc;

/// Tiny stand-in so the test crate does not need parking_lot.
mod parking_lot_shim {
    pub use std::sync::Mutex;
}

// ---- servants ---------------------------------------------------------

struct MediaPlayer {
    prints: AtomicUsize,
    stops: AtomicUsize,
    busy: std::sync::atomic::AtomicBool,
    last_volume: AtomicI32,
    last_seek: Mutex<Vec<i32>>,
    loaded: AtomicUsize,
    title: Mutex<String>,
    state: Mutex<Status>,
}

impl Default for MediaPlayer {
    fn default() -> Self {
        MediaPlayer {
            prints: AtomicUsize::new(0),
            stops: AtomicUsize::new(0),
            busy: std::sync::atomic::AtomicBool::new(false),
            last_volume: AtomicI32::new(0),
            last_seek: Mutex::new(Vec::new()),
            loaded: AtomicUsize::new(0),
            title: Mutex::new(String::new()),
            state: Mutex::new(Status::Stopped),
        }
    }
}

impl RemoteObject for MediaPlayer {
    fn type_id(&self) -> &str {
        Player_REPO_ID
    }
}

impl ReceiverServant for MediaPlayer {
    fn print(&self, _text: String) -> RmiResult<()> {
        self.prints.fetch_add(1, Ordering::SeqCst);
        Ok(())
    }

    fn count(&self) -> RmiResult<i32> {
        Ok(self.prints.load(Ordering::SeqCst) as i32)
    }
}

impl PlayerServant for MediaPlayer {
    fn play(&self, _clip: String, volume: i32) -> RmiResult<()> {
        if self.busy.load(Ordering::SeqCst) {
            return Err(Busy { detail: "tape jammed".to_owned() }.to_error());
        }
        self.last_volume.store(volume, Ordering::SeqCst);
        *self.state.lock().unwrap() = Status::Playing;
        Ok(())
    }

    fn stop(&self) -> RmiResult<()> {
        self.stops.fetch_add(1, Ordering::SeqCst);
        *self.state.lock().unwrap() = Status::Stopped;
        Ok(())
    }

    fn load(&self, source: IncopyArg) -> RmiResult<()> {
        match source {
            IncopyArg::Reference(_) | IncopyArg::Value(_) => {
                self.loaded.fetch_add(1, Ordering::SeqCst);
                Ok(())
            }
        }
    }

    fn state(&self) -> RmiResult<Status> {
        Ok(*self.state.lock().unwrap())
    }

    fn seek(&self, frames: Vec<i32>) -> RmiResult<()> {
        *self.last_seek.lock().unwrap() = frames;
        Ok(())
    }

    fn get_position(&self) -> RmiResult<i32> {
        Ok(self.last_seek.lock().unwrap().iter().sum())
    }

    fn get_title(&self) -> RmiResult<String> {
        Ok(self.title.lock().unwrap().clone())
    }

    fn set_title(&self, v: String) -> RmiResult<()> {
        *self.title.lock().unwrap() = v;
        Ok(())
    }
}

#[derive(Default)]
struct ClipLibrary {
    clips: Mutex<Vec<ClipInfo>>,
    last: Mutex<Option<Command>>,
}

impl RemoteObject for ClipLibrary {
    fn type_id(&self) -> &str {
        Library_REPO_ID
    }
}

impl LibraryServant for ClipLibrary {
    fn info(&self, name: String) -> RmiResult<ClipInfo> {
        self.clips
            .lock()
            .unwrap()
            .iter()
            .find(|c| c.title == name)
            .cloned()
            .ok_or_else(|| RmiError::Protocol(format!("no clip {name}")))
    }

    fn register_clip(&self, clip: ClipInfo) -> RmiResult<()> {
        self.clips.lock().unwrap().push(clip);
        Ok(())
    }

    fn durations(&self) -> RmiResult<Vec<i32>> {
        Ok(self.clips.lock().unwrap().iter().map(|c| c.frames).collect())
    }

    fn command(&self, cmd: Command) -> RmiResult<()> {
        *self.last.lock().unwrap() = Some(cmd);
        Ok(())
    }

    fn last_command(&self) -> RmiResult<Command> {
        self.last
            .lock()
            .unwrap()
            .clone()
            .ok_or_else(|| RmiError::Protocol("no command yet".to_owned()))
    }

    fn purchase(&self, _name: String) -> RmiResult<i32> {
        Ok(self.clips.lock().unwrap().len() as i32)
    }

    fn export_catalog(&self) -> RmiResult<String> {
        let lines: Vec<String> = self
            .clips
            .lock()
            .unwrap()
            .iter()
            .map(|c| format!("{}\t{}", c.title, c.frames))
            .collect();
        Ok(lines.join("\n"))
    }
}

fn start_player(kind: DispatchKind) -> (Orb, Arc<MediaPlayer>, PlayerStub) {
    let orb = Orb::new();
    orb.serve("127.0.0.1:0").unwrap();
    let servant = Arc::new(MediaPlayer::default());
    let skel = PlayerSkel::new(Arc::clone(&servant) as _, orb.clone(), kind);
    let objref = orb.export(skel).unwrap();
    let stub = PlayerStub::new(orb.clone(), objref);
    (orb, servant, stub)
}

// ---- tests ------------------------------------------------------------

#[test]
fn generated_const_matches_idl() {
    assert_eq!(DEFAULT_VOLUME, 5);
}

#[test]
fn generated_enum_wire_representation() {
    assert_eq!(Status::Stopped.to_long(), 0);
    assert_eq!(Status::Playing.to_long(), 1);
    assert_eq!(Status::Paused.to_long(), 2);
    assert_eq!(Status::from_long(1).unwrap(), Status::Playing);
    assert!(Status::from_long(7).is_err());
}

#[test]
fn generated_repo_ids() {
    assert_eq!(Receiver_REPO_ID, "IDL:Media/Receiver:1.0");
    assert_eq!(Player_REPO_ID, "IDL:Media/Player:1.0");
    assert_eq!(Busy::REPO_ID, "IDL:Media/Busy:1.0");
}

#[test]
fn play_and_state_round_trip() {
    let (orb, servant, stub) = start_player(DispatchKind::Hash);
    assert_eq!(stub.state().unwrap(), Status::Stopped);
    stub.play("intro.mpg".to_owned(), DEFAULT_VOLUME).unwrap();
    assert_eq!(servant.last_volume.load(Ordering::SeqCst), 5);
    assert_eq!(stub.state().unwrap(), Status::Playing);
    orb.shutdown();
}

#[test]
fn inherited_receiver_methods_via_player_stub() {
    // Fig 5's recursive dispatch through the generated skeleton chain.
    let (orb, _servant, stub) = start_player(DispatchKind::Hash);
    let receiver = stub.as_receiver();
    receiver.print("one".to_owned()).unwrap();
    stub.as_receiver().print("two".to_owned()).unwrap();
    assert_eq!(receiver.count().unwrap(), 2);
    orb.shutdown();
}

#[test]
fn raises_busy_crosses_the_wire() {
    let (orb, servant, stub) = start_player(DispatchKind::Hash);
    servant.busy.store(true, Ordering::SeqCst);
    let err = stub.play("x".to_owned(), 1).unwrap_err();
    assert!(Busy::matches(&err), "{err}");
    let RmiError::Remote { detail, .. } = err else { panic!() };
    assert_eq!(detail, "tape jammed");
    orb.shutdown();
}

#[test]
fn oneway_stop_then_sync() {
    let (orb, servant, stub) = start_player(DispatchKind::Hash);
    stub.stop().unwrap();
    stub.as_receiver().count().unwrap(); // synchronize on the same connection
    assert_eq!(servant.stops.load(Ordering::SeqCst), 1);
    orb.shutdown();
}

#[test]
fn sequence_parameter_round_trips() {
    let (orb, servant, stub) = start_player(DispatchKind::Hash);
    stub.seek(vec![10, 20, 30]).unwrap();
    assert_eq!(*servant.last_seek.lock().unwrap(), vec![10, 20, 30]);
    stub.seek(vec![]).unwrap();
    assert!(servant.last_seek.lock().unwrap().is_empty());
    orb.shutdown();
}

#[test]
fn attributes_get_and_set() {
    let (orb, _servant, stub) = start_player(DispatchKind::Hash);
    stub.seek(vec![10, 20]).unwrap();
    assert_eq!(stub.get_position().unwrap(), 30, "readonly attribute");
    stub.set_title("Heidi demo reel".to_owned()).unwrap();
    assert_eq!(stub.get_title().unwrap(), "Heidi demo reel");
    orb.shutdown();
}

/// A serializable value for incopy (implements the generated-code-facing
/// ValueSerialize trait by hand, as a Serializable servant would).
struct Snapshot;

impl ValueSerialize for Snapshot {
    fn value_type_id(&self) -> &str {
        "IDL:Media/Snapshot:1.0"
    }

    fn marshal_state(&self, enc: &mut dyn heidl::wire::Encoder) {
        enc.put_string("snapshot-state");
    }
}

#[test]
fn incopy_parameter_passes_by_value() {
    let (orb, servant, stub) = start_player(DispatchKind::Hash);
    orb.values().register("IDL:Media/Snapshot:1.0", |dec| {
        let _state = dec.get_string()?;
        Ok(Box::new(()))
    });
    stub.load(&Snapshot).unwrap();
    assert_eq!(servant.loaded.load(Ordering::SeqCst), 1);
    assert_eq!(orb.skeleton_count(), 1, "no skeleton created for the value");
    orb.shutdown();
}

#[test]
fn struct_round_trip_through_library() {
    let orb = Orb::new();
    orb.serve("127.0.0.1:0").unwrap();
    let servant = Arc::new(ClipLibrary::default());
    let skel = LibrarySkel::new(Arc::clone(&servant) as _, orb.clone(), DispatchKind::Hash);
    let stub = LibraryStub::new(orb.clone(), orb.export(skel).unwrap());

    let clip = ClipInfo { title: "intro".to_owned(), frames: 240, status: Status::Stopped };
    stub.register_clip(clip.clone()).unwrap();
    stub.register_clip(ClipInfo { title: "outro".to_owned(), frames: 120, status: Status::Paused })
        .unwrap();

    let got = stub.info("intro".to_owned()).unwrap();
    assert_eq!(got, clip);
    assert_eq!(stub.durations().unwrap(), vec![240, 120]);

    let err = stub.info("missing".to_owned()).unwrap_err();
    assert!(matches!(err, RmiError::Remote { .. }));
    orb.shutdown();
}

#[test]
fn stream_annotated_method_returns_a_reply_stream() {
    // `@stream string export_catalog()` maps the stub to a ReplyStream.
    // The generated skeleton materializes the whole string (the compat
    // path), so the unchunked reply must still terminate the stream.
    let orb = Orb::new();
    orb.serve("127.0.0.1:0").unwrap();
    let servant = Arc::new(ClipLibrary::default());
    let skel = LibrarySkel::new(Arc::clone(&servant) as _, orb.clone(), DispatchKind::Hash);
    let stub = LibraryStub::new(orb.clone(), orb.export(skel).unwrap());

    for (i, frames) in [240, 120, 360].into_iter().enumerate() {
        stub.register_clip(ClipInfo {
            title: format!("clip-{i}"),
            frames,
            status: Status::Stopped,
        })
        .unwrap();
    }

    let mut stream = stub.export_catalog().unwrap();
    let catalog = stream.collect_string().unwrap();
    assert_eq!(catalog, "clip-0\t240\nclip-1\t120\nclip-2\t360");
    orb.shutdown();
}

#[test]
fn union_round_trip_through_library() {
    let orb = Orb::new();
    orb.serve("127.0.0.1:0").unwrap();
    let servant = Arc::new(ClipLibrary::default());
    let skel = LibrarySkel::new(Arc::clone(&servant) as _, orb.clone(), DispatchKind::Hash);
    let stub = LibraryStub::new(orb.clone(), orb.export(skel).unwrap());

    // Every arm of the generated union crosses the wire intact.
    for cmd in [
        Command::JumpLabel("chapter-2".to_owned()),
        Command::Frame(1234),
        Command::Mode(Status::Paused),
        Command::Shuttle(true),
    ] {
        stub.command(cmd.clone()).unwrap();
        assert_eq!(stub.last_command().unwrap(), cmd);
    }
    orb.shutdown();
}

#[test]
fn all_dispatch_strategies_work_on_generated_skeletons() {
    for kind in DispatchKind::ALL {
        let (orb, _servant, stub) = start_player(kind);
        stub.play("clip".to_owned(), 7).unwrap();
        stub.as_receiver().print("x".to_owned()).unwrap();
        assert_eq!(stub.as_receiver().count().unwrap(), 1, "{kind:?}");
        orb.shutdown();
    }
}

#[test]
fn generated_code_over_binary_protocol() {
    // The same generated stubs run unchanged over the CDR/GIOP protocol —
    // the paper's "abstract interface to the ORB" claim.
    let orb = Orb::with_protocol(Arc::new(CdrProtocol));
    orb.serve("127.0.0.1:0").unwrap();
    let servant = Arc::new(MediaPlayer::default());
    let skel = PlayerSkel::new(Arc::clone(&servant) as _, orb.clone(), DispatchKind::Hash);
    let stub = PlayerStub::new(orb.clone(), orb.export(skel).unwrap());
    stub.play("binary".to_owned(), 9).unwrap();
    assert_eq!(stub.state().unwrap(), Status::Playing);
    stub.set_title("t".to_owned()).unwrap();
    assert_eq!(stub.get_title().unwrap(), "t");
    orb.shutdown();
}

#[test]
fn unknown_method_on_generated_skeleton() {
    let (orb, _servant, stub) = start_player(DispatchKind::Hash);
    let call = orb.call(stub.object_ref(), "rewind");
    let err = orb.invoke(call).unwrap_err();
    let RmiError::Remote { repo_id, .. } = err else { panic!() };
    assert_eq!(repo_id, "IDL:heidl/UnknownMethod:1.0");
    orb.shutdown();
}
