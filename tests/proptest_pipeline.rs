//! Property tests over the whole pipeline: any *well-formed* IDL module
//! must flow through parse → EST → every backend without panics or
//! errors, and the EST script must round-trip it exactly.

use proptest::prelude::*;

/// Generates a well-formed IDL source: interfaces `I0..In` whose bases
/// only point backwards (so every name resolves), enums, typedefs, and
/// methods over primitives/strings/enums with optional defaults.
fn idl_module() -> impl Strategy<Value = String> {
    let method_count = 0usize..5;
    let iface_count = 1usize..6;
    let enum_count = 0usize..3;
    (iface_count, method_count, enum_count, any::<u64>()).prop_map(
        |(ifaces, methods, enums, seed)| {
            let mut s = String::from("module Gen {\n");
            for e in 0..enums {
                s.push_str(&format!("  enum E{e} {{ A{e}, B{e}, C{e} }};\n"));
            }
            s.push_str("  typedef sequence<long> LongSeq;\n");
            for i in 0..ifaces {
                let base = if i > 0 && seed.rotate_left(i as u32) & 1 == 1 {
                    format!(" : I{}", (seed as usize + i) % i)
                } else {
                    String::new()
                };
                s.push_str(&format!("  interface I{i}{base} {{\n"));
                for m in 0..methods {
                    let (ty, default) = match (seed >> (m % 16)) % 5 {
                        0 => ("long", " = 7"),
                        1 => ("string", ""),
                        2 => ("boolean", " = TRUE"),
                        3 => ("double", ""),
                        _ if enums > 0 => ("E0", ""),
                        _ => ("short", ""),
                    };
                    let dir = match (seed >> m) % 4 {
                        0 => "in",
                        1 if ty != "string" => "in", // keep defaults legal
                        2 => "inout",
                        _ => "in",
                    };
                    let default = if dir == "in" { default } else { "" };
                    s.push_str(&format!("    void m{m}({dir} {ty} p{m}{default});\n"));
                }
                if seed & (1 << (i % 60)) != 0 {
                    s.push_str("    readonly attribute long position;\n");
                }
                s.push_str("  };\n");
            }
            s.push_str("};\n");
            s
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn every_backend_generates_for_wellformed_idl(idl in idl_module()) {
        let spec = heidl::idl::parse(&idl)
            .map_err(|e| TestCaseError::fail(format!("{}\n{idl}", e.render(&idl))))?;
        let est = heidl::est::build(&spec)
            .map_err(|e| TestCaseError::fail(format!("{e}\n{idl}")))?;
        for name in heidl::codegen::backend_names() {
            let compiler = heidl::codegen::Compiler::new(&name).unwrap();
            let files = compiler
                .generate(&est, "gen")
                .map_err(|e| TestCaseError::fail(format!("{name}: {e}\n{idl}")))?;
            prop_assert!(!files.is_empty(), "{} generated nothing for:\n{}", name, idl);
        }
    }

    #[test]
    fn est_script_roundtrips_wellformed_idl(idl in idl_module()) {
        let est = heidl::est::build(&heidl::idl::parse(&idl).unwrap()).unwrap();
        let encoded = heidl::est::script::encode(&est);
        let rebuilt = heidl::est::script::decode(&encoded)
            .map_err(|e| TestCaseError::fail(format!("{e}\n{encoded}")))?;
        prop_assert!(heidl::est::script::same_shape(&est, &rebuilt));
    }

    #[test]
    fn pretty_print_reparse_generates_identically(idl in idl_module()) {
        let spec = heidl::idl::parse(&idl).unwrap();
        let printed = heidl::idl::print(&spec);
        let spec2 = heidl::idl::parse(&printed)
            .map_err(|e| TestCaseError::fail(format!("{}\n{printed}", e.render(&printed))))?;
        let compiler = heidl::codegen::Compiler::new("heidi-cpp").unwrap();
        let a = compiler.generate(&heidl::est::build(&spec).unwrap(), "g").unwrap();
        let b = compiler.generate(&heidl::est::build(&spec2).unwrap(), "g").unwrap();
        prop_assert_eq!(a, b);
    }
}
