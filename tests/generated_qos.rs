//! End-to-end proof that annotation-driven QoS works with **zero
//! hand-written call-site QoS code**: `idl/media.idl` annotates
//! `state()` with `@idempotent @deadline(50)` and `durations()` with
//! `@cached(200)`, the rust backend compiles those into the stubs at
//! build time, and these tests drive the *generated* stubs under fault
//! injection and TTL expiry. No `CallOptions` appear anywhere below —
//! every per-call policy decision comes from the IDL.

use heidl::media::*;
use heidl::rmi::{
    Counter, DispatchKind, Fault, FaultOp, FaultPlan, FaultRule, FaultyConnector, Orb,
    RemoteObject, RetryPolicy, RmiResult, Trigger,
};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

// ---- servants ---------------------------------------------------------

/// A Player that counts how many times each operation actually executed,
/// so the tests can distinguish "re-sent" from "failed before dispatch".
#[derive(Default)]
struct CountingPlayer {
    states: AtomicUsize,
    seeks: AtomicUsize,
    prints: AtomicUsize,
}

impl RemoteObject for CountingPlayer {
    fn type_id(&self) -> &str {
        Player_REPO_ID
    }
}

impl ReceiverServant for CountingPlayer {
    fn print(&self, _text: String) -> RmiResult<()> {
        self.prints.fetch_add(1, Ordering::SeqCst);
        Ok(())
    }

    fn count(&self) -> RmiResult<i32> {
        Ok(self.prints.load(Ordering::SeqCst) as i32)
    }
}

impl PlayerServant for CountingPlayer {
    fn play(&self, _clip: String, _volume: i32) -> RmiResult<()> {
        Ok(())
    }

    fn stop(&self) -> RmiResult<()> {
        Ok(())
    }

    fn load(&self, _source: heidl::rmi::IncopyArg) -> RmiResult<()> {
        Ok(())
    }

    fn state(&self) -> RmiResult<Status> {
        self.states.fetch_add(1, Ordering::SeqCst);
        Ok(Status::Playing)
    }

    fn seek(&self, _frames: Vec<i32>) -> RmiResult<()> {
        self.seeks.fetch_add(1, Ordering::SeqCst);
        Ok(())
    }

    fn get_position(&self) -> RmiResult<i32> {
        Ok(7)
    }

    fn get_title(&self) -> RmiResult<String> {
        Ok(String::new())
    }

    fn set_title(&self, _v: String) -> RmiResult<()> {
        Ok(())
    }
}

/// A Library whose `durations()` counts servant-side executions — the
/// observable the `@cached(200)` tests key on — and whose `purchase()`
/// counts executions AND returns a per-execution receipt number, so the
/// `@exactly_once` tests can tell a replayed reply from a re-execution.
#[derive(Default)]
struct CountingLibrary {
    duration_calls: AtomicUsize,
    purchases: AtomicUsize,
    clips: Mutex<Vec<i32>>,
}

impl RemoteObject for CountingLibrary {
    fn type_id(&self) -> &str {
        Library_REPO_ID
    }
}

impl LibraryServant for CountingLibrary {
    fn info(&self, _name: String) -> RmiResult<ClipInfo> {
        Ok(ClipInfo { title: "x".to_owned(), frames: 1, status: Status::Stopped })
    }

    fn register_clip(&self, clip: ClipInfo) -> RmiResult<()> {
        self.clips.lock().unwrap().push(clip.frames);
        Ok(())
    }

    fn durations(&self) -> RmiResult<Vec<i32>> {
        self.duration_calls.fetch_add(1, Ordering::SeqCst);
        Ok(self.clips.lock().unwrap().clone())
    }

    fn command(&self, _cmd: Command) -> RmiResult<()> {
        Ok(())
    }

    fn last_command(&self) -> RmiResult<Command> {
        Ok(Command::Frame(0))
    }

    fn purchase(&self, _name: String) -> RmiResult<i32> {
        // A fresh receipt number per execution: a *replayed* reply
        // carries the old receipt, a *re-execution* mints a new one.
        Ok(self.purchases.fetch_add(1, Ordering::SeqCst) as i32 + 100)
    }

    fn export_catalog(&self) -> RmiResult<String> {
        Ok("catalog".to_owned())
    }
}

/// A server ORB with a CountingPlayer, plus a *faulty* client ORB whose
/// every outbound connection runs through the shared [`FaultPlan`].
fn faulty_player() -> (Orb, Orb, Arc<CountingPlayer>, PlayerStub, Arc<FaultPlan>, String) {
    let server = Orb::new();
    server.serve("127.0.0.1:0").unwrap();
    let servant = Arc::new(CountingPlayer::default());
    let skel = PlayerSkel::new(Arc::clone(&servant) as _, server.clone(), DispatchKind::Hash);
    let objref = server.export(skel).unwrap();
    let addr = objref.endpoint.socket_addr();

    let plan = Arc::new(FaultPlan::new(11));
    let client = Orb::builder()
        .connector(Arc::new(FaultyConnector::over_tcp(Arc::clone(&plan))))
        .retry_policy(
            RetryPolicy::default()
                .with_backoff(Duration::from_millis(1), Duration::from_millis(2))
                .with_jitter_seed(5),
        )
        .build();
    let stub = PlayerStub::new(client.clone(), objref);
    (server, client, servant, stub, plan, addr)
}

// ---- @idempotent @deadline(50): generated stubs retry safely ----------

#[test]
fn annotated_state_retries_through_a_midcall_fault() {
    let (server, client, servant, stub, plan, addr) = faulty_player();

    // Warm the pooled connection, then script exactly one mid-call drop:
    // the next frame written to the server dies after (possibly) reaching
    // the wire — the ambiguous IfIdempotent failure shape.
    assert_eq!(stub.state().unwrap(), Status::Playing);
    plan.add_rule(
        FaultRule::always(FaultOp::Send, Fault::DropConnection).when(Trigger::Nth(1)).at(&addr),
    );

    // `state()` is declared `@idempotent @deadline(50)` in media.idl, so
    // the generated stub invokes with RetryClass::Safe — the ORB may
    // re-send and the call completes despite the injected drop.
    assert_eq!(stub.state().unwrap(), Status::Playing, "annotated call rode out the fault");
    assert!(client.metrics().get(Counter::Retries) >= 1, "the recovery used the retry path");
    assert_eq!(servant.states.load(Ordering::SeqCst), 2, "exactly one successful re-execution");

    server.shutdown();
}

#[test]
fn unannotated_seek_never_resends_after_a_midcall_fault() {
    let (server, client, servant, stub, plan, addr) = faulty_player();

    assert_eq!(stub.state().unwrap(), Status::Playing);
    plan.add_rule(
        FaultRule::always(FaultOp::Send, Fault::DropConnection).when(Trigger::Nth(1)).at(&addr),
    );

    // `seek()` carries no annotations: the generated stub uses default
    // options, the mid-call failure is ambiguous, and the ORB must NOT
    // re-send — the error surfaces instead of risking a double seek.
    let err = stub.seek(vec![1, 2, 3]).unwrap_err();
    assert!(
        heidl::rmi::classify(&err) == heidl::rmi::RetryClass::IfIdempotent,
        "the surfaced error is the ambiguous mid-call shape: {err}"
    );
    assert_eq!(client.metrics().get(Counter::Retries), 0, "no retry was attempted");
    assert_eq!(servant.seeks.load(Ordering::SeqCst), 0, "the request was never re-sent");

    server.shutdown();
}

// ---- @cached(200): generated stubs serve from the result cache --------

fn library_pair() -> (Orb, Orb, Arc<CountingLibrary>, LibraryStub) {
    let server = Orb::new();
    server.serve("127.0.0.1:0").unwrap();
    let servant = Arc::new(CountingLibrary::default());
    let skel = LibrarySkel::new(Arc::clone(&servant) as _, server.clone(), DispatchKind::Hash);
    let objref = server.export(skel).unwrap();
    let client = Orb::new();
    let stub = LibraryStub::new(client.clone(), objref);
    (server, client, servant, stub)
}

#[test]
fn cached_durations_serve_from_cache_within_ttl() {
    let (server, client, servant, stub) = library_pair();
    stub.register_clip(ClipInfo {
        title: "intro".to_owned(),
        frames: 240,
        status: Status::Stopped,
    })
    .unwrap();

    // First call misses and fills the cache; the second is served locally.
    assert_eq!(stub.durations().unwrap(), vec![240]);
    assert_eq!(stub.durations().unwrap(), vec![240]);
    assert_eq!(servant.duration_calls.load(Ordering::SeqCst), 1, "one wire round trip");
    assert_eq!(client.metrics().get(Counter::CacheHits), 1, "one cache hit counted");
    assert_eq!(client.cached_result_count(), 1);

    // Mutating the library does NOT invalidate the client cache — `@cached`
    // is an explicit staleness budget, and within it the old answer stands.
    stub.register_clip(ClipInfo { title: "outro".to_owned(), frames: 120, status: Status::Paused })
        .unwrap();
    assert_eq!(stub.durations().unwrap(), vec![240], "stale within the 200 ms budget");

    server.shutdown();
}

// ---- @exactly_once: generated stubs retry under token dedup -----------

/// A server ORB with a CountingLibrary, plus a *faulty* client ORB.
#[allow(clippy::type_complexity)]
fn faulty_library(
) -> (Orb, Orb, Arc<CountingLibrary>, LibraryStub, Arc<FaultPlan>, heidl::rmi::ObjectRef) {
    let server = Orb::new();
    server.serve("127.0.0.1:0").unwrap();
    let servant = Arc::new(CountingLibrary::default());
    let skel = LibrarySkel::new(Arc::clone(&servant) as _, server.clone(), DispatchKind::Hash);
    let objref = server.export(skel).unwrap();

    let plan = Arc::new(FaultPlan::new(23));
    let client = Orb::builder()
        .connector(Arc::new(FaultyConnector::over_tcp(Arc::clone(&plan))))
        .retry_policy(
            RetryPolicy::default()
                .with_backoff(Duration::from_millis(1), Duration::from_millis(2))
                .with_jitter_seed(9),
        )
        .build();
    let stub = LibraryStub::new(client.clone(), objref.clone());
    (server, client, servant, stub, plan, objref)
}

#[test]
fn exactly_once_purchase_rides_out_a_midcall_drop() {
    let (server, client, servant, stub, plan, objref) = faulty_library();
    let addr = objref.endpoint.socket_addr();

    // Warm the pooled connection, then script one mid-call drop on the
    // next frame — the ambiguous shape that untokened non-idempotent
    // calls must surface as an error.
    assert_eq!(stub.purchase("intro".to_owned()).unwrap(), 100);
    plan.add_rule(
        FaultRule::always(FaultOp::Send, Fault::DropConnection).when(Trigger::Nth(1)).at(&addr),
    );

    // `purchase()` is declared `@exactly_once` in media.idl: the stub
    // stamps an invocation token, the mid-call drop is retried
    // transparently, and the servant ran exactly once for this call.
    assert_eq!(stub.purchase("outro".to_owned()).unwrap(), 101, "second receipt, not a third");
    assert_eq!(servant.purchases.load(Ordering::SeqCst), 2, "no duplicate execution");
    assert!(client.metrics().get(Counter::Retries) >= 1, "the recovery used the retry path");

    server.shutdown();
}

#[test]
fn retried_token_replays_the_original_reply_without_reexecuting() {
    let (server, _client, servant, stub, _plan, objref) = faulty_library();
    let addr = objref.endpoint.socket_addr();

    // Drive one purchase through the generated stub so the servant's
    // receipt counter is live.
    assert_eq!(stub.purchase("intro".to_owned()).unwrap(), 100);

    // Now send a byte-identical tokened request twice — exactly what a
    // client retry puts on the wire after a reply was lost mid-call. The
    // server must execute once, then recognize the token and replay the
    // cached receipt instead of executing the servant again.
    let orb = Orb::new();
    let mut call = orb.call(&objref, "purchase");
    call.args().put_string("intro");
    let token = heidl::rmi::InvocationToken { session: 42, seq: 7 };
    call.attach_token(orb.protocol().as_ref(), token);
    let body = call.into_body();

    let send = |body: &[u8]| {
        use std::io::{Read, Write};
        let mut sock = std::net::TcpStream::connect(&addr).unwrap();
        sock.write_all(body).unwrap();
        sock.write_all(b"\n").unwrap();
        let mut reply = String::new();
        let mut b = [0u8; 1];
        while sock.read(&mut b).unwrap() == 1 && b[0] != b'\n' {
            reply.push(b[0] as char);
        }
        reply
    };
    let first = send(&body);
    let retry = send(&body);
    assert_eq!(first, retry, "the retried token replayed the original reply byte-for-byte");
    assert_eq!(
        servant.purchases.load(Ordering::SeqCst),
        2,
        "one stub purchase + one manual purchase — the retry never reached the servant"
    );
    assert!(server.metrics().get(Counter::DedupReplays) >= 1, "the replay was counted");

    server.shutdown();
}

#[test]
fn cached_durations_expire_after_ttl() {
    let (server, _client, servant, stub) = library_pair();
    stub.register_clip(ClipInfo {
        title: "intro".to_owned(),
        frames: 240,
        status: Status::Stopped,
    })
    .unwrap();

    assert_eq!(stub.durations().unwrap(), vec![240]);
    // `@cached(200)`: after the TTL the entry is dead and the stub goes
    // back to the wire, observing the newer catalog.
    stub.register_clip(ClipInfo { title: "outro".to_owned(), frames: 120, status: Status::Paused })
        .unwrap();
    std::thread::sleep(Duration::from_millis(250));
    assert_eq!(stub.durations().unwrap(), vec![240, 120], "TTL expired, fresh answer fetched");
    assert_eq!(servant.duration_calls.load(Ordering::SeqCst), 2, "exactly two servant executions");

    server.shutdown();
}
