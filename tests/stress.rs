//! Stress: many objects, many client threads, mixed operations, both
//! protocols — the generated code and the runtime under sustained
//! concurrent load (control messaging in Heidi ran exactly like this:
//! many components, many small calls).

use heidl::media::*;
use heidl::rmi::{DispatchKind, Orb, RemoteObject, RmiError, RmiResult};
use heidl::wire::CdrProtocol;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

struct Board {
    posts: AtomicUsize,
    titles: Mutex<Vec<String>>,
}

impl Board {
    fn new() -> Arc<Board> {
        Arc::new(Board { posts: AtomicUsize::new(0), titles: Mutex::new(Vec::new()) })
    }
}

impl RemoteObject for Board {
    fn type_id(&self) -> &str {
        Player_REPO_ID
    }
}

impl ReceiverServant for Board {
    fn print(&self, _text: String) -> RmiResult<()> {
        self.posts.fetch_add(1, Ordering::SeqCst);
        Ok(())
    }

    fn count(&self) -> RmiResult<i32> {
        Ok(self.posts.load(Ordering::SeqCst) as i32)
    }
}

impl PlayerServant for Board {
    fn play(&self, _clip: String, volume: i32) -> RmiResult<()> {
        if volume > 10 {
            return Err(Busy { detail: "too loud".into() }.to_error());
        }
        Ok(())
    }
    fn stop(&self) -> RmiResult<()> {
        Ok(())
    }
    fn load(&self, _s: heidl::rmi::IncopyArg) -> RmiResult<()> {
        Ok(())
    }
    fn state(&self) -> RmiResult<Status> {
        Ok(Status::Paused)
    }
    fn seek(&self, frames: Vec<i32>) -> RmiResult<()> {
        if frames.iter().any(|f| *f < 0) {
            return Err(RmiError::Protocol("negative frame".into()));
        }
        Ok(())
    }
    fn get_position(&self) -> RmiResult<i32> {
        Ok(self.posts.load(Ordering::SeqCst) as i32)
    }
    fn get_title(&self) -> RmiResult<String> {
        Ok(self.titles.lock().unwrap().last().cloned().unwrap_or_default())
    }
    fn set_title(&self, v: String) -> RmiResult<()> {
        self.titles.lock().unwrap().push(v);
        Ok(())
    }
}

fn stress(orb: Orb, objects: usize, threads: usize, calls_per_thread: usize) {
    orb.serve("127.0.0.1:0").unwrap();
    let mut refs = Vec::new();
    let mut boards = Vec::new();
    for _ in 0..objects {
        let board = Board::new();
        let skel = PlayerSkel::new(
            Arc::clone(&board) as Arc<dyn PlayerServant>,
            orb.clone(),
            DispatchKind::Hash,
        );
        refs.push(orb.export(skel).unwrap());
        boards.push(board);
    }

    let handles: Vec<_> = (0..threads)
        .map(|t| {
            let orb = orb.clone();
            let refs = refs.clone();
            std::thread::spawn(move || {
                for i in 0..calls_per_thread {
                    let objref = &refs[(t + i) % refs.len()];
                    let stub = PlayerStub::new(orb.clone(), objref.clone());
                    match i % 6 {
                        0 => stub.as_receiver().print(format!("t{t} i{i}")).unwrap(),
                        1 => {
                            stub.play("clip".into(), 3).unwrap();
                        }
                        2 => {
                            // Deliberate user exception path under load.
                            let err = stub.play("clip".into(), 99).unwrap_err();
                            assert!(Busy::matches(&err));
                        }
                        3 => {
                            stub.seek(vec![1, 2, 3]).unwrap();
                        }
                        4 => {
                            stub.set_title(format!("title-{t}-{i}")).unwrap();
                            let _ = stub.get_title().unwrap();
                        }
                        _ => {
                            let _ = stub.as_receiver().count().unwrap();
                        }
                    }
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }

    // Every thread performed exactly |{i : i % 6 == 0}| prints.
    let total_prints: usize = boards.iter().map(|b| b.posts.load(Ordering::SeqCst)).sum();
    let per_thread = (0..calls_per_thread).filter(|i| i % 6 == 0).count();
    assert_eq!(total_prints, threads * per_thread);
    orb.shutdown();
}

#[test]
fn stress_text_protocol() {
    stress(Orb::new(), 8, 8, 60);
}

#[test]
fn stress_binary_protocol() {
    stress(Orb::with_protocol(Arc::new(CdrProtocol)), 4, 6, 48);
}

#[test]
fn stress_stub_cache_under_concurrency() {
    let orb = Orb::new();
    orb.serve("127.0.0.1:0").unwrap();
    let board = Board::new();
    let skel = PlayerSkel::new(
        Arc::clone(&board) as Arc<dyn PlayerServant>,
        orb.clone(),
        DispatchKind::Hash,
    );
    let objref = orb.export(skel).unwrap();

    let handles: Vec<_> = (0..8)
        .map(|_| {
            let orb = orb.clone();
            let objref = objref.clone();
            std::thread::spawn(move || {
                for _ in 0..50 {
                    let stub = orb.cached_stub(&objref, || {
                        Arc::new(PlayerStub::new(orb.clone(), objref.clone()))
                    });
                    stub.as_receiver().print("x".into()).unwrap();
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(board.posts.load(Ordering::SeqCst), 400);
    assert_eq!(orb.stub_count(), 1, "one cached stub shared by all threads");
    orb.shutdown();
}
