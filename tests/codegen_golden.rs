//! Golden-file test for the rust backend: compiling `idl/media.idl` must
//! reproduce `tests/golden/media.rs` byte for byte. This pins the full
//! parser → EST → template pipeline — including the annotation-driven QoS
//! wiring in the generated stubs — so template or EST changes show up as
//! a reviewable diff instead of a silent drift.
//!
//! After an intentional codegen change, refresh the golden file with:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test --test codegen_golden
//! ```

use std::path::Path;

#[test]
fn rust_backend_output_matches_golden_file() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let idl = std::fs::read_to_string(root.join("idl/media.idl")).unwrap();
    let files = heidl::codegen::compile("rust", &idl, "media").unwrap();
    let generated = files.file("media.rs").expect("rust backend emits media.rs");

    let golden_path = root.join("tests/golden/media.rs");
    if std::env::var("UPDATE_GOLDEN").is_ok() {
        std::fs::write(&golden_path, generated).unwrap();
        return;
    }
    let golden = std::fs::read_to_string(&golden_path)
        .expect("tests/golden/media.rs missing — run with UPDATE_GOLDEN=1 to create it");
    if generated != golden {
        // A unified first-difference report beats dumping two ~1000-line files.
        let line = generated.lines().zip(golden.lines()).position(|(g, e)| g != e);
        panic!(
            "generated media.rs differs from tests/golden/media.rs \
             (first differing line: {:?}; generated {} lines, golden {} lines).\n\
             If the change is intentional: UPDATE_GOLDEN=1 cargo test --test codegen_golden",
            line.map(|i| i + 1),
            generated.lines().count(),
            golden.lines().count(),
        );
    }

    // The golden file itself must carry the QoS wiring the annotations ask
    // for — guards against regenerating a golden that silently lost it.
    for needle in ["RetryClass::Safe", "from_millis(50)", ".cached(", "invoke_oneway"] {
        assert!(golden.contains(needle), "golden media.rs lost `{needle}`");
    }
}
