//! Experiment E8: the human-telnet debugging session (paper §4.2).
//!
//! *"Utilizing such a text-based protocol permitted a 'human' client to
//! telnet into the bootstrap port of a Heidi application and type in
//! simple HeidiRMI requests to debug the system."*
//!
//! These tests open a raw TCP socket to a live ORB and type requests as a
//! human would — no stub, no Call object, just a line of text.

use heidl::media::{PlayerSkel, Receiver_REPO_ID};
use heidl::rmi::{DispatchKind, Orb, RemoteObject, RmiResult};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

struct Echo {
    prints: AtomicUsize,
}

impl RemoteObject for Echo {
    fn type_id(&self) -> &str {
        Receiver_REPO_ID
    }
}

impl heidl::media::ReceiverServant for Echo {
    fn print(&self, _text: String) -> RmiResult<()> {
        self.prints.fetch_add(1, Ordering::SeqCst);
        Ok(())
    }

    fn count(&self) -> RmiResult<i32> {
        Ok(self.prints.load(Ordering::SeqCst) as i32)
    }
}

impl heidl::media::PlayerServant for Echo {
    fn play(&self, _clip: String, _volume: i32) -> RmiResult<()> {
        Ok(())
    }
    fn stop(&self) -> RmiResult<()> {
        Ok(())
    }
    fn load(&self, _source: heidl::rmi::IncopyArg) -> RmiResult<()> {
        Ok(())
    }
    fn state(&self) -> RmiResult<heidl::media::Status> {
        Ok(heidl::media::Status::Stopped)
    }
    fn seek(&self, _frames: Vec<i32>) -> RmiResult<()> {
        Ok(())
    }
    fn get_position(&self) -> RmiResult<i32> {
        Ok(0)
    }
    fn get_title(&self) -> RmiResult<String> {
        Ok("untitled".to_owned())
    }
    fn set_title(&self, _v: String) -> RmiResult<()> {
        Ok(())
    }
}

fn telnet_session() -> (Orb, String, BufReader<TcpStream>) {
    let orb = Orb::new();
    let endpoint = orb.serve("127.0.0.1:0").unwrap();
    let skel = PlayerSkel::new(
        Arc::new(Echo { prints: AtomicUsize::new(0) }),
        orb.clone(),
        DispatchKind::Hash,
    );
    let objref = orb.export(skel).unwrap();
    let stream = TcpStream::connect(endpoint.socket_addr()).unwrap();
    (orb, objref.to_string(), BufReader::new(stream))
}

fn type_line(reader: &mut BufReader<TcpStream>, line: &str) -> String {
    reader.get_mut().write_all(line.as_bytes()).unwrap();
    reader.get_mut().write_all(b"\r\n").unwrap(); // telnet sends CRLF
    let mut reply = String::new();
    reader.read_line(&mut reply).unwrap();
    reply.trim_end().to_owned()
}

#[test]
fn a_human_can_type_a_request_and_read_the_reply() {
    let (orb, objref, mut session) = telnet_session();
    // What a person types: id "objref" "method" T args... — the id is any
    // small number; the reply leads with the same id so multiple typed
    // requests can be told apart.
    let reply =
        type_line(&mut session, &format!("7 \"{objref}\" \"print\" T \"hello from telnet\""));
    assert_eq!(reply, "7 0", "echoed id, then status 0 = OK, readable at a glance");

    let reply = type_line(&mut session, &format!("8 \"{objref}\" \"count\" T"));
    assert_eq!(reply, "8 0 1", "id, status, then the long result, all printable text");
    orb.shutdown();
}

#[test]
fn typing_a_bad_method_yields_a_readable_diagnostic() {
    let (orb, objref, mut session) = telnet_session();
    let reply = type_line(&mut session, &format!("1 \"{objref}\" \"frobnicate\" T"));
    assert!(reply.starts_with("1 2 "), "echoed id, system exception status: {reply}");
    assert!(reply.contains("IDL:heidl/UnknownMethod:1.0"), "{reply}");
    assert!(reply.contains("frobnicate"), "the diagnostic names the method: {reply}");
    orb.shutdown();
}

#[test]
fn typing_garbage_yields_a_bad_request_reply() {
    let (orb, _objref, mut session) = telnet_session();
    // No id at all, just nonsense: the server answers with id 0.
    let reply = type_line(&mut session, "\"not-an-objref\" \"x\" T");
    assert!(reply.starts_with("0 2 "), "{reply}");
    assert!(reply.contains("BadRequest"), "{reply}");
    orb.shutdown();
}

#[test]
fn replies_echo_the_request_id_even_out_of_order() {
    let (orb, objref, mut session) = telnet_session();
    // Type two requests before reading either reply; each reply names
    // the request it answers.
    session.get_mut().write_all(format!("41 \"{objref}\" \"count\" T\r\n").as_bytes()).unwrap();
    session.get_mut().write_all(format!("42 \"{objref}\" \"count\" T\r\n").as_bytes()).unwrap();
    let mut replies = Vec::new();
    for _ in 0..2 {
        let mut line = String::new();
        session.read_line(&mut line).unwrap();
        replies.push(line.trim_end().to_owned());
    }
    replies.sort();
    assert_eq!(replies, vec!["41 0 0", "42 0 0"]);
    orb.shutdown();
}

#[test]
fn wrong_object_id_is_reported() {
    let (orb, objref, mut session) = telnet_session();
    let bogus = objref.replace("#1#", "#424242#");
    let reply = type_line(&mut session, &format!("1 \"{bogus}\" \"count\" T"));
    assert!(reply.contains("UnknownObject"), "{reply}");
    orb.shutdown();
}

#[test]
fn the_whole_session_is_printable_ascii() {
    let (orb, objref, mut session) = telnet_session();
    let reply = type_line(&mut session, &format!("1 \"{objref}\" \"get_title\" T"));
    // Wrong spelling on purpose: attribute access is _get_title.
    assert!(reply.contains("UnknownMethod"), "{reply}");
    let reply = type_line(&mut session, &format!("2 \"{objref}\" \"_get_title\" T"));
    assert_eq!(reply, "2 0 \"untitled\"");
    assert!(reply.chars().all(|c| c.is_ascii_graphic() || c == ' '), "{reply}");
    orb.shutdown();
}
