//! Figs 4 & 5 as executable interaction traces: interceptors observe the
//! exact object-interaction order the paper's diagrams draw, through the
//! *generated* stubs and skeletons.

use heidl::media::*;
use heidl::rmi::{CallInfo, DispatchKind, FnInterceptor, Orb, RemoteObject, RmiResult};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

struct Probe {
    prints: AtomicUsize,
}

impl RemoteObject for Probe {
    fn type_id(&self) -> &str {
        Receiver_REPO_ID
    }
}

impl ReceiverServant for Probe {
    fn print(&self, _t: String) -> RmiResult<()> {
        self.prints.fetch_add(1, Ordering::SeqCst);
        Ok(())
    }

    fn count(&self) -> RmiResult<i32> {
        Ok(self.prints.load(Ordering::SeqCst) as i32)
    }
}

fn traced_orb() -> (Orb, Arc<Mutex<Vec<String>>>, heidl::rmi::ObjectRef) {
    let orb = Orb::new();
    orb.serve("127.0.0.1:0").unwrap();
    let skel = ReceiverSkel::new(
        Arc::new(Probe { prints: AtomicUsize::new(0) }),
        orb.clone(),
        DispatchKind::Hash,
    );
    let objref = orb.export(skel).unwrap();
    let trace: Arc<Mutex<Vec<String>>> = Arc::default();
    {
        let trace = Arc::clone(&trace);
        orb.add_interceptor(Arc::new(FnInterceptor(move |info: &CallInfo| {
            trace.lock().unwrap().push(format!("{:?}({})", info.phase, info.method));
        })));
    }
    (orb, trace, objref)
}

/// Fig 4: "When a stub method is invoked, a new Call object ... is
/// created. The stringified object reference of the target remote object
/// forms the header of the Call. After any parameters ... are marshaled
/// into the Call object, the Call is invoked, resulting in the call
/// request being sent to the server-side."
#[test]
fn fig4_client_interaction() {
    let (orb, trace, objref) = traced_orb();
    let stub = ReceiverStub::new(orb.clone(), objref.clone());

    // Step 0: the Call header is the stringified reference (visible on
    // the wire in the text protocol — proven byte-level in
    // crates/rmi/src/call.rs::request_header_is_readable_on_text_protocol).
    let call = orb.call(&objref, "print");
    assert_eq!(call.method(), "print");
    assert_eq!(call.target(), &objref);
    drop(call);

    // Steps 1-4 through the generated stub: send precedes receive, and
    // the reply arrives after the server processed the request.
    stub.print("fig4".to_owned()).unwrap();
    let t = trace.lock().unwrap().clone();
    let pos = |needle: &str| {
        t.iter().position(|e| e == needle).unwrap_or_else(|| panic!("{needle} missing from {t:?}"))
    };
    assert!(pos("ClientSend(print)") < pos("ServerDispatch(print)"), "{t:?}");
    assert!(pos("ServerDispatch(print)") < pos("ServerReply(print)"), "{t:?}");
    assert!(pos("ServerReply(print)") < pos("ClientReceive(print)"), "{t:?}");
    orb.shutdown();
}

/// Fig 5: "When a client connects to the bootstrap port (1), a new
/// ObjectCommunicator is wrapped around the resulting connection.
/// Connections are cached and reused ... The ObjectCommunicator reads in
/// an incoming request (2) ... The Call header contains the stringified
/// object reference, whose type information and object identifier permit
/// the selection of the appropriate Skeleton."
#[test]
fn fig5_server_dispatch() {
    let (orb, trace, objref) = traced_orb();
    let stub = ReceiverStub::new(orb.clone(), objref.clone());

    // (1) bootstrap connect + (2)-(4) request/dispatch/reply, repeatedly
    // on ONE cached connection.
    for _ in 0..3 {
        stub.print("fig5".to_owned()).unwrap();
    }
    assert_eq!(stub.count().unwrap(), 3);
    assert_eq!(orb.connections().opened_count(), 1, "connection cached and reused");

    // Skeleton selection is by object id: a reference with a wrong id at
    // the same endpoint selects nothing.
    let bogus = heidl::rmi::ObjectRef::new(objref.endpoint.clone(), 999, objref.type_id.clone());
    let err = orb.invoke(orb.call(&bogus, "print")).unwrap_err();
    assert!(err.to_string().contains("UnknownObject"), "{err}");

    // Server-side order for every handled request: dispatch before reply.
    let t = trace.lock().unwrap().clone();
    let dispatches = t.iter().filter(|e| e.starts_with("ServerDispatch(print)")).count();
    assert_eq!(dispatches, 3, "{t:?}");
    orb.shutdown();
}
