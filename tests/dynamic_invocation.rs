//! Dynamic invocation against servers built from *generated* skeletons:
//! a client that knows signatures only at run time interoperates with
//! compiled servants — the "generic engine configured at run time" story
//! from §4.2, programmatic edition.

use heidl::media::*;
use heidl::rmi::dynamic::{DynCall, DynValue};
use heidl::rmi::{DispatchKind, Orb, RemoteObject, RmiError, RmiResult};
use std::sync::atomic::{AtomicI32, Ordering};
use std::sync::{Arc, Mutex};

struct Deck {
    last_volume: AtomicI32,
    title: Mutex<String>,
    frames: Mutex<Vec<i32>>,
}

impl RemoteObject for Deck {
    fn type_id(&self) -> &str {
        Player_REPO_ID
    }
}

impl ReceiverServant for Deck {
    fn print(&self, _t: String) -> RmiResult<()> {
        Ok(())
    }
    fn count(&self) -> RmiResult<i32> {
        Ok(7)
    }
}

impl PlayerServant for Deck {
    fn play(&self, _clip: String, volume: i32) -> RmiResult<()> {
        self.last_volume.store(volume, Ordering::SeqCst);
        Ok(())
    }
    fn stop(&self) -> RmiResult<()> {
        Ok(())
    }
    fn load(&self, _s: heidl::rmi::IncopyArg) -> RmiResult<()> {
        Ok(())
    }
    fn state(&self) -> RmiResult<Status> {
        Ok(Status::Paused)
    }
    fn seek(&self, frames: Vec<i32>) -> RmiResult<()> {
        *self.frames.lock().unwrap() = frames;
        Ok(())
    }
    fn get_position(&self) -> RmiResult<i32> {
        Ok(self.frames.lock().unwrap().iter().sum())
    }
    fn get_title(&self) -> RmiResult<String> {
        Ok(self.title.lock().unwrap().clone())
    }
    fn set_title(&self, v: String) -> RmiResult<()> {
        *self.title.lock().unwrap() = v;
        Ok(())
    }
}

fn setup() -> (Orb, Arc<Deck>, heidl::rmi::ObjectRef) {
    let orb = Orb::new();
    orb.serve("127.0.0.1:0").unwrap();
    let deck = Arc::new(Deck {
        last_volume: AtomicI32::new(0),
        title: Mutex::new(String::new()),
        frames: Mutex::new(Vec::new()),
    });
    let skel = PlayerSkel::new(Arc::clone(&deck) as _, orb.clone(), DispatchKind::Hash);
    let objref = orb.export(skel).unwrap();
    (orb, deck, objref)
}

#[test]
fn dynamic_call_with_args_hits_generated_skeleton() {
    let (orb, deck, objref) = setup();
    DynCall::new(&orb, &objref, "play")
        .arg(DynValue::Str("intro.mpg".into()))
        .arg(DynValue::Long(9))
        .invoke()
        .unwrap();
    assert_eq!(deck.last_volume.load(Ordering::SeqCst), 9);
    orb.shutdown();
}

#[test]
fn dynamic_result_extraction() {
    let (orb, _deck, objref) = setup();
    let mut results = DynCall::new(&orb, &objref, "count").invoke().unwrap();
    assert_eq!(results.next_long().unwrap(), 7);

    let mut results = DynCall::new(&orb, &objref, "state").invoke().unwrap();
    // Enum results arrive as their discriminant.
    assert_eq!(results.next_long().unwrap(), Status::Paused.to_long());
    orb.shutdown();
}

#[test]
fn dynamic_sequence_and_attribute_access() {
    let (orb, deck, objref) = setup();
    DynCall::new(&orb, &objref, "seek")
        .arg(DynValue::Seq(vec![DynValue::Long(100), DynValue::Long(200), DynValue::Long(300)]))
        .invoke()
        .unwrap();
    assert_eq!(*deck.frames.lock().unwrap(), vec![100, 200, 300]);

    // Attribute access uses the same _get_/_set_ wire names that
    // generated stubs use.
    DynCall::new(&orb, &objref, "_set_title")
        .arg(DynValue::Str("dynamic!".into()))
        .invoke()
        .unwrap();
    let mut results = DynCall::new(&orb, &objref, "_get_title").invoke().unwrap();
    assert_eq!(results.next_string().unwrap(), "dynamic!");
    let mut results = DynCall::new(&orb, &objref, "_get_position").invoke().unwrap();
    assert_eq!(results.next_long().unwrap(), 600);
    orb.shutdown();
}

#[test]
fn dynamic_oneway() {
    let (orb, _deck, objref) = setup();
    let mut results = DynCall::new(&orb, &objref, "stop").oneway().invoke().unwrap();
    assert!(matches!(results.next_long(), Err(RmiError::Protocol(_))));
    // Synchronize to prove the connection stayed consistent.
    let mut r = DynCall::new(&orb, &objref, "count").invoke().unwrap();
    assert_eq!(r.next_long().unwrap(), 7);
    orb.shutdown();
}

#[test]
fn dynamic_unknown_method_surfaces_remote_error() {
    let (orb, _deck, objref) = setup();
    let err = DynCall::new(&orb, &objref, "transmogrify").invoke().unwrap_err();
    let RmiError::Remote { repo_id, .. } = err else { panic!() };
    assert_eq!(repo_id, "IDL:heidl/UnknownMethod:1.0");
    orb.shutdown();
}

#[test]
fn dynamic_and_static_clients_interleave_on_one_connection() {
    let (orb, deck, objref) = setup();
    let stub = PlayerStub::new(orb.clone(), objref.clone());
    stub.play("a".into(), 1).unwrap();
    DynCall::new(&orb, &objref, "play")
        .arg(DynValue::Str("b".into()))
        .arg(DynValue::Long(2))
        .invoke()
        .unwrap();
    stub.play("c".into(), 3).unwrap();
    assert_eq!(deck.last_volume.load(Ordering::SeqCst), 3);
    assert_eq!(orb.connections().opened_count(), 1, "all over one cached connection");
    orb.shutdown();
}
