//! Golden tests pinning generated output to the paper's tables and
//! figures. Each test names the artifact it reproduces (see DESIGN.md's
//! experiment index).

use heidl::codegen::{compile, typemap};
use heidl::idl::FIG3_IDL;

/// The exact `Receiver` interface implied by Fig 10's generated tcl.
const RECEIVER_IDL: &str = "interface Receiver { void print(in string text); };";

// ---- Table 1: IDL to C++ type mappings ---------------------------------

#[test]
fn table1_prescribed_vs_alternate_rows() {
    // The paper's three printed rows, through the actual backends.
    for (idl_ty, prescribed, alternate) in [
        ("long", "CORBA::Long", "long"),
        ("boolean", "CORBA::Boolean", "XBool"),
        ("float", "CORBA::Float", "float"),
    ] {
        assert_eq!(typemap::prescribed(idl_ty), Some(prescribed));
        assert_eq!(typemap::alternate(idl_ty), Some(alternate));
    }
}

#[test]
fn table1_realized_in_generated_code() {
    let idl = "interface T { void f(in long a, in boolean b, in float c); };";
    let heidi = compile("heidi-cpp", idl, "t").unwrap();
    let h = heidi.file("HdT.hh").unwrap();
    assert!(h.contains("long a"), "{h}");
    assert!(h.contains("XBool b"), "{h}");
    assert!(h.contains("float c"), "{h}");

    let corba = compile("corba-cpp", idl, "t").unwrap();
    let c = corba.file("t_corba.hh").unwrap();
    assert!(c.contains("CORBA::Long a"), "{c}");
    assert!(c.contains("CORBA::Boolean b"), "{c}");
    assert!(c.contains("CORBA::Float c"), "{c}");
}

// ---- Table 2: CORBA-prescribed vs legacy usages -------------------------

#[test]
fn table2_corba_prescribed_spellings_exist() {
    let out = compile("corba-cpp", "interface A {};", "a").unwrap();
    let h = out.file("a_corba.hh").unwrap();
    // `A_var a;` and `A_ptr p;` become legal with these typedefs.
    assert!(h.contains("typedef A* A_ptr;"), "{h}");
    assert!(h.contains("typedef CORBA::ObjVar< A > A_var;"), "{h}");
}

#[test]
fn table2_legacy_spellings_in_heidi_mapping() {
    // The custom mapping uses plain `HdA*` — the legacy `A* p;` style.
    let out = compile("heidi-cpp", "interface A { void f(in A other); };", "a").unwrap();
    let h = out.file("HdA.hh").unwrap();
    assert!(h.contains("HdA* other"), "{h}");
    assert!(!h.contains("_var"), "no CORBA-specific types in the custom mapping:\n{h}");
    assert!(!h.contains("_ptr"), "{h}");
}

// ---- Fig 1: CORBA C++ stub/skeleton inheritance hierarchy ---------------

#[test]
fn fig1_hierarchy_stub_and_skel_inherit_interface() {
    let out = compile("corba-cpp", "interface A {};", "a").unwrap();
    let h = out.file("a_corba.hh").unwrap();
    assert!(h.contains("class A : virtual public CORBA::Object"), "{h}");
    assert!(h.contains("class A_stub : virtual public A"), "{h}");
    assert!(h.contains("class A_skel : virtual public A"), "{h}");
    // The tie bridges implementations that cannot inherit the skeleton.
    assert!(h.contains("class A_tie : public A_skel"), "{h}");
    assert!(h.contains("template <class T>"), "{h}");
}

// ---- Fig 2: HeidiRMI delegation mapping ----------------------------------

#[test]
fn fig2_heidi_skeleton_delegates_instead_of_inheriting() {
    let out = compile("heidi-cpp", "interface A { void f(); };", "a").unwrap();
    let skel = out.file("HdA_skel.hh").unwrap();
    // Delegation: the skeleton holds an impl pointer...
    assert!(skel.contains("HdA_skel(HdA* impl) : _impl(impl)"), "{skel}");
    assert!(skel.contains("_impl->f("), "{skel}");
    // ...and does NOT inherit from the interface class.
    assert!(!skel.contains("public HdA,"), "{skel}");
    assert!(!skel.contains("virtual public HdA"), "{skel}");
}

// ---- Fig 3: A.idl and its generated C++ interface class ------------------

#[test]
fn fig3_generated_interface_class_matches_paper() {
    let out = compile("heidi-cpp", FIG3_IDL, "A").unwrap();
    let header = out.file("HdA.hh").unwrap();
    // Every signature the paper prints, normalized for whitespace.
    let flat: String = header.split_whitespace().collect::<Vec<_>>().join(" ");
    for expected in [
        "class HdA : virtual public HdS",
        "virtual void f( HdA* a ) = 0;",
        "virtual void g( HdS* s ) = 0;",
        "virtual void p( long l = 0 ) = 0;",
        "virtual void q( HdStatus s = Start ) = 0;",
        "virtual void s( XBool b = XTrue ) = 0;",
        "virtual void t( HdSSequence* s ) = 0;",
        "virtual HdStatus GetButton() const = 0;",
        "virtual ~HdA() {}",
    ] {
        assert!(flat.contains(expected), "missing `{expected}` in:\n{header}");
    }
    // The readonly attribute must not get a setter.
    assert!(!flat.contains("SetButton"), "{header}");
}

#[test]
fn fig3_types_header_matches_paper() {
    let out = compile("heidi-cpp", FIG3_IDL, "A").unwrap();
    let types = out.file("A_types.hh").unwrap();
    assert!(types.contains("enum HdStatus { Start, Stop };"), "{types}");
    assert!(types.contains("typedef HdList<HdS> HdSSequence;"), "{types}");
    assert!(types.contains("HdSSequenceIter;"), "{types}");
    assert!(types.contains("// IDL:Heidi/SSequence:1.0"), "{types}");
}

#[test]
fn fig3_no_corba_types_anywhere() {
    // "It can be seen that no CORBA-specific types are utilized."
    let out = compile("heidi-cpp", FIG3_IDL, "A").unwrap();
    for (name, content) in out.iter() {
        assert!(!content.contains("CORBA::"), "CORBA type leaked into {name}:\n{content}");
    }
}

// ---- Fig 9: the template itself -------------------------------------------

#[test]
fn fig9_interface_template_uses_paper_constructs() {
    // The shipped template must be recognizably Fig 9: same commands,
    // same map functions, same list names.
    let backend = heidl::codegen::backend("heidi-cpp").unwrap();
    let tmpl = backend.templates.iter().find(|t| t.name == "interface.tmpl").unwrap().source;
    for needle in [
        "@foreach interfaceList -map interfaceName CPP::MapClassName",
        "@openfile ${interfaceName}.hh",
        "/* File ${interfaceName}.hh */",
        "@foreach inheritedList -ifMore ',' -map inheritedName CPP::MapClassName",
        "virtual public ${inheritedName}${ifMore}",
        "@foreach methodList -map returnType CPP::MapReturnType",
        "@if ${defaultParam} == \"\"",
        "${paramType} ${paramName} = ${defaultParam}${ifMore}",
        "@end parameterList",
        "virtual ~${interfaceName}() {}",
        "// Attribute access methods",
        "@if ${attributeQualifier} != \"readonly\"",
        "@end interfaceList",
    ] {
        assert!(tmpl.contains(needle), "Fig 9 construct `{needle}` missing from template");
    }
}

// ---- Fig 10: generated tcl stub and skeleton ------------------------------

#[test]
fn fig10_tcl_stub_matches_paper() {
    let out = compile("tcl", RECEIVER_IDL, "receiver").unwrap();
    let tcl = out.file("Receiver.tcl").unwrap();
    let flat: String = tcl.split_whitespace().collect::<Vec<_>>().join(" ");
    for expected in [
        r#"if {[info vars "IDL:Receiver:1.0"] != ""} return"#,
        "set IDL:Receiver:1.0 1",
        r#"BOA::addIdlMapping ::Receiver "IDL:Receiver:1.0""#,
        "class ReceiverStub { inherit Stub",
        "constructor {ior connector} { Stub::constructor $ior $connector } {}",
        "public method print {text} {",
        r#"set c [$pb_connector_ getRequestCall $this "print" 0]"#,
        "$c insertString $text",
        "$c send",
        "# void return",
        "$c release",
        "class ReceiverSkel { inherit Skel",
        "constructor {implObj} { Skel::constructor $implObj } {}",
        "public method print {c} {",
        "set text [$c extractString]",
        "$pb_obj_ print $text",
    ] {
        assert!(flat.contains(expected), "missing `{expected}` in:\n{tcl}");
    }
}

#[test]
fn fig10_tcl_orb_runtime_ships_and_is_small() {
    let out = compile("tcl", RECEIVER_IDL, "receiver").unwrap();
    let runtime = out.file("orb_runtime.tcl").unwrap();
    assert!(runtime.contains("class Call"), "Fig 4's Call object");
    assert!(runtime.contains("class Connector"), "the ObjectCommunicator");
    assert!(runtime.contains("namespace eval BOA"), "Fig 5's dispatcher");
    let loc = heidl::codegen::loc::count(runtime);
    assert!(loc < 700, "paper: ~700 lines of tcl; runtime alone is {loc}");
}

// ---- §4.2: the Java mapping's documented limitations ----------------------

#[test]
fn java_mapping_drops_default_parameters() {
    // "The IDL-Java mapping we implemented also does not support default
    //  parameters as the corresponding C++ mapping does."
    let idl = "interface I { void p(in long l = 42); };";
    let java = compile("java", idl, "i").unwrap();
    let j = java.file("I.java").unwrap();
    assert!(j.contains("int l"), "{j}");
    assert!(!j.contains("= 42"), "Java output must not carry defaults:\n{j}");
    // While the C++ mapping keeps them:
    let cpp = compile("heidi-cpp", idl, "i").unwrap();
    assert!(cpp.file("HdI.hh").unwrap().contains("long l = 42"));
}

#[test]
fn java_interfaces_extend_multiple_supers() {
    let idl = "interface A {}; interface B {}; interface C : A, B {};";
    let out = compile("java", idl, "m").unwrap();
    let c = out.file("C.java").unwrap();
    let flat: String = c.split_whitespace().collect::<Vec<_>>().join(" ");
    assert!(flat.contains("public interface C extends A, B"), "{c}");
    // The stub class extends only HdStub (single inheritance).
    let stub = out.file("CStub.java").unwrap();
    assert!(stub.contains("class CStub extends HdStub implements C"), "{stub}");
}

// ---- every backend compiles the paper's Fig 3 IDL -------------------------

#[test]
fn all_backends_accept_fig3() {
    for name in heidl::codegen::backend_names() {
        let out = compile(&name, FIG3_IDL, "A")
            .unwrap_or_else(|e| panic!("backend {name} failed on Fig 3 IDL: {e}"));
        assert!(!out.is_empty(), "{name} generated nothing");
    }
}
