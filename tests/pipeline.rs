//! Cross-crate pipeline tests: Fig 6 (parser → EST → template codegen),
//! Fig 7 (EST grouping), Fig 8 (the executable EST script), and the
//! two-step code-generation property (§4.1).

use heidl::codegen::Compiler;
use heidl::est::{build, script};
use heidl::idl::{parse, FIG3_IDL};

#[test]
fn fig6_pipeline_stages_compose() {
    // Each stage separately, exactly as Fig 6 draws them.
    let spec = parse(FIG3_IDL).expect("stage 1: generic IDL parser");
    let est = build(&spec).expect("stage 2: EST construction");
    let compiler = Compiler::new("heidi-cpp").expect("stage 3a: template compile");
    let files = compiler.generate(&est, "A").expect("stage 3b: template-driven generation");
    assert!(files.file("HdA.hh").is_some());
}

#[test]
fn fig7_est_groups_interleaved_members() {
    // Fig 3 interleaves the `button` attribute between methods q and s;
    // Fig 7 shows the EST keeping attributes in a separate sub-tree.
    let est = build(&parse(FIG3_IDL).unwrap()).unwrap();
    let a = est.find("Interface", "A").unwrap();
    let methods: Vec<String> = est
        .children_of_kind(a, "Operation")
        .into_iter()
        .map(|n| est.node(n).name.clone())
        .collect();
    assert_eq!(methods, ["f", "g", "p", "q", "s", "t"], "methods contiguous and in order");
    let attrs: Vec<String> = est
        .children_of_kind(a, "Attribute")
        .into_iter()
        .map(|n| est.node(n).name.clone())
        .collect();
    assert_eq!(attrs, ["button"], "attributes in their own list");
}

#[test]
fn fig8_script_encodes_and_rebuilds_the_est() {
    let est = build(&parse(FIG3_IDL).unwrap()).unwrap();
    let program = script::encode(&est);
    // The paper's generated Perl is commented with repository ids.
    assert!(program.contains("# IDL:Heidi:1.0"), "{program}");
    assert!(program.contains("# IDL:Heidi/A:1.0"));
    assert!(program.contains("# IDL:Heidi/SSequence:1.0"));
    // Fig 8's property vocabulary survives.
    assert!(program.contains("prop"), "{program}");
    assert!(program.contains("typeName str \"Heidi_S\""), "{program}");
    assert!(program.contains("Parent str \"Heidi_S\""), "{program}");
    assert!(program.contains("getType str \"in\""), "{program}");
    assert!(program.contains("members list \"Start\",\"Stop\""), "{program}");

    let rebuilt = script::decode(&program).unwrap();
    assert!(script::same_shape(&est, &rebuilt));
}

#[test]
fn code_generated_from_rebuilt_est_is_identical() {
    // The whole point of the EST script: run codegen later, from the
    // stored representation, with identical results.
    let est = build(&parse(FIG3_IDL).unwrap()).unwrap();
    let rebuilt = script::decode(&script::encode(&est)).unwrap();
    let compiler = Compiler::new("heidi-cpp").unwrap();
    let direct = compiler.generate(&est, "A").unwrap();
    let from_script = compiler.generate(&rebuilt, "A").unwrap();
    assert_eq!(direct, from_script);
}

#[test]
fn two_step_generation_compile_once_run_many() {
    // §4.1: "the first step of the code-generation stage need only be
    // performed once for a particular code-generation template."
    let compiler = Compiler::new("heidi-cpp").unwrap();
    let sources = [
        ("interface One { void a(); };", "one", "HdOne.hh"),
        ("interface Two { void b(in long x); };", "two", "HdTwo.hh"),
        ("module M { interface Three {}; };", "three", "HdThree.hh"),
    ];
    for (idl, stem, expect) in sources {
        let files = compiler.compile_source(idl, stem).unwrap();
        assert!(files.file(expect).is_some(), "{expect}: {:?}", files.names());
    }
}

#[test]
fn same_est_feeds_every_language_backend() {
    // One EST, five mappings — the decoupling claim of §4.
    let est = build(&parse(FIG3_IDL).unwrap()).unwrap();
    for name in heidl::codegen::backend_names() {
        let compiler = Compiler::new(&name).unwrap();
        let files = compiler.generate(&est, "A").unwrap();
        assert!(!files.is_empty(), "{name}");
    }
}

#[test]
fn est_script_of_generated_scale_idl() {
    // A larger synthetic module exercises encode/decode at scale.
    let mut idl = String::from("module Big {\n");
    for i in 0..40 {
        idl.push_str(&format!(
            "interface I{i} {{ void m{i}(in long a, in string b); readonly attribute long at{i}; }};\n"
        ));
    }
    idl.push_str("};\n");
    let est = build(&parse(&idl).unwrap()).unwrap();
    let encoded = script::encode(&est);
    let rebuilt = script::decode(&encoded).unwrap();
    assert!(script::same_shape(&est, &rebuilt));
    assert_eq!(rebuilt.len(), est.len());
}

#[test]
fn pretty_printer_round_trips_through_the_pipeline() {
    // parse → print → parse → EST → codegen equals the direct path.
    let spec = parse(FIG3_IDL).unwrap();
    let printed = heidl::idl::print(&spec);
    let spec2 = parse(&printed).unwrap();
    let direct = Compiler::new("heidi-cpp").unwrap().generate(&build(&spec).unwrap(), "A").unwrap();
    let reprinted =
        Compiler::new("heidi-cpp").unwrap().generate(&build(&spec2).unwrap(), "A").unwrap();
    assert_eq!(direct, reprinted);
}
