//! # heidl — customizable IDL mappings and ORB protocols
//!
//! A Rust reproduction of Girish Welling and Maximilian Ott,
//! *"Customizing IDL Mappings and ORB Protocols"* (Middleware 2000): a
//! **template-driven IDL compiler** whose language mappings are specified
//! entirely in templates, plus **HeidiRMI**, the custom ORB those mappings
//! target — stringified object references, a human-readable text wire
//! protocol (swappable for a CDR/GIOP-lite binary one), connection/stub/
//! skeleton caches, pluggable dispatch strategies, and `incopy`
//! pass-by-value.
//!
//! This facade crate re-exports the whole workspace:
//!
//! * [`idl`] — OMG IDL parser with the HeidiRMI extensions (default
//!   parameters, `incopy`);
//! * [`est`] — the Enhanced Syntax Tree (Fig 7) and its executable script
//!   encoding (Fig 8);
//! * [`template`] — the Jeeves-style template engine (Fig 9 syntax);
//! * [`codegen`] — the compiler driver plus five backends (`heidi-cpp`,
//!   `corba-cpp`, `java`, `tcl`, `rust`) and the `heidlc` CLI;
//! * [`wire`] — the text and CDR wire protocols;
//! * [`rmi`] — the HeidiRMI runtime ORB;
//! * [`router`] — the multi-node tier: a replicated TTL-lease discovery
//!   service defined in heidl IDL, directory-backed resolvers, and the
//!   `heidl-node` cluster binary (directory / backend / router roles);
//! * [`media`] — code generated *at build time* by the `rust` backend
//!   from [`idl/media.idl`](https://example.invalid), proving the
//!   pipeline end to end.
//!
//! ## Quick start: compile IDL with a custom mapping
//!
//! ```
//! // The paper's Fig 3 example, generated with the HeidiRMI mapping:
//! let files = heidl::codegen::compile("heidi-cpp", heidl::idl::FIG3_IDL, "A")?;
//! assert!(files.file("HdA.hh").unwrap().contains("XBool b = XTrue"));
//! # Ok::<(), heidl::codegen::CodegenError>(())
//! ```
//!
//! ## Quick start: a remote call through the generated Rust mapping
//!
//! ```
//! use heidl::media::{Receiver_REPO_ID, ReceiverServant, ReceiverSkel, ReceiverStub};
//! use heidl::rmi::{DispatchKind, Orb, RemoteObject, RmiResult};
//! use std::sync::Arc;
//!
//! struct Printer;
//! impl RemoteObject for Printer {
//!     fn type_id(&self) -> &str {
//!         Receiver_REPO_ID
//!     }
//! }
//! impl ReceiverServant for Printer {
//!     fn print(&self, _text: String) -> RmiResult<()> {
//!         Ok(())
//!     }
//!     fn count(&self) -> RmiResult<i32> {
//!         Ok(1)
//!     }
//! }
//!
//! let orb = Orb::new();
//! orb.serve("127.0.0.1:0")?;
//! let skel = ReceiverSkel::new(Arc::new(Printer), orb.clone(), DispatchKind::Hash);
//! let objref = orb.export(skel)?;
//! let stub = ReceiverStub::new(orb.clone(), objref);
//! stub.print("hello".to_owned())?;
//! assert_eq!(stub.count()?, 1);
//! orb.shutdown();
//! # Ok::<(), heidl::rmi::RmiError>(())
//! ```

#![warn(missing_docs)]

pub use heidl_codegen as codegen;
pub use heidl_est as est;
pub use heidl_idl as idl;
pub use heidl_rmi as rmi;
pub use heidl_router as router;
pub use heidl_template as template;
pub use heidl_wire as wire;

/// Code generated at build time by the `rust` backend from
/// `idl/media.idl` — the synthetic media-control application that stands
/// in for Heidi (DESIGN.md, substitution notes).
#[allow(missing_docs, non_upper_case_globals, clippy::all)]
pub mod media {
    include!(concat!(env!("OUT_DIR"), "/media.rs"));
}
