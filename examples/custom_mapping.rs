//! Write a brand-new IDL mapping in minutes — the paper's punchline.
//!
//! §4.2: "it took us about two weeks and 700 lines of tcl code to build
//! an IIOP compatible tcl ORB ... the template approach has introduced
//! the option of quickly developing an ORB to suit an existing
//! application, as opposed to only having the option of making the
//! existing application CORBA-compliant."
//!
//! Here we invent a mapping for a fictional in-house scripting language
//! ("mscript") whose conventions we must match — classes are `Mx`-prefixed,
//! booleans are `yes/no`, and every remote method takes a trailing
//! timeout. Total mapping definition: one template plus two map
//! functions. No compiler changes.
//!
//! ```text
//! cargo run --example custom_mapping
//! ```

const TEMPLATE: &str = r#"@# mscript mapping: stubs for the in-house interpreter
@foreach interfaceList -map interfaceName MScript::ClassName
@openfile ${interfaceName}.ms
# ${repoId} -- generated, do not edit
class ${interfaceName} (remote)
@foreach methodList
  def ${methodName}(
@foreach paramList -ifMore ',' -map defaultParam MScript::Const
@if ${defaultParam} == ""
    ${paramName}${ifMore}
@else
    ${paramName} := ${defaultParam}${ifMore}
@fi
@end parameterList
    timeout := 30s
  )
    remote_call "${methodName}" timeout
  end
@end methodList
end
@end interfaceList
"#;

const IDL: &str = r#"
module Plant {
  interface Valve {
    void open(in long percent = 100);
    void close();
    boolean is_open(in boolean verify = FALSE);
  };
  interface SafetyValve : Valve {
    void vent();
  };
};
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A compiler from one template string; the built-in registry named
    // here only contributes map functions we choose not to use.
    let mut compiler = heidl::codegen::Compiler::from_templates(
        &[("mscript.tmpl".to_owned(), TEMPLATE.to_owned())],
        "heidi-cpp",
    )?;

    // The mapping's own naming conventions, as closures.
    compiler.register_map("MScript::ClassName", |scoped| {
        format!("Mx{}", scoped.rsplit("::").next().unwrap_or(scoped))
    });
    compiler.register_map("MScript::Const", |value| match value {
        "TRUE" => "yes".to_owned(),
        "FALSE" => "no".to_owned(),
        v => v.to_owned(),
    });

    let files = compiler.compile_source(IDL, "plant")?;
    for (name, content) in files.iter() {
        println!("==> {name} <==");
        println!("{content}");
    }

    println!("-- a complete new language mapping: 1 template, 2 map functions,");
    println!("   0 compiler changes. The same works from the CLI:");
    println!("   heidlc plant.idl --template mscript.tmpl --maps heidi-cpp");
    Ok(())
}
