//! The paper's telnet anecdote, live (§4.2): start a server, open a raw
//! TCP socket, and type HeidiRMI requests as printable text.
//!
//! ```text
//! cargo run --example telnet_debug
//! ```
//!
//! The program plays both sides so the transcript is visible; point a
//! real `telnet`/`nc` at the printed endpoint to drive it yourself.

use heidl::media::{PlayerServant, PlayerSkel, ReceiverServant, Status};
use heidl::rmi::{DispatchKind, Orb, RemoteObject, RmiResult};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::Arc;

struct Demo;

impl RemoteObject for Demo {
    fn type_id(&self) -> &str {
        heidl::media::Player_REPO_ID
    }
}

impl ReceiverServant for Demo {
    fn print(&self, text: String) -> RmiResult<()> {
        println!("   [server] print called with {text:?}");
        Ok(())
    }
    fn count(&self) -> RmiResult<i32> {
        Ok(7)
    }
}

impl PlayerServant for Demo {
    fn play(&self, clip: String, volume: i32) -> RmiResult<()> {
        println!("   [server] play({clip:?}, {volume})");
        Ok(())
    }
    fn stop(&self) -> RmiResult<()> {
        Ok(())
    }
    fn load(&self, _s: heidl::rmi::IncopyArg) -> RmiResult<()> {
        Ok(())
    }
    fn state(&self) -> RmiResult<Status> {
        Ok(Status::Paused)
    }
    fn seek(&self, _f: Vec<i32>) -> RmiResult<()> {
        Ok(())
    }
    fn get_position(&self) -> RmiResult<i32> {
        Ok(1234)
    }
    fn get_title(&self) -> RmiResult<String> {
        Ok("telnet demo".to_owned())
    }
    fn set_title(&self, _v: String) -> RmiResult<()> {
        Ok(())
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let orb = Orb::new();
    // Per-operation rows in `_metrics.dump` are pay-for-use; a debugging
    // demo wants them, so opt in up front.
    orb.metrics().set_detail(true);
    // With an explicit bind address the example only serves (park until
    // Ctrl-C) so a human can drive it from telnet/nc — handy for the
    // README's failover walkthrough, with `HEIDL_FAULT_PLAN` set to
    // script faults into this server's connections.
    let bind = std::env::args().nth(1);
    let endpoint = orb.serve(bind.as_deref().unwrap_or("127.0.0.1:0"))?;
    let objref = orb.export(PlayerSkel::new(Arc::new(Demo), orb.clone(), DispatchKind::Hash))?;

    println!("server listening -- try it yourself with:");
    println!("  nc {} {}", endpoint.host, endpoint.port);
    println!("object reference: {objref}");
    println!();

    if bind.is_some() {
        loop {
            std::thread::sleep(std::time::Duration::from_secs(3600));
        }
    }

    let mut session = BufReader::new(TcpStream::connect(endpoint.socket_addr())?);
    let mut type_line = |line: String| -> std::io::Result<String> {
        println!("human types > {line}");
        session.get_mut().write_all(line.as_bytes())?;
        session.get_mut().write_all(b"\r\n")?;
        let mut reply = String::new();
        session.read_line(&mut reply)?;
        let reply = reply.trim_end().to_owned();
        println!("server says  < {reply}");
        println!();
        Ok(reply)
    };

    // Each request starts with a small id the human picks; the reply
    // echoes it, so even interleaved requests can be told apart.
    type_line(format!("1 \"{objref}\" \"print\" T \"typed by hand\""))?;
    type_line(format!("2 \"{objref}\" \"count\" T"))?;
    type_line(format!("3 \"{objref}\" \"play\" T \"intro.mpg\" 5"))?;
    type_line(format!("4 \"{objref}\" \"_get_position\" T"))?;
    type_line(format!("5 \"{objref}\" \"no_such_method\" T"))?;
    type_line("\"garbage\" \"x\" T".to_owned())?;

    // Exactly-once by hand: stamp an invocation token — three extra
    // printable tokens after the declared arguments — then retype the
    // identical line, exactly what a client replaying after a dead
    // connection would send. The servant runs ONCE (one `[server] play`
    // line above); the retry is answered from the reply cache.
    let tokened = format!("6 \"{objref}\" \"play\" T \"finale.mpg\" 9 \"~tok\" 12345 1");
    let first = type_line(tokened.clone())?;
    let retry = type_line(tokened)?;
    println!("   replies byte-identical: {} (servant executed once)", first == retry);
    let metrics =
        format!("@tcp:{}:{}#{}#IDL:heidl/Metrics:1.0", endpoint.host, endpoint.port, u64::MAX);
    type_line(format!("7 \"{metrics}\" \"dump\" T"))?; // shows dedup_replays 1

    println!("every byte of that exchange was printable text -- that is the");
    println!("debuggability the paper traded protocol generality for (E8).");
    orb.shutdown();
    Ok(())
}
