//! The paper's telnet anecdote, live (§4.2): start a server, open a raw
//! TCP socket, and type HeidiRMI requests as printable text.
//!
//! ```text
//! cargo run --example telnet_debug
//! ```
//!
//! The program plays both sides so the transcript is visible; point a
//! real `telnet`/`nc` at the printed endpoint to drive it yourself.

use heidl::media::{PlayerServant, PlayerSkel, ReceiverServant, Status};
use heidl::rmi::{
    DispatchKind, Orb, RemoteObject, RmiResult, StreamBody, StreamServant, STREAM_ACK_OBJECT_ID,
    STREAM_ACK_TYPE_ID,
};
use heidl::wire::Decoder;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::Arc;

struct Demo;

impl RemoteObject for Demo {
    fn type_id(&self) -> &str {
        heidl::media::Player_REPO_ID
    }
}

impl ReceiverServant for Demo {
    fn print(&self, text: String) -> RmiResult<()> {
        println!("   [server] print called with {text:?}");
        Ok(())
    }
    fn count(&self) -> RmiResult<i32> {
        Ok(7)
    }
}

impl PlayerServant for Demo {
    fn play(&self, clip: String, volume: i32) -> RmiResult<()> {
        println!("   [server] play({clip:?}, {volume})");
        Ok(())
    }
    fn stop(&self) -> RmiResult<()> {
        Ok(())
    }
    fn load(&self, _s: heidl::rmi::IncopyArg) -> RmiResult<()> {
        Ok(())
    }
    fn state(&self) -> RmiResult<Status> {
        Ok(Status::Paused)
    }
    fn seek(&self, _f: Vec<i32>) -> RmiResult<()> {
        Ok(())
    }
    fn get_position(&self) -> RmiResult<i32> {
        Ok(1234)
    }
    fn get_title(&self) -> RmiResult<String> {
        Ok("telnet demo".to_owned())
    }
    fn set_title(&self, _v: String) -> RmiResult<()> {
        Ok(())
    }
}

/// A streamed catalog: the server never materializes the whole reply —
/// it pulls 32-byte fragments on demand, each going out as one `~chunk`
/// frame under the client's credit window.
struct Catalog;

const CATALOG_TEXT: &str = "intro.mpg 1500 frames; trailer.mpg 800 frames; finale.mpg 2400 frames";

impl StreamServant for Catalog {
    fn type_id(&self) -> &str {
        "IDL:Media/Catalog:1.0"
    }
    fn open(&self, method: &str, _args: &mut dyn Decoder) -> RmiResult<StreamBody> {
        if method != "export_catalog" {
            return Err(heidl::rmi::RmiError::UnknownMethod {
                method: method.to_owned(),
                type_id: StreamServant::type_id(self).to_owned(),
            });
        }
        Ok(StreamBody::from_string(CATALOG_TEXT.to_owned()))
    }
}

/// Types one line into the session without waiting for a reply (oneway
/// acks never get one; a streamed request gets many).
fn type_only(session: &mut BufReader<TcpStream>, line: &str) -> std::io::Result<()> {
    println!("human types > {line}");
    session.get_mut().write_all(line.as_bytes())?;
    session.get_mut().write_all(b"\r\n")
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let orb = Orb::new();
    // Per-operation rows in `_metrics.dump` are pay-for-use; a debugging
    // demo wants them, so opt in up front.
    orb.metrics().set_detail(true);
    // With an explicit bind address the example only serves (park until
    // Ctrl-C) so a human can drive it from telnet/nc — handy for the
    // README's failover walkthrough, with `HEIDL_FAULT_PLAN` set to
    // script faults into this server's connections.
    let bind = std::env::args().nth(1);
    let endpoint = orb.serve(bind.as_deref().unwrap_or("127.0.0.1:0"))?;
    let objref = orb.export(PlayerSkel::new(Arc::new(Demo), orb.clone(), DispatchKind::Hash))?;
    let streamref = orb.export_stream(Arc::new(Catalog))?;

    println!("server listening -- try it yourself with:");
    println!("  nc {} {}", endpoint.host, endpoint.port);
    println!("object reference: {objref}");
    println!();

    if bind.is_some() {
        loop {
            std::thread::sleep(std::time::Duration::from_secs(3600));
        }
    }

    let mut session = BufReader::new(TcpStream::connect(endpoint.socket_addr())?);
    let mut type_line = |line: String| -> std::io::Result<String> {
        println!("human types > {line}");
        session.get_mut().write_all(line.as_bytes())?;
        session.get_mut().write_all(b"\r\n")?;
        let mut reply = String::new();
        session.read_line(&mut reply)?;
        let reply = reply.trim_end().to_owned();
        println!("server says  < {reply}");
        println!();
        Ok(reply)
    };

    // Each request starts with a small id the human picks; the reply
    // echoes it, so even interleaved requests can be told apart.
    type_line(format!("1 \"{objref}\" \"print\" T \"typed by hand\""))?;
    type_line(format!("2 \"{objref}\" \"count\" T"))?;
    type_line(format!("3 \"{objref}\" \"play\" T \"intro.mpg\" 5"))?;
    type_line(format!("4 \"{objref}\" \"_get_position\" T"))?;
    type_line(format!("5 \"{objref}\" \"no_such_method\" T"))?;
    type_line("\"garbage\" \"x\" T".to_owned())?;

    // Exactly-once by hand: stamp an invocation token — three extra
    // printable tokens after the declared arguments — then retype the
    // identical line, exactly what a client replaying after a dead
    // connection would send. The servant runs ONCE (one `[server] play`
    // line above); the retry is answered from the reply cache.
    let tokened = format!("6 \"{objref}\" \"play\" T \"finale.mpg\" 9 \"~tok\" 12345 1");
    let first = type_line(tokened.clone())?;
    let retry = type_line(tokened)?;
    println!("   replies byte-identical: {} (servant executed once)", first == retry);
    let metrics =
        format!("@tcp:{}:{}#{}#IDL:heidl/Metrics:1.0", endpoint.host, endpoint.port, u64::MAX);
    type_line(format!("7 \"{metrics}\" \"dump\" T"))?; // shows dedup_replays 1

    // A chunked transfer by hand: end the request with `"~chunk" <window> 0`
    // to opt into a streamed reply with a 32-byte credit window. The server
    // sends `~chunk`-tailed frames until the window is spent, then waits;
    // each hand-typed ack (a oneway to the reserved StreamAck object,
    // naming the stream's request id and the bytes consumed) buys the next
    // window's worth. The final frame ends with `"~chunk" <n> 1`.
    println!("-- a chunked transfer, typed by hand (32-byte credit window) --");
    println!();
    let ackref = format!(
        "@tcp:{}:{}#{STREAM_ACK_OBJECT_ID}#{STREAM_ACK_TYPE_ID}",
        endpoint.host, endpoint.port
    );
    type_only(&mut session, &format!("8 \"{streamref}\" \"export_catalog\" T \"~chunk\" 32 0"))?;
    loop {
        let mut frame = String::new();
        session.read_line(&mut frame)?;
        let frame = frame.trim_end();
        println!("server says  < {frame}");
        if frame.ends_with(" 1") {
            break; // `"~chunk" <n> 1`: the final chunk
        }
        // Window spent -- grant 32 bytes back so the next chunk flows.
        type_only(&mut session, &format!("9 \"{ackref}\" \"ack\" F 8 32"))?;
    }
    println!();

    println!("every byte of that exchange was printable text -- that is the");
    println!("debuggability the paper traded protocol generality for (E8).");
    orb.shutdown();
    Ok(())
}
