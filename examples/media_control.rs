//! The Heidi scenario: control messaging for a media application, running
//! over the HeidiRMI ORB through stubs and skeletons that `build.rs`
//! generated from `idl/media.idl` with the `rust` backend.
//!
//! ```text
//! cargo run --example media_control
//! ```

use heidl::media::*;
use heidl::rmi::{DispatchKind, Orb, RemoteObject, RmiError, RmiResult};
use std::sync::atomic::{AtomicI32, Ordering};
use std::sync::{Arc, Mutex};

/// The server-side media player — plain Rust, no generated base classes:
/// the skeleton *delegates* to it (the paper's Fig 2 relation).
struct Deck {
    volume: AtomicI32,
    title: Mutex<String>,
    log: Mutex<Vec<String>>,
    state: Mutex<Status>,
}

impl Deck {
    fn new() -> Self {
        Deck {
            volume: AtomicI32::new(0),
            title: Mutex::new("untitled".to_owned()),
            log: Mutex::new(Vec::new()),
            state: Mutex::new(Status::Stopped),
        }
    }

    fn note(&self, what: impl Into<String>) {
        self.log.lock().unwrap().push(what.into());
    }
}

impl RemoteObject for Deck {
    fn type_id(&self) -> &str {
        Player_REPO_ID
    }
}

impl ReceiverServant for Deck {
    fn print(&self, text: String) -> RmiResult<()> {
        self.note(format!("print: {text}"));
        Ok(())
    }

    fn count(&self) -> RmiResult<i32> {
        Ok(self.log.lock().unwrap().len() as i32)
    }
}

impl PlayerServant for Deck {
    fn play(&self, clip: String, volume: i32) -> RmiResult<()> {
        if *self.state.lock().unwrap() == Status::Playing {
            return Err(Busy { detail: format!("already playing at volume {volume}") }.to_error());
        }
        self.volume.store(volume, Ordering::SeqCst);
        *self.state.lock().unwrap() = Status::Playing;
        self.note(format!("play {clip} @ {volume}"));
        Ok(())
    }

    fn stop(&self) -> RmiResult<()> {
        *self.state.lock().unwrap() = Status::Stopped;
        self.note("stop");
        Ok(())
    }

    fn load(&self, source: heidl::rmi::IncopyArg) -> RmiResult<()> {
        match source {
            heidl::rmi::IncopyArg::Value(_) => self.note("load: by-value copy"),
            heidl::rmi::IncopyArg::Reference(r) => self.note(format!("load: reference {r}")),
        }
        Ok(())
    }

    fn state(&self) -> RmiResult<Status> {
        Ok(*self.state.lock().unwrap())
    }

    fn seek(&self, frames: Vec<i32>) -> RmiResult<()> {
        self.note(format!("seek {frames:?}"));
        Ok(())
    }

    fn get_position(&self) -> RmiResult<i32> {
        Ok(42)
    }

    fn get_title(&self) -> RmiResult<String> {
        Ok(self.title.lock().unwrap().clone())
    }

    fn set_title(&self, v: String) -> RmiResult<()> {
        *self.title.lock().unwrap() = v;
        Ok(())
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Server side: bootstrap port + skeleton registration (Fig 5).
    let orb = Orb::new();
    let endpoint = orb.serve("127.0.0.1:0")?;
    println!("bootstrap port up at {endpoint}");

    let deck = Arc::new(Deck::new());
    let skel = PlayerSkel::new(Arc::clone(&deck) as _, orb.clone(), DispatchKind::Hash);
    let objref = orb.export(skel)?;
    println!("exported player: {objref}");
    println!();

    // Client side: a stub over the same ORB handle (Fig 4). In a real
    // deployment the stringified reference travels out of band.
    let player = PlayerStub::new(orb.clone(), objref);

    println!("-> play(intro.mpg, volume = DEFAULT_VOLUME {DEFAULT_VOLUME})");
    player.play("intro.mpg".to_owned(), DEFAULT_VOLUME)?;
    println!("   state() = {:?}", player.state()?);

    println!("-> play again while playing (expects the Busy exception)");
    match player.play("other.mpg".to_owned(), 9) {
        Err(ref e @ RmiError::Remote { ref detail, .. }) if Busy::matches(e) => {
            println!("   Busy raised across the wire: {detail}");
        }
        other => println!("   unexpected: {other:?}"),
    }

    println!("-> oneway stop(), then synchronize");
    player.stop()?;
    let receiver = player.as_receiver();
    receiver.print("control channel says hello".to_owned())?;
    println!("   server log entries: {}", receiver.count()?);

    println!("-> attributes");
    player.set_title("Heidi demo reel".to_owned())?;
    println!("   title = {:?}, position = {}", player.get_title()?, player.get_position()?);

    println!("-> seek with a sequence<long>");
    player.seek(vec![0, 250, 500])?;

    println!();
    println!("server-side log:");
    for line in deck.log.lock().unwrap().iter() {
        println!("  {line}");
    }
    println!(
        "connections opened: {} (cached and reused across {} calls)",
        orb.connections().opened_count(),
        deck.log.lock().unwrap().len() + 4
    );

    orb.shutdown();
    Ok(())
}
