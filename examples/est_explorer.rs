//! EST explorer: shows Fig 7 (the grouped tree) and Fig 8 (the executable
//! EST script) for the paper's running example.
//!
//! ```text
//! cargo run --example est_explorer
//! ```

use heidl::est::{Est, NodeId};

fn dump(est: &Est, node: NodeId, depth: usize) {
    let n = est.node(node);
    let indent = "  ".repeat(depth);
    let name = if n.name.is_empty() { "(anonymous)" } else { &n.name };
    println!("{indent}{} [{}]", name, n.kind);
    for (key, value) in &n.props {
        println!("{indent}  .{key} = {}", value.as_text());
    }
    for &child in &n.children {
        dump(est, child, depth + 1);
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let spec = heidl::idl::parse(heidl::idl::FIG3_IDL)?;
    let est = heidl::est::build(&spec)?;

    println!("== Fig 7: the Enhanced Syntax Tree for A.idl ==");
    println!("(members grouped by kind -- note `button` in its own Attribute");
    println!(" slot even though the IDL interleaves it between methods)");
    println!();
    dump(&est, est.root(), 0);

    println!();
    println!("== grouped lists for interface A ==");
    let a = est.find("Interface", "A").expect("interface A");
    let methods: Vec<String> =
        est.children_of_kind(a, "Operation").iter().map(|&n| est.node(n).name.clone()).collect();
    let attrs: Vec<String> =
        est.children_of_kind(a, "Attribute").iter().map(|&n| est.node(n).name.clone()).collect();
    println!("methodList    = {methods:?}");
    println!("attributeList = {attrs:?}");

    println!();
    println!("== Fig 8: the executable EST script ==");
    println!("(the paper emits a Perl program; this is its command-program analog,");
    println!(" decodable back into an identical EST -- benchmarked in E6)");
    println!();
    let script = heidl::est::script::encode(&est);
    print!("{script}");

    let rebuilt = heidl::est::script::decode(&script)?;
    println!();
    println!(
        "decode(encode(est)) rebuilt {} nodes, identical shape: {}",
        rebuilt.len(),
        heidl::est::script::same_shape(&est, &rebuilt)
    );
    Ok(())
}
