//! Quickstart: compile the paper's Fig 3 IDL with the HeidiRMI C++
//! mapping and print what the template-driven compiler generates.
//!
//! ```text
//! cargo run --example quickstart
//! ```

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("== input: the paper's Fig 3 A.idl ==");
    println!("{}", heidl::idl::FIG3_IDL.trim());
    println!();

    // One call: parse -> EST -> heidi-cpp templates.
    let files = heidl::codegen::compile("heidi-cpp", heidl::idl::FIG3_IDL, "A")?;

    for (name, content) in files.iter() {
        println!("== generated: {name} ==");
        println!("{content}");
    }

    println!("== summary ==");
    println!(
        "{} files, {} non-blank lines, no CORBA-specific types anywhere.",
        files.len(),
        files.total_loc()
    );
    println!("Try the other mappings: `cargo run --example multi_language`");
    Ok(())
}
