//! One IDL file, five mappings: the decoupling the paper's architecture
//! buys. The same EST drives every backend; only templates differ.
//!
//! ```text
//! cargo run --example multi_language
//! ```

const CONTROL_IDL: &str = r#"
module Control {
  enum Mode { Idle, Active };
  interface Receiver {
    void print(in string text);
    long count();
  };
  interface Panel : Receiver {
    void arm(in Mode mode = Control::Idle);
    readonly attribute long alarms;
  };
};
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Parse once, build the EST once (Fig 6's front end)...
    let spec = heidl::idl::parse(CONTROL_IDL)?;
    let est = heidl::est::build(&spec)?;

    // ...then run every backend against the same EST.
    for name in heidl::codegen::backend_names() {
        let compiler = heidl::codegen::Compiler::new(&name)?;
        let files = compiler.generate(&est, "control")?;
        println!("================ backend: {name} ================");
        println!(
            "{} files, {} non-blank lines: {}",
            files.len(),
            files.total_loc(),
            files.names().join(", ")
        );
        // Show the most interesting file per backend.
        let pick = match name.as_str() {
            "heidi-cpp" => "HdPanel.hh",
            "corba-cpp" => "control_corba.hh",
            "java" => "Panel.java",
            "tcl" => "Panel.tcl",
            _ => "control.rs",
        };
        if let Some(content) = files.file(pick) {
            println!("--- {pick} ---");
            let lines: Vec<&str> = content.lines().collect();
            for line in lines.iter().take(40) {
                println!("{line}");
            }
            if lines.len() > 40 {
                println!("... ({} more lines)", lines.len() - 40);
            }
        }
        println!();
    }

    println!("note the per-mapping fidelity:");
    println!("  heidi-cpp keeps `Mode mode = Idle` (default parameters),");
    println!("  java drops the default (the paper's documented limitation),");
    println!("  corba-cpp uses CORBA::Long and Panel_ptr/Panel_var,");
    println!("  tcl emits Fig 10-style [incr Tcl] stubs for the 700-line ORB,");
    println!("  rust targets the heidl-rmi runtime and actually runs.");
    Ok(())
}
