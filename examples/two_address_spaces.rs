//! Two genuine address spaces: a server process-alike and a client
//! process-alike, each with its own ORB, connected only by a stringified
//! object reference — exactly how HeidiRMI components bootstrap (§3.1).
//!
//! (Both ORBs live in one OS process here so the example is self-
//! contained, but nothing is shared between them: the reference travels
//! as a string, and every call crosses real TCP.)
//!
//! ```text
//! cargo run --example two_address_spaces
//! ```

use heidl::media::*;
use heidl::rmi::{CallInfo, DispatchKind, FnInterceptor, Orb, RemoteObject, RmiResult};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

struct Wall {
    posts: AtomicUsize,
}

impl RemoteObject for Wall {
    fn type_id(&self) -> &str {
        Receiver_REPO_ID
    }
}

impl ReceiverServant for Wall {
    fn print(&self, text: String) -> RmiResult<()> {
        println!("  [server space] {text}");
        self.posts.fetch_add(1, Ordering::SeqCst);
        Ok(())
    }

    fn count(&self) -> RmiResult<i32> {
        Ok(self.posts.load(Ordering::SeqCst) as i32)
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // ---- address space 1: the server -----------------------------------
    let server_orb = Orb::new();
    let endpoint = server_orb.serve("127.0.0.1:0")?;
    let skel = ReceiverSkel::new(
        Arc::new(Wall { posts: AtomicUsize::new(0) }),
        server_orb.clone(),
        DispatchKind::Hash,
    );
    let objref = server_orb.export(skel)?;

    // The ONLY thing that crosses between the spaces: a string.
    let wire_reference = objref.to_string();
    println!("server space up at {endpoint}");
    println!("reference handed out-of-band: {wire_reference}");
    println!();

    // ---- address space 2: the client ------------------------------------
    let client_orb = Orb::new(); // never serves; fresh caches, fresh pool
    client_orb.add_interceptor(Arc::new(FnInterceptor(|info: &CallInfo| {
        if info.phase == heidl::rmi::CallPhase::ClientSend {
            println!("  [client space] -> {}", info.method);
        }
    })));

    let parsed = wire_reference.parse()?;
    let wall = ReceiverStub::new(client_orb.clone(), parsed);

    wall.print("hello across address spaces".to_owned())?;
    wall.print("second message".to_owned())?;
    let n = wall.count()?;
    println!();
    println!("client space sees count() = {n}");
    println!(
        "client opened {} TCP connection(s) for {} calls (connection cache)",
        client_orb.connections().opened_count(),
        n + 1
    );

    server_orb.shutdown();
    Ok(())
}
